"""The network "power" performance criterion (thesis §4.3, [5]).

    P = lambda / T

where ``lambda`` is total network throughput (msg/s) and ``T`` the mean
network delay (s).  Power rewards high throughput *and* low delay; it rises
along the uncongested part of the throughput-delay trade-off and collapses
once queueing delay explodes, which is what makes it a sensible criterion
for dimensioning flow-control windows: too small a window starves
throughput, too large a window lets delay grow without throughput gain
(Fig. 4.9).

Delay excludes each chain's source queue (the set ``V(r) = Q(r) - source``
of eq. 4.19): waiting in the source queue is admission throttling, not
network transit time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.solution import NetworkSolution

__all__ = ["PowerReport", "network_power", "inverse_power", "power_report"]


@dataclass(frozen=True)
class PowerReport:
    """Power and its ingredients for one solved network.

    Attributes
    ----------
    power:
        ``lambda / T`` (msg/s²).
    throughput:
        Total network throughput ``lambda`` (msg/s).
    delay:
        Mean network delay ``T`` (s), source queues excluded.
    class_throughputs / class_delays:
        Per-chain breakdowns.
    """

    power: float
    throughput: float
    delay: float
    class_throughputs: Tuple[float, ...]
    class_delays: Tuple[float, ...]

    def summary(self) -> str:
        """One-line report."""
        return (
            f"power={self.power:.2f} (throughput={self.throughput:.3f} msg/s, "
            f"delay={self.delay * 1e3:.2f} ms)"
        )


def network_power(solution: NetworkSolution) -> float:
    """Network power ``P = lambda / T`` of a solved network.

    Returns 0.0 for a network with zero throughput (all windows zero).
    """
    throughput = solution.network_throughput
    if throughput <= 0:
        return 0.0
    delay = solution.mean_network_delay
    if delay <= 0 or not np.isfinite(delay):
        return 0.0
    return throughput / delay


def inverse_power(solution: NetworkSolution) -> float:
    """Objective value ``F = 1/P`` minimised by WINDIM (thesis §4.3).

    Degenerate solutions (zero throughput / infinite delay) map to
    ``float('inf')`` so optimisers steer away from them.
    """
    power = network_power(solution)
    if power <= 0:
        return float("inf")
    return 1.0 / power


def power_report(solution: NetworkSolution) -> PowerReport:
    """Full power breakdown for reporting and benchmarks."""
    return PowerReport(
        power=network_power(solution),
        throughput=solution.network_throughput,
        delay=solution.mean_network_delay,
        class_throughputs=tuple(float(x) for x in solution.throughputs),
        class_delays=tuple(float(x) for x in solution.chain_delays),
    )
