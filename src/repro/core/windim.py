"""The WINDIM algorithm (thesis Chapter 4).

WINDIM dimensions the end-to-end flow-control windows of a message-switched
network so as to maximise network power ``P = lambda/T``:

1. Build the closed multichain queueing model of the network (the windows
   are the chain populations).
2. Define ``F(E) = 1/P(E)``, evaluated through the §4.2 MVA heuristic.
3. Minimise ``F`` by integer Hooke–Jeeves pattern search, starting from
   the Kleinrock hop-count windows, with memoised evaluations.

:func:`windim` is the top-level entry point of the whole library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from repro.core.initializers import initial_windows
from repro.core.objective import Solver, WindowObjective
from repro.core.power import PowerReport, power_report
from repro.errors import ModelError
from repro.queueing.network import ClosedNetwork
from repro.search.cache import EvaluationCache
from repro.search.pattern import pattern_search
from repro.search.result import SearchResult
from repro.search.space import IntegerBox
from repro.solution import NetworkSolution

__all__ = ["WindimResult", "windim"]


@dataclass(frozen=True)
class WindimResult:
    """Outcome of a WINDIM run.

    Attributes
    ----------
    windows:
        The optimal window vector ``E_opt``.
    power:
        Network power at ``E_opt``.
    report:
        Full power breakdown (throughput, delay, per-class figures).
    solution:
        The solver's :class:`~repro.solution.NetworkSolution` at ``E_opt``.
    search:
        The pattern-search trajectory and evaluation counts.
    initial_windows:
        The starting point that was used.
    """

    windows: Tuple[int, ...]
    power: float
    report: PowerReport
    solution: NetworkSolution
    search: SearchResult
    initial_windows: Tuple[int, ...]

    def summary(self) -> str:
        """Human-readable multi-line report (mirrors the APL output)."""
        lines = [f"WINDIM optimal windows = {list(self.windows)}"]
        lines.append(f"  started from         {list(self.initial_windows)}")
        lines.append(f"  network power        = {self.report.power:.2f}")
        lines.append(f"  network throughput   = {self.report.throughput:.3f} msg/s")
        lines.append(f"  avg network delay    = {self.report.delay * 1e3:.3f} ms")
        lines.append(
            "  class throughputs    = "
            + ", ".join(f"{x:.3f}" for x in self.report.class_throughputs)
        )
        lines.append(
            "  class delays (ms)    = "
            + ", ".join(f"{x * 1e3:.3f}" for x in self.report.class_delays)
        )
        lines.append(
            f"  objective evaluations = {self.search.evaluations} "
            f"({self.search.lookups} lookups)"
        )
        return "\n".join(lines)


def windim(
    network: ClosedNetwork,
    solver: Union[str, Solver] = "mva-heuristic",
    start: Optional[Sequence[int]] = None,
    initial_strategy: str = "hops",
    max_window: int = 64,
    initial_step: int = 2,
    max_halvings: int = 8,
    max_evaluations: int = 10_000,
) -> WindimResult:
    """Dimension the end-to-end windows of ``network`` for maximum power.

    Parameters
    ----------
    network:
        Closed multichain model of the flow-controlled network; chain
        populations in it are ignored (they are the decision variables).
    solver:
        Performance solver used for objective evaluations — the thesis
        uses ``"mva-heuristic"``; ``"mva-exact"``/``"convolution"`` give
        the (expensive) exact variant for comparison.
    start:
        Explicit initial window vector; overrides ``initial_strategy``.
    initial_strategy:
        Named initialiser (``"hops"`` default; thesis §4.4).
    max_window:
        Upper bound of every window (search space ``[1, max_window]^R``).
    initial_step / max_halvings / max_evaluations:
        Pattern-search knobs; see
        :func:`repro.search.pattern.pattern_search`.

    Returns
    -------
    WindimResult
    """
    if start is None:
        start_point: Tuple[int, ...] = initial_windows(network, initial_strategy)
    else:
        if len(start) != network.num_chains:
            raise ModelError(
                f"expected {network.num_chains} initial windows, got {len(start)}"
            )
        start_point = tuple(int(w) for w in start)

    objective = WindowObjective(network, solver)
    space = IntegerBox.windows(network.num_chains, max_window)
    cache = EvaluationCache(objective)
    search = pattern_search(
        objective,
        start_point,
        space,
        initial_step=initial_step,
        max_halvings=max_halvings,
        max_evaluations=max_evaluations,
        cache=cache,
    )

    best = search.best_point
    solution = objective.solution(best)
    report = power_report(solution)
    return WindimResult(
        windows=best,
        power=report.power,
        report=report,
        solution=solution,
        search=search,
        initial_windows=start_point,
    )
