"""The WINDIM algorithm (thesis Chapter 4).

WINDIM dimensions the end-to-end flow-control windows of a message-switched
network so as to maximise network power ``P = lambda/T``:

1. Build the closed multichain queueing model of the network (the windows
   are the chain populations).
2. Define ``F(E) = 1/P(E)``, evaluated through the §4.2 MVA heuristic.
3. Minimise ``F`` by integer Hooke–Jeeves pattern search, starting from
   the Kleinrock hop-count windows, with memoised evaluations.

:func:`windim` is the top-level entry point of the whole library.  For
long-running jobs it carries the resilience runtime end to end: the
``resilient`` flag wraps the solver in the
:class:`~repro.resilience.ladder.ResilientSolver` escalation ladder,
``budget``/``max_seconds`` bound the search (graceful best-so-far instead
of a hang), and ``checkpoint_path``/``resume`` give crash-safe
checkpoint/resume of the evaluation cache.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.pool import PersistentEvalPool

from repro.core.initializers import initial_windows
from repro.core.objective import Solver, WindowObjective
from repro.core.power import PowerReport, power_report
from repro.errors import ModelError, SearchError
from repro.evalplane import build_plane
from repro.queueing.network import ClosedNetwork
from repro.resilience.budget import SearchBudget
from repro.resilience.checkpoint import (
    CheckpointCorruptError,
    CheckpointManager,
    load_checkpoint,
    signal_checkpoint_guard,
)
from repro.resilience.health import DegradationEvent, PoolHealth, SolveHealth
from repro.resilience.ladder import ResilientSolver
from repro.search.cache import EvaluationCache
from repro.search.pattern import pattern_search
from repro.search.result import SearchResult
from repro.search.space import IntegerBox
from repro.search.store import EvaluationStore, model_fingerprint
from repro.solution import NetworkSolution

__all__ = ["WindimResult", "windim"]


@dataclass(frozen=True)
class WindimResult:
    """Outcome of a WINDIM run.

    Attributes
    ----------
    windows:
        The optimal window vector ``E_opt``.
    power:
        Network power at ``E_opt``.
    report:
        Full power breakdown (throughput, delay, per-class figures).
    solution:
        The solver's :class:`~repro.solution.NetworkSolution` at ``E_opt``.
    search:
        The pattern-search trajectory and evaluation counts.
    initial_windows:
        The starting point that was used.
    converged:
        False when the solution at the optimum came from an iterative
        solver that stopped at its budget — the reported figures are then
        a last iterate, not a fixed point.
    status:
        The search status: ``"completed"`` or ``"budget_exhausted"``
        (best-so-far under a deadline/evaluation budget).
    health_log:
        Per-evaluation :class:`~repro.resilience.health.SolveHealth`
        records when the run used the resilient ladder (empty otherwise).
    seeded_evaluations:
        Cache entries loaded from a resume checkpoint (0 for fresh runs);
        ``search.evaluations`` counts only fresh solves on top of these.
    store_seeded:
        Cache entries preloaded from a persistent evaluation store
        (``store_path=``); like checkpoint seeds, these cost no fresh
        solves.
    reuse_stats:
        :class:`~repro.core.reuse.ReuseEngine` counters (warm/cold solve
        and iteration totals, lattice-cache hits) when ``reuse=True``;
        ``None`` otherwise.
    pool_health:
        :class:`~repro.resilience.health.PoolHealth` of the persistent
        evaluation pool (worker PIDs, respawns, requeues, payload bytes)
        when the run used one; ``None`` otherwise.
    degradations:
        :class:`~repro.resilience.health.DegradationEvent` records for
        every rung the evaluation plane stepped down mid-search
        (``persistent -> per-batch -> serial``).  Empty for healthy runs;
        non-empty means the optimum is still trajectory-exact but was
        computed at reduced parallelism.
    store_quarantined:
        Corrupt record lines the persistent evaluation store skipped and
        quarantined to its ``.quarantine`` sidecar on load (0 when no
        store was used or the store was clean).
    """

    windows: Tuple[int, ...]
    power: float
    report: PowerReport
    solution: NetworkSolution
    search: SearchResult
    initial_windows: Tuple[int, ...]
    converged: bool = True
    status: str = "completed"
    health_log: Tuple[SolveHealth, ...] = ()
    seeded_evaluations: int = 0
    store_seeded: int = 0
    reuse_stats: Optional[Dict[str, float]] = None
    pool_health: Optional[PoolHealth] = None
    degradations: Tuple[DegradationEvent, ...] = ()
    store_quarantined: int = 0

    def summary(self) -> str:
        """Human-readable multi-line report (mirrors the APL output)."""
        lines = [f"WINDIM optimal windows = {list(self.windows)}"]
        lines.append(f"  started from         {list(self.initial_windows)}")
        lines.append(f"  network power        = {self.report.power:.2f}")
        lines.append(f"  network throughput   = {self.report.throughput:.3f} msg/s")
        lines.append(f"  avg network delay    = {self.report.delay * 1e3:.3f} ms")
        lines.append(
            "  class throughputs    = "
            + ", ".join(f"{x:.3f}" for x in self.report.class_throughputs)
        )
        lines.append(
            "  class delays (ms)    = "
            + ", ".join(f"{x * 1e3:.3f}" for x in self.report.class_delays)
        )
        lines.append(
            f"  objective evaluations = {self.search.evaluations} "
            f"({self.search.lookups} lookups)"
        )
        hits = self.search.lookups - self.search.evaluations
        lines.append(
            f"  evaluation cache      = {hits} hits, "
            f"{self.search.evaluations} misses, {self.search.pruned} pruned"
        )
        if self.store_seeded:
            lines.append(
                f"  persistent store      = {self.store_seeded} evaluations "
                "preloaded"
            )
        if self.reuse_stats is not None:
            warm = int(self.reuse_stats.get("warm_solves", 0))
            cold = int(self.reuse_stats.get("cold_solves", 0))
            lines.append(
                f"  reuse engine          = {warm} warm / {cold} cold solves"
            )
        if self.seeded_evaluations:
            lines.append(
                f"  resumed from checkpoint: {self.seeded_evaluations} "
                "evaluations reused"
            )
        if self.pool_health is not None:
            lines.append(f"  evaluation pool       = {self.pool_health.summary()}")
        if self.health_log:
            retried = sum(1 for h in self.health_log if h.retries > 0)
            escalated = sum(1 for h in self.health_log if h.escalated)
            lines.append(
                f"  resilient solves      = {len(self.health_log)} "
                f"({retried} retried, {escalated} escalated)"
            )
        if self.store_quarantined:
            lines.append(
                f"  WARNING: store quarantined {self.store_quarantined} "
                "corrupt record line(s); see the .quarantine sidecar"
            )
        for event in self.degradations:
            lines.append(
                f"  WARNING: plane degraded {event.from_mode} -> "
                f"{event.to_mode} after {event.evaluations} evaluations "
                f"({event.reason})"
            )
        if self.status != "completed":
            lines.append(
                f"  WARNING: search stopped early ({self.status}: "
                f"{self.search.stop_reason}); windows are best-so-far"
            )
        if not self.converged:
            lines.append(
                "  WARNING: solver did not converge at the optimum; "
                "figures are the last iterate"
            )
        return "\n".join(lines)


def windim(
    network: ClosedNetwork,
    solver: Union[str, Solver] = "mva-heuristic",
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    pool_mode: Optional[str] = None,
    shared_pool: Optional["PersistentEvalPool"] = None,
    start: Optional[Sequence[int]] = None,
    initial_strategy: str = "hops",
    max_window: int = 64,
    initial_step: int = 2,
    max_halvings: int = 8,
    max_evaluations: int = 10_000,
    resilient: bool = False,
    reuse: bool = False,
    store_path: Optional[str] = None,
    budget: Optional[SearchBudget] = None,
    max_seconds: Optional[float] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 25,
    resume: bool = False,
    handle_signals: bool = False,
) -> WindimResult:
    """Dimension the end-to-end windows of ``network`` for maximum power.

    Parameters
    ----------
    network:
        Closed multichain model of the flow-controlled network; chain
        populations in it are ignored (they are the decision variables).
    solver:
        Performance solver used for objective evaluations — the thesis
        uses ``"mva-heuristic"``; ``"mva-exact"``/``"convolution"`` give
        the (expensive) exact variant for comparison.
    backend:
        Solver kernel backend (``"scalar"``/``"vectorized"``/
        ``"compiled"``; ``None`` = process default, see
        :mod:`repro.backend`).  A kernel choice, not an algorithm
        choice: checkpoints written under one backend resume cleanly
        under the others (the parity wall pins them to ≤ 1e-8).
    workers:
        When > 1 (named solvers only), objective evaluations run on a
        process pool of this size.  Under the default persistent pool
        mode the workers are created once, receive the model through a
        shared-memory arena, and are kept saturated by the asynchronous
        :class:`~repro.parallel.scheduler.SpeculativeScheduler` (the
        search trajectory is identical to the serial run); under
        ``per-batch`` each neighborhood is batch-evaluated through
        :meth:`~repro.core.objective.WindowObjective.batch_solve`.
        Speculative neighbors count as evaluations either way.
        Incompatible with ``resilient=True`` (health records are
        in-process); use ``solver="resilient"`` to combine parallelism
        with the ladder.
    pool_mode:
        ``"persistent"`` or ``"per-batch"``; ``None`` defers to the
        ``REPRO_POOL`` environment variable, then ``"persistent"``.
        See :class:`~repro.core.objective.WindowObjective`.
    shared_pool:
        A campaign-owned :class:`~repro.parallel.pool.PersistentEvalPool`
        to borrow instead of creating one (see
        :func:`repro.analysis.sweeps.optimal_window_sweep`): the arena is
        re-targeted at this network and the pool is left running on
        return.  Requires ``workers`` to match the pool and a same-shape
        network.
    start:
        Explicit initial window vector; overrides ``initial_strategy``.
    initial_strategy:
        Named initialiser (``"hops"`` default; thesis §4.4).
    max_window:
        Upper bound of every window (search space ``[1, max_window]^R``).
    initial_step / max_halvings / max_evaluations:
        Pattern-search knobs; see
        :func:`repro.search.pattern.pattern_search`.
    resilient:
        Wrap the solver in the retry/escalation ladder
        (:class:`~repro.resilience.ladder.ResilientSolver`); the result
        then carries per-evaluation health records.
    reuse:
        Enable the cross-evaluation reuse engine
        (:class:`~repro.core.reuse.ReuseEngine`): fixed points are
        warm-started from the nearest solved neighbour, exact solvers
        share a lattice cache, and candidates whose certified
        lower bound (:meth:`~repro.core.objective.WindowObjective.
        lower_bound`) exceeds the incumbent are pruned without a solve.
        Neither mechanism can change the chosen optimum: warm starts
        keep the solvers' stopping criteria (values stay within the
        1e-8 parity band) and pruning only ever skips provably
        dominated candidates.
    store_path:
        Persistent :class:`~repro.search.store.EvaluationStore` file.
        Previously stored evaluations (values and warm-start seeds) are
        preloaded before searching — counted in ``store_seeded``, paid
        for by no fresh solves — and every fresh evaluation of this run
        is appended for the next one.  The store is fingerprinted to
        the network + solver; reusing it on a different instance raises
        :class:`~repro.errors.SearchError`.  Independent of
        ``checkpoint_path`` (either, both, or neither may be given).
    budget / max_seconds:
        Search budget.  ``max_seconds`` is shorthand for
        ``SearchBudget(max_seconds=...)``; passing both is an error.  When
        the budget runs out the result is the best-so-far vector with
        ``status="budget_exhausted"`` — the run never hangs.
    checkpoint_path:
        When given, the evaluation cache is checkpointed to this file
        (atomically) every ``checkpoint_every`` fresh evaluations, on
        completion, and on ``KeyboardInterrupt``.
    checkpoint_every:
        Fresh evaluations between periodic checkpoint writes.
    resume:
        Load ``checkpoint_path`` (if it exists) before searching; cached
        evaluations are reused so only new work is paid for.  A missing
        file starts a fresh run, so crash-loop supervisors can always pass
        ``resume=True``.
    handle_signals:
        Install SIGINT/SIGTERM handlers for the duration of the search
        that flush a final checkpoint before interrupting (main thread
        only; requires ``checkpoint_path``).

    Returns
    -------
    WindimResult
    """
    if start is None:
        start_point: Tuple[int, ...] = initial_windows(network, initial_strategy)
    else:
        if len(start) != network.num_chains:
            raise ModelError(
                f"expected {network.num_chains} initial windows, got {len(start)}"
            )
        start_point = tuple(int(w) for w in start)

    if budget is not None and max_seconds is not None:
        raise SearchError("pass either budget or max_seconds, not both")
    if max_seconds is not None:
        budget = SearchBudget(max_seconds=max_seconds)

    resilient_solver: Optional[ResilientSolver] = None
    if resilient:
        if workers is not None and workers > 1:
            raise SearchError(
                "resilient=True collects per-evaluation health records "
                "in-process and cannot be combined with workers > 1; pass "
                'solver="resilient" instead to parallelise ladder solves'
            )
        primary = "mva-heuristic" if solver == "resilient" else solver
        resilient_solver = ResilientSolver(primary, backend=backend)
        solver = resilient_solver

    objective = WindowObjective(
        network,
        solver,
        backend=backend,
        workers=workers,
        reuse=reuse,
        pool_mode=pool_mode,
    )
    if shared_pool is not None:
        if not objective.parallel:
            raise SearchError(
                "shared_pool requires workers > 1 and a named solver"
            )
        objective.attach_pool(shared_pool)
    space = IntegerBox.windows(network.num_chains, max_window)
    cache = EvaluationCache(objective)
    solver_label = solver if isinstance(solver, str) else getattr(
        solver, "primary_name", getattr(solver, "__name__", "custom")
    )

    manager: Optional[CheckpointManager] = None
    seeded = 0
    if checkpoint_path is not None:
        manager = CheckpointManager(
            checkpoint_path,
            every=checkpoint_every,
            meta={
                "algorithm": "windim/pattern-search",
                "num_chains": network.num_chains,
                "max_window": max_window,
                "solver": str(solver_label),
                # Informational only: cache entries are backend-agnostic
                # (kernels agree to <= 1e-8), so resume never checks this.
                "backend": backend if backend is not None else "default",
                "initial_step": initial_step,
                "max_halvings": max_halvings,
                "start": list(start_point),
            },
        )
        if resume and os.path.exists(checkpoint_path):
            try:
                checkpoint = load_checkpoint(checkpoint_path)
            except CheckpointCorruptError as error:
                # Self-healing resume: a torn or bit-rotted checkpoint
                # must not brick a crash-loop supervisor that always
                # passes resume=True.  Quarantine the damaged file and
                # start fresh; the next periodic flush replaces it.
                quarantine = checkpoint_path + ".corrupt"
                os.replace(checkpoint_path, quarantine)
                warnings.warn(
                    f"checkpoint {checkpoint_path} is corrupt ({error}); "
                    f"moved to {quarantine} and starting a fresh run",
                    RuntimeWarning,
                    stacklevel=2,
                )
                checkpoint = None
            if checkpoint is not None:
                saved_chains = checkpoint.meta.get("num_chains")
                if (
                    saved_chains is not None
                    and int(saved_chains) != network.num_chains
                ):
                    raise SearchError(
                        f"checkpoint {checkpoint_path} is for a "
                        f"{saved_chains}-chain problem; this network has "
                        f"{network.num_chains} chains"
                    )
                seeded = checkpoint.seed_cache(cache)
        manager.attach(cache)
    elif resume:
        raise SearchError("resume=True requires checkpoint_path")
    elif handle_signals:
        raise SearchError("handle_signals=True requires checkpoint_path")

    store: Optional[EvaluationStore] = None
    if store_path is not None:
        from repro.backend import parity_tier

        store = EvaluationStore.open(
            store_path,
            model_fingerprint(
                network, str(solver_label), backend_tier=parity_tier(backend)
            ),
        )
        # Stored values enter cache.values directly (like checkpoint
        # seeds): neither hits nor misses, so the run's evaluation count
        # keeps measuring fresh work only.
        for point, value in store.values.items():
            cache.values.setdefault(point, value)
        for point, seed in store.seeds.items():
            objective.prime_seed(point, seed)

    recorded_history = 0

    def note_evaluation(live_cache: EvaluationCache) -> None:
        """Per-fresh-evaluation hook: persist to the store, then checkpoint."""
        nonlocal recorded_history
        if store is not None:
            history = live_cache.history
            while recorded_history < len(history):
                point, value = history[recorded_history]
                recorded_history += 1
                if point in store.values:
                    continue
                solution = objective.cached_solution(point)
                seed = (
                    solution.queue_lengths
                    if solution is not None and solution.converged
                    else None
                )
                store.record(point, value, seed)
        if manager is not None:
            manager.note_evaluation(live_cache)

    on_evaluation = (
        note_evaluation if (store is not None or manager is not None) else None
    )

    # One plane per run: build_plane picks the execution path (resilient
    # ladder / persistent fleet / per-batch pool / serial) from the
    # objective's configuration, and the context manager guarantees the
    # drain-then-close lifecycle on every exit path — a budget-exhausted
    # or interrupted run can no longer leave paid-for pool results
    # unmerged or workers alive.
    plane = build_plane(
        objective,
        resilient_solver=resilient_solver,
        cache=cache,
        space=space,
        budget=budget,
        max_evaluations=max_evaluations,
        on_evaluation=on_evaluation,
        bound=objective.lower_bound if reuse else None,
        seed_for=objective.seed_for if reuse else None,
    )

    def run_search() -> SearchResult:
        return pattern_search(
            objective,
            start_point,
            space,
            initial_step=initial_step,
            max_halvings=max_halvings,
            plane=plane,
        )

    try:
        with plane:
            if manager is not None and handle_signals:
                with signal_checkpoint_guard(manager):
                    search = run_search()
            else:
                search = run_search()
    except KeyboardInterrupt:
        # Interrupted by a signal (whose handler already flushed) or by a
        # KeyboardInterrupt raised inside the objective — flush either way
        # so no completed evaluation is lost, then let the caller see it.
        if manager is not None:
            manager.flush()
        raise
    finally:
        if store is not None:
            store.close()
    # PoolHealth is plain data; the plane snapshots it before close()
    # drops the pool so the result can still report fleet statistics.
    pool_health = plane.pool_health
    if manager is not None:
        manager.flush()

    best = search.best_point
    solution = objective.solution(best)
    report = power_report(solution)
    return WindimResult(
        windows=best,
        power=report.power,
        report=report,
        solution=solution,
        search=search,
        initial_windows=start_point,
        converged=solution.converged,
        status=search.status,
        health_log=tuple(resilient_solver.health_log)
        if resilient_solver is not None
        else (),
        seeded_evaluations=seeded,
        store_seeded=store.loaded if store is not None else 0,
        reuse_stats=objective.reuse_stats,
        pool_health=pool_health,
        degradations=plane.degradations,
        store_quarantined=store.quarantined if store is not None else 0,
    )
