"""The paper's primary contribution: power metric + WINDIM (Chapter 4).

* :func:`~repro.core.windim.windim` — the WINDIM window-dimensioning
  algorithm (top-level entry point).
* :func:`~repro.core.power.network_power` and friends — the power
  criterion ``P = lambda/T``.
* :class:`~repro.core.objective.WindowObjective` — windows → ``1/P``.
* :mod:`~repro.core.kleinrock` — the p-hop M/M/1 window model.
* :mod:`~repro.core.initializers` — initial window strategies.
"""

from repro.core.initializers import INITIAL_WINDOW_STRATEGIES, initial_windows
from repro.core.kleinrock import (
    hop_count_windows,
    kleinrock_delay,
    kleinrock_power,
    kleinrock_throughput,
    kleinrock_window_for_throughput,
    optimal_window,
)
from repro.core.constraints import StationCapacityConstraint, constrained_windim
from repro.core.multistart import windim_multistart
from repro.core.objective import SOLVERS, WindowObjective, resolve_solver
from repro.core.power import PowerReport, inverse_power, network_power, power_report
from repro.core.windim import WindimResult, windim

__all__ = [
    "windim",
    "windim_multistart",
    "constrained_windim",
    "StationCapacityConstraint",
    "WindimResult",
    "network_power",
    "inverse_power",
    "power_report",
    "PowerReport",
    "WindowObjective",
    "resolve_solver",
    "SOLVERS",
    "initial_windows",
    "INITIAL_WINDOW_STRATEGIES",
    "hop_count_windows",
    "optimal_window",
    "kleinrock_delay",
    "kleinrock_throughput",
    "kleinrock_power",
    "kleinrock_window_for_throughput",
]
