"""Window-setting objective function (the APL ``FCT`` role).

:class:`WindowObjective` turns a closed network plus a solver into a plain
``windows -> 1/power`` callable that the optimisers of :mod:`repro.search`
can minimise.  It also remembers the full :class:`~repro.solution.
NetworkSolution` of the best point seen, so WINDIM can report class
throughputs and delays without re-solving.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from repro.core.power import inverse_power
from repro.errors import ModelError, SolverError
from repro.queueing.network import ClosedNetwork
from repro.solution import NetworkSolution

__all__ = ["WindowObjective", "resolve_solver", "SOLVERS"]

Point = Tuple[int, ...]
Solver = Callable[[ClosedNetwork], NetworkSolution]


def _heuristic_solver(network: ClosedNetwork) -> NetworkSolution:
    from repro.mva.heuristic import solve_mva_heuristic

    return solve_mva_heuristic(network)


def _exact_mva_solver(network: ClosedNetwork) -> NetworkSolution:
    from repro.exact.mva_exact import solve_mva_exact

    return solve_mva_exact(network)


def _convolution_solver(network: ClosedNetwork) -> NetworkSolution:
    from repro.exact.convolution import solve_convolution

    return solve_convolution(network)


def _schweitzer_solver(network: ClosedNetwork) -> NetworkSolution:
    from repro.mva.schweitzer import solve_schweitzer

    return solve_schweitzer(network)


def _linearizer_solver(network: ClosedNetwork) -> NetworkSolution:
    from repro.mva.linearizer import solve_linearizer

    return solve_linearizer(network)


def _resilient_solver(network: ClosedNetwork) -> NetworkSolution:
    from repro.resilience.ladder import solve_resilient

    return solve_resilient(network, "mva-heuristic")


#: Named solvers accepted by :func:`resolve_solver` and the CLI.
SOLVERS: Dict[str, Solver] = {
    "mva-heuristic": _heuristic_solver,
    "mva-exact": _exact_mva_solver,
    "convolution": _convolution_solver,
    "schweitzer": _schweitzer_solver,
    "linearizer": _linearizer_solver,
    "resilient": _resilient_solver,
}


def resolve_solver(solver: "str | Solver") -> Solver:
    """Map a solver name (or pass through a callable) to a solver."""
    if callable(solver):
        return solver
    try:
        return SOLVERS[solver]
    except KeyError:
        raise ModelError(
            f"unknown solver {solver!r}; expected one of {sorted(SOLVERS)} "
            "or a callable"
        ) from None


class WindowObjective:
    """Callable ``windows -> 1/power`` for a fixed network topology.

    Parameters
    ----------
    network:
        The closed network whose chain populations are the decision
        variables; its current populations are irrelevant.
    solver:
        Solver name from :data:`SOLVERS` or any
        ``ClosedNetwork -> NetworkSolution`` callable.
        Defaults to the thesis MVA heuristic.

    Notes
    -----
    A window vector that makes the solver fail (e.g. a lattice-size guard
    on an exact solver) evaluates to ``inf`` rather than raising, so a
    search simply avoids it; genuine model errors still propagate.
    """

    def __init__(self, network: ClosedNetwork, solver: "str | Solver" = "mva-heuristic"):
        self._network = network
        self._solver = resolve_solver(solver)
        self._solutions: Dict[Point, NetworkSolution] = {}
        self.evaluations = 0

    @property
    def network(self) -> ClosedNetwork:
        """The underlying network template."""
        return self._network

    def __call__(self, windows: Sequence[int]) -> float:
        """Objective value ``F = 1/P`` at the given window vector."""
        key = tuple(int(w) for w in windows)
        if len(key) != self._network.num_chains:
            raise ModelError(
                f"expected {self._network.num_chains} windows, got {len(key)}"
            )
        if any(w < 0 for w in key):
            raise ModelError(f"window sizes must be >= 0, got {key}")
        self.evaluations += 1
        candidate = self._network.with_populations(key)
        try:
            solution = self._solver(candidate)
        except SolverError:
            return float("inf")
        self._solutions[key] = solution
        return inverse_power(solution)

    def solution(self, windows: Sequence[int]) -> NetworkSolution:
        """The full solution at ``windows`` (solving now if needed)."""
        key = tuple(int(w) for w in windows)
        if key not in self._solutions:
            self(key)
        if key not in self._solutions:
            raise SolverError(f"no solution obtainable at windows {key}")
        return self._solutions[key]
