"""Window-setting objective function (the APL ``FCT`` role).

:class:`WindowObjective` turns a closed network plus a solver into a plain
``windows -> 1/power`` callable that the optimisers of :mod:`repro.search`
can minimise.  It also remembers the full :class:`~repro.solution.
NetworkSolution` of the best point seen, so WINDIM can report class
throughputs and delays without re-solving.

Beyond single evaluations, :meth:`WindowObjective.batch_solve` evaluates a
whole list of window vectors in one call — a pattern-search neighborhood
or a multistart seed list — optionally dispatching the solves across a
``concurrent.futures`` process pool (``workers=N``).  Named solvers and
:class:`~repro.queueing.network.ClosedNetwork` are picklable, so each
worker reconstructs the candidate network from ``(solver name, backend,
network, windows)`` and ships back the full solution.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.backend import resolve_backend
from repro.core.power import inverse_power
from repro.errors import ModelError, SolverError
from repro.queueing.network import ClosedNetwork
from repro.solution import NetworkSolution

__all__ = ["WindowObjective", "resolve_solver", "SOLVERS"]

Point = Tuple[int, ...]
Solver = Callable[..., NetworkSolution]


def _heuristic_solver(
    network: ClosedNetwork, backend: Optional[str] = None
) -> NetworkSolution:
    from repro.mva.heuristic import solve_mva_heuristic

    return solve_mva_heuristic(network, backend=backend)


def _exact_mva_solver(
    network: ClosedNetwork, backend: Optional[str] = None
) -> NetworkSolution:
    from repro.exact.mva_exact import solve_mva_exact

    return solve_mva_exact(network, backend=backend)


def _convolution_solver(
    network: ClosedNetwork, backend: Optional[str] = None
) -> NetworkSolution:
    # The convolution algorithm has a single kernel; the backend flag is
    # accepted (and validated) for interface uniformity.
    resolve_backend(backend)
    from repro.exact.convolution import solve_convolution

    return solve_convolution(network)


def _schweitzer_solver(
    network: ClosedNetwork, backend: Optional[str] = None
) -> NetworkSolution:
    from repro.mva.schweitzer import solve_schweitzer

    return solve_schweitzer(network, backend=backend)


def _linearizer_solver(
    network: ClosedNetwork, backend: Optional[str] = None
) -> NetworkSolution:
    from repro.mva.linearizer import solve_linearizer

    return solve_linearizer(network, backend=backend)


def _resilient_solver(
    network: ClosedNetwork, backend: Optional[str] = None
) -> NetworkSolution:
    from repro.resilience.ladder import solve_resilient

    return solve_resilient(network, "mva-heuristic", backend=backend)


#: Named solvers accepted by :func:`resolve_solver` and the CLI.  Every
#: entry takes ``(network, backend=None)``; the backend selects the kernel
#: implementation (see :mod:`repro.backend`), never the algorithm.
SOLVERS: Dict[str, Solver] = {
    "mva-heuristic": _heuristic_solver,
    "mva-exact": _exact_mva_solver,
    "convolution": _convolution_solver,
    "schweitzer": _schweitzer_solver,
    "linearizer": _linearizer_solver,
    "resilient": _resilient_solver,
}


def resolve_solver(solver: "str | Solver") -> Solver:
    """Map a solver name (or pass through a callable) to a solver."""
    if callable(solver):
        return solver
    try:
        return SOLVERS[solver]
    except KeyError:
        raise ModelError(
            f"unknown solver {solver!r}; expected one of {sorted(SOLVERS)} "
            "or a callable"
        ) from None


def _solve_windows(
    solver_name: str,
    backend: Optional[str],
    network: ClosedNetwork,
    key: Point,
) -> "Tuple[float, Optional[NetworkSolution]]":
    """Process-pool work item: solve one window vector from scratch.

    Module-level (hence picklable) and self-contained: a worker only needs
    the solver *name*, the kernel backend, the template network, and the
    windows.  Mirrors ``WindowObjective.__call__`` semantics: a
    ``SolverError`` becomes ``(inf, None)`` so searches route around the
    point instead of dying.
    """
    solver = SOLVERS[solver_name]
    candidate = network.with_populations(key)
    try:
        solution = solver(candidate, backend=backend)
    except SolverError:
        return float("inf"), None
    return inverse_power(solution), solution


class WindowObjective:
    """Callable ``windows -> 1/power`` for a fixed network topology.

    Parameters
    ----------
    network:
        The closed network whose chain populations are the decision
        variables; its current populations are irrelevant.
    solver:
        Solver name from :data:`SOLVERS` or any
        ``ClosedNetwork -> NetworkSolution`` callable.
        Defaults to the thesis MVA heuristic.
    backend:
        Kernel backend forwarded to named solvers (``"scalar"`` /
        ``"vectorized"``; ``None`` = process default, see
        :mod:`repro.backend`).  Ignored for custom callables, which own
        their kernels.
    workers:
        When > 1 *and* the solver is a registry name,
        :meth:`batch_solve` fans its points out over a process pool of
        this size; single evaluations are unaffected.  ``None``/``0``/
        ``1`` keeps everything in-process.

    Notes
    -----
    A window vector that makes the solver fail (e.g. a lattice-size guard
    on an exact solver) evaluates to ``inf`` rather than raising, so a
    search simply avoids it; genuine model errors still propagate.
    """

    def __init__(
        self,
        network: ClosedNetwork,
        solver: "str | Solver" = "mva-heuristic",
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ):
        if backend is not None:
            resolve_backend(backend)  # validate eagerly
        self._network = network
        self._solver_name = solver if isinstance(solver, str) else None
        self._solver = resolve_solver(solver)
        self._backend = backend
        self._workers = int(workers) if workers else 0
        if self._workers < 0:
            raise ModelError(f"workers must be >= 0, got {workers}")
        if self._workers > 1 and self._solver_name is None:
            raise ModelError(
                "parallel batch evaluation (workers > 1) requires a named "
                f"solver from {sorted(SOLVERS)}; custom callables may not "
                "be picklable"
            )
        self._pool: Optional[ProcessPoolExecutor] = None
        self._solutions: Dict[Point, NetworkSolution] = {}
        self.evaluations = 0

    @property
    def network(self) -> ClosedNetwork:
        """The underlying network template."""
        return self._network

    @property
    def backend(self) -> Optional[str]:
        """Kernel backend forwarded to named solvers (None = default)."""
        return self._backend

    @property
    def parallel(self) -> bool:
        """True when :meth:`batch_solve` dispatches to a process pool."""
        return self._workers > 1 and self._solver_name is not None

    def _key(self, windows: Sequence[int]) -> Point:
        key = tuple(int(w) for w in windows)
        if len(key) != self._network.num_chains:
            raise ModelError(
                f"expected {self._network.num_chains} windows, got {len(key)}"
            )
        if any(w < 0 for w in key):
            raise ModelError(f"window sizes must be >= 0, got {key}")
        return key

    def __call__(self, windows: Sequence[int]) -> float:
        """Objective value ``F = 1/P`` at the given window vector."""
        key = self._key(windows)
        self.evaluations += 1
        candidate = self._network.with_populations(key)
        try:
            if self._solver_name is not None:
                solution = self._solver(candidate, backend=self._backend)
            else:
                solution = self._solver(candidate)
        except SolverError:
            return float("inf")
        self._solutions[key] = solution
        return inverse_power(solution)

    def batch_solve(self, batch: Sequence[Sequence[int]]) -> List[float]:
        """Evaluate a whole batch of window vectors in one call.

        The batch is typically a pattern-search neighborhood or a
        multistart seed list.  With ``workers > 1`` (and a named solver)
        the solves run concurrently on a process pool — created lazily on
        first use and reused across calls; otherwise they run serially
        in-process.  Either way the full solutions are retained, so
        :meth:`solution` is free afterwards, and ``evaluations`` grows by
        ``len(batch)``.

        Returns the objective values in batch order (``inf`` where the
        solver failed).  Duplicate vectors in one batch are solved once.
        """
        keys = [self._key(w) for w in batch]
        if not keys:
            return []
        if not self.parallel:
            return [self(k) for k in keys]

        unique = list(dict.fromkeys(keys))
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._workers)
        results = self._pool.map(
            _solve_windows,
            [self._solver_name] * len(unique),
            [self._backend] * len(unique),
            [self._network] * len(unique),
            unique,
        )
        values: Dict[Point, float] = {}
        for key, (value, solution) in zip(unique, results):
            self.evaluations += 1
            values[key] = value
            if solution is not None:
                self._solutions[key] = solution
        return [values[k] for k in keys]

    def close(self) -> None:
        """Shut down the process pool (no-op when none was created)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "WindowObjective":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def solution(self, windows: Sequence[int]) -> NetworkSolution:
        """The full solution at ``windows`` (solving now if needed)."""
        key = tuple(int(w) for w in windows)
        if key not in self._solutions:
            self(key)
        if key not in self._solutions:
            raise SolverError(f"no solution obtainable at windows {key}")
        return self._solutions[key]
