"""Window-setting objective function (the APL ``FCT`` role).

:class:`WindowObjective` turns a closed network plus a solver into a plain
``windows -> 1/power`` callable that the optimisers of :mod:`repro.search`
can minimise.  It also remembers the full :class:`~repro.solution.
NetworkSolution` of the best point seen, so WINDIM can report class
throughputs and delays without re-solving.

Beyond single evaluations, :meth:`WindowObjective.batch_solve` evaluates a
whole list of window vectors in one call — a pattern-search neighborhood
or a multistart seed list — optionally dispatching the solves across a
``concurrent.futures`` process pool (``workers=N``).  Named solvers and
:class:`~repro.queueing.network.ClosedNetwork` are picklable, so each
worker reconstructs the candidate network from ``(solver name, backend,
network, windows)`` and ships back the full solution.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import resolve_backend
from repro.core.power import inverse_power
from repro.core.reuse import ReuseEngine
from repro.errors import ModelError, PoolFailure, SolverError
from repro.mva.bounds import balanced_job_bounds
from repro.queueing.network import ClosedNetwork
from repro.solution import NetworkSolution

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.pool import PersistentEvalPool

__all__ = ["WindowObjective", "resolve_solver", "resolve_pool_mode", "SOLVERS"]

#: Pool strategies for parallel batch evaluation (see ``pool_mode``).
POOL_MODES = ("persistent", "per-batch")

#: Bound on retained full :class:`~repro.solution.NetworkSolution`\ s.
#: At thesis scale a solution is a few KB and the cap is invisible; on
#: the 1000-node / 500-chain fixtures each one carries ~13 MB of dense
#: matrices, so an unbounded dict turns a 10k-evaluation dimensioning
#: run into >100 GB of dead state.  Eviction is least-recently-*used*;
#: every consumer already tolerates a miss (``solution()`` re-solves,
#: ``cached_solution()`` returns None and the store harvest skips).
DEFAULT_MAX_SOLUTIONS = 256


def resolve_pool_mode(pool_mode: Optional[str]) -> str:
    """Validate a pool mode, defaulting from ``REPRO_POOL`` or "persistent".

    Mirrors :func:`repro.backend.resolve_backend`: an explicit argument
    wins, then the ``REPRO_POOL`` environment variable, then the
    persistent pool (the fast path).
    """
    mode = pool_mode or os.environ.get("REPRO_POOL") or "persistent"
    if mode not in POOL_MODES:
        raise ModelError(
            f"unknown pool mode {mode!r}; expected one of {list(POOL_MODES)}"
        )
    return mode

Point = Tuple[int, ...]
Solver = Callable[..., NetworkSolution]


def _heuristic_solver(
    network: ClosedNetwork,
    backend: Optional[str] = None,
    warm_start=None,
) -> NetworkSolution:
    from repro.mva.heuristic import solve_mva_heuristic

    return solve_mva_heuristic(network, backend=backend, warm_start=warm_start)


def _exact_mva_solver(
    network: ClosedNetwork,
    backend: Optional[str] = None,
    lattice_cache=None,
) -> NetworkSolution:
    from repro.exact.mva_exact import solve_mva_exact

    return solve_mva_exact(network, backend=backend, lattice_cache=lattice_cache)


def _convolution_solver(
    network: ClosedNetwork, backend: Optional[str] = None
) -> NetworkSolution:
    # The convolution algorithm has a single kernel; the backend flag is
    # accepted (and validated) for interface uniformity.
    resolve_backend(backend)
    from repro.exact.convolution import solve_convolution

    return solve_convolution(network)


def _schweitzer_solver(
    network: ClosedNetwork,
    backend: Optional[str] = None,
    warm_start=None,
) -> NetworkSolution:
    from repro.mva.schweitzer import solve_schweitzer

    return solve_schweitzer(network, backend=backend, warm_start=warm_start)


def _linearizer_solver(
    network: ClosedNetwork,
    backend: Optional[str] = None,
    warm_start=None,
) -> NetworkSolution:
    from repro.mva.linearizer import solve_linearizer

    return solve_linearizer(network, backend=backend, warm_start=warm_start)


def _asymptotic_solver(
    network: ClosedNetwork,
    backend: Optional[str] = None,
    warm_start=None,
) -> NetworkSolution:
    from repro.mva.asymptotic import solve_asymptotic

    return solve_asymptotic(network, backend=backend, warm_start=warm_start)


def _resilient_solver(
    network: ClosedNetwork,
    backend: Optional[str] = None,
    warm_start=None,
    lattice_cache=None,
) -> NetworkSolution:
    from repro.resilience.ladder import solve_resilient

    return solve_resilient(
        network,
        "mva-heuristic",
        backend=backend,
        warm_start=warm_start,
        lattice_cache=lattice_cache,
    )


#: Named solvers accepted by :func:`resolve_solver` and the CLI.  Every
#: entry takes ``(network, backend=None)``; the backend selects the kernel
#: implementation (see :mod:`repro.backend`), never the algorithm.  Where
#: the underlying algorithm supports them, entries additionally accept the
#: reuse keywords ``warm_start=`` / ``lattice_cache=`` (discovered by
#: signature inspection in :class:`repro.core.reuse.ReuseEngine`).
SOLVERS: Dict[str, Solver] = {
    "mva-heuristic": _heuristic_solver,
    "mva-exact": _exact_mva_solver,
    "convolution": _convolution_solver,
    "schweitzer": _schweitzer_solver,
    "linearizer": _linearizer_solver,
    "asymptotic": _asymptotic_solver,
    "resilient": _resilient_solver,
}


def resolve_solver(solver: "str | Solver") -> Solver:
    """Map a solver name (or pass through a callable) to a solver."""
    if callable(solver):
        return solver
    try:
        return SOLVERS[solver]
    except KeyError:
        raise ModelError(
            f"unknown solver {solver!r}; expected one of {sorted(SOLVERS)} "
            "or a callable"
        ) from None


#: Per-process chaos handle for executor workers (resolved once from the
#: environment-staged fault plan; None in fault-free runs).
_WORKER_CHAOS = None
_WORKER_CHAOS_CHECKED = False

#: Set (by the executor initializer, in the child only) to mark a process
#: as a per-batch pool worker.  ``pool.worker.task`` faults must never
#: fire in the orchestrating parent — a crash rule would kill the search
#: itself instead of a worker — and the persistent pool arms its own
#: per-worker handle in ``_worker_main``, so this flag is the only way
#: ``_solve_windows`` may consult worker chaos.
_CHAOS_WORKER_ENV = "REPRO_CHAOS_EXECUTOR_WORKER"


def _mark_executor_worker() -> None:
    """ProcessPoolExecutor initializer: tag the child as a pool worker.

    Runs in the child after fork/spawn, so it also resets the cached
    chaos handle a forked child may have inherited from the parent.
    """
    global _WORKER_CHAOS, _WORKER_CHAOS_CHECKED
    os.environ[_CHAOS_WORKER_ENV] = "1"
    _WORKER_CHAOS = None
    _WORKER_CHAOS_CHECKED = False


def _consult_worker_chaos() -> None:
    global _WORKER_CHAOS, _WORKER_CHAOS_CHECKED
    if not _WORKER_CHAOS_CHECKED:
        if os.environ.get(_CHAOS_WORKER_ENV) != "1":
            return  # not an executor worker: faults never fire here
        from repro.chaos.hooks import worker_chaos

        _WORKER_CHAOS = worker_chaos()
        _WORKER_CHAOS_CHECKED = True
    if _WORKER_CHAOS is not None:
        _WORKER_CHAOS.on_task()


def _solve_windows(
    solver_name: str,
    backend: Optional[str],
    network: ClosedNetwork,
    key: Point,
) -> "Tuple[float, Optional[NetworkSolution]]":
    """Process-pool work item: solve one window vector from scratch.

    Module-level (hence picklable) and self-contained: a worker only needs
    the solver *name*, the kernel backend, the template network, and the
    windows.  Mirrors ``WindowObjective.__call__`` semantics: a
    ``SolverError`` becomes ``(inf, None)`` so searches route around the
    point instead of dying.
    """
    _consult_worker_chaos()
    solver = SOLVERS[solver_name]
    candidate = network.with_populations(key)
    try:
        solution = solver(candidate, backend=backend)
    except SolverError:
        return float("inf"), None
    return inverse_power(solution), solution


class WindowObjective:
    """Callable ``windows -> 1/power`` for a fixed network topology.

    Parameters
    ----------
    network:
        The closed network whose chain populations are the decision
        variables; its current populations are irrelevant.
    solver:
        Solver name from :data:`SOLVERS` or any
        ``ClosedNetwork -> NetworkSolution`` callable.
        Defaults to the thesis MVA heuristic.
    backend:
        Kernel backend forwarded to named solvers (``"scalar"`` /
        ``"vectorized"``; ``None`` = process default, see
        :mod:`repro.backend`).  Ignored for custom callables, which own
        their kernels.
    workers:
        When > 1 *and* the solver is a registry name,
        :meth:`batch_solve` fans its points out over a process pool of
        this size; single evaluations are unaffected.  ``None``/``0``/
        ``1`` keeps everything in-process.
    reuse:
        Enable the cross-evaluation :class:`~repro.core.reuse.ReuseEngine`:
        in-process solves are warm-started from the nearest already-solved
        window vector and exact solvers share a lattice cache.  Converged
        values stay within the 1e-8 parity band (the stopping criteria are
        unchanged); only solve cost drops.  With the *persistent* pool,
        warm-start seeds also reach workers — by shared-memory slot, not
        by pickle — and worker results feed the seed store back.
    pool_mode:
        Parallel dispatch strategy: ``"persistent"`` (default; a
        long-lived :class:`~repro.parallel.pool.PersistentEvalPool`
        whose workers receive the model once through a shared-memory
        arena and then only micro-tasks) or ``"per-batch"`` (the PR 3
        ``ProcessPoolExecutor`` fan-out that re-pickles the network into
        every task — simpler, and the right choice for one-off tiny
        batches).  ``None`` defers to the ``REPRO_POOL`` environment
        variable, then ``"persistent"``.  Irrelevant unless
        ``workers > 1``.
    max_solutions:
        Cap on retained full solutions (:data:`DEFAULT_MAX_SOLUTIONS`;
        least recently used evicted first).  Evicted points re-solve on
        demand in :meth:`solution` and simply skip the warm-seed harvest
        in :meth:`cached_solution` — values, trajectories and optima are
        unaffected, only peak memory is bounded.

    Notes
    -----
    A window vector that makes the solver fail (e.g. a lattice-size guard
    on an exact solver) evaluates to ``inf`` rather than raising, so a
    search simply avoids it; genuine model errors still propagate.
    """

    def __init__(
        self,
        network: ClosedNetwork,
        solver: "str | Solver" = "mva-heuristic",
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        reuse: bool = False,
        pool_mode: Optional[str] = None,
        max_solutions: int = DEFAULT_MAX_SOLUTIONS,
    ):
        if backend is not None:
            resolve_backend(backend)  # validate eagerly
        self._network = network
        self._solver_name = solver if isinstance(solver, str) else None
        self._solver = resolve_solver(solver)
        self._backend = backend
        self._engine = ReuseEngine(self._solver) if reuse else None
        self._bound_uppers: Dict[Tuple[int, int], float] = {}
        self._workers = int(workers) if workers else 0
        if self._workers < 0:
            raise ModelError(f"workers must be >= 0, got {workers}")
        if self._workers > 1 and self._solver_name is None:
            raise ModelError(
                "parallel batch evaluation (workers > 1) requires a named "
                f"solver from {sorted(SOLVERS)}; custom callables may not "
                "be picklable"
            )
        self._pool_mode = resolve_pool_mode(pool_mode)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._eval_pool: Optional["PersistentEvalPool"] = None
        self._eval_pool_owned = True
        if max_solutions < 1:
            raise ModelError(f"max_solutions must be >= 1, got {max_solutions}")
        self._max_solutions = int(max_solutions)
        self._solutions: "OrderedDict[Point, NetworkSolution]" = OrderedDict()
        self.evaluations = 0

    @property
    def network(self) -> ClosedNetwork:
        """The underlying network template."""
        return self._network

    @property
    def backend(self) -> Optional[str]:
        """Kernel backend forwarded to named solvers (None = default)."""
        return self._backend

    @property
    def parallel(self) -> bool:
        """True when :meth:`batch_solve` dispatches to a process pool."""
        return self._workers > 1 and self._solver_name is not None

    @property
    def pool_mode(self) -> str:
        """Resolved parallel dispatch strategy (persistent / per-batch)."""
        return self._pool_mode

    @property
    def workers(self) -> int:
        """Requested pool size (0/1 = in-process)."""
        return self._workers

    def ensure_pool(self) -> "PersistentEvalPool":
        """The lazily created persistent pool backing this objective.

        Only meaningful in parallel persistent mode; the pool is created
        on first use with the objective's network/solver/backend and is
        reused for every later batch, scheduler, and multistart phase of
        the run.
        """
        if not self.parallel:
            raise ModelError("ensure_pool() requires workers > 1")
        if self._pool_mode != "persistent":
            raise ModelError(
                "ensure_pool() requires pool_mode='persistent', not "
                f"{self._pool_mode!r}"
            )
        if self._eval_pool is None:
            from repro.parallel.pool import PersistentEvalPool

            self._eval_pool = PersistentEvalPool(
                self._network,
                self._solver_name,
                backend=self._backend,
                workers=self._workers,
            )
            self._eval_pool_owned = True
        return self._eval_pool

    def attach_pool(self, pool: "PersistentEvalPool") -> None:
        """Borrow a campaign-shared persistent pool for this objective.

        The pool is re-targeted at this objective's network (an in-place
        arena rewrite — the workers survive), and is *not* closed by
        :meth:`close`: its owner (e.g. a campaign sweep) outlives any
        single ``windim`` run.
        """
        pool.update_model(self._network, backend=self._backend)
        self._eval_pool = pool
        self._eval_pool_owned = False

    @property
    def pool_health(self):
        """The persistent pool's :class:`PoolHealth` (None when unused)."""
        return self._eval_pool.health if self._eval_pool is not None else None

    def absorb_remote(self, windows: Sequence[int], payload: Dict) -> None:
        """Merge a pool worker's solution payload into this objective.

        The parent-side half of a pool evaluation: the rebuilt solution
        is retained for :meth:`solution` and fed to the reuse engine, so
        remote results seed future warm starts exactly like in-process
        ones.  ``evaluations`` grows by one (a worker solved once).
        """
        from repro.parallel.pool import rebuild_solution

        key = self._key(windows)
        self.evaluations += 1
        if payload is None:
            return
        solution = rebuild_solution(self._network, key, payload)
        self._retain(key, solution)
        if self._engine is not None:
            self._engine.record(key, solution, bool(payload.get("warmed")))

    def seed_for(self, windows: Sequence[int]) -> Optional[np.ndarray]:
        """Warm-start seed for a pool task (None without a reuse engine).

        The nearest already-solved window vector's converged queue
        lengths — the same seed an in-process solve would use, except it
        travels to the worker by shared-memory slot.
        """
        if self._engine is None:
            return None
        return self._engine.nearest_seed(self._key(windows))

    def _retain(self, key: Point, solution: NetworkSolution) -> None:
        """Keep ``solution`` for :meth:`solution`, evicting LRU past the cap."""
        self._solutions[key] = solution
        self._solutions.move_to_end(key)
        while len(self._solutions) > self._max_solutions:
            self._solutions.popitem(last=False)

    def _key(self, windows: Sequence[int]) -> Point:
        key = tuple(int(w) for w in windows)
        if len(key) != self._network.num_chains:
            raise ModelError(
                f"expected {self._network.num_chains} windows, got {len(key)}"
            )
        if any(w < 0 for w in key):
            raise ModelError(f"window sizes must be >= 0, got {key}")
        return key

    @property
    def reuse_stats(self) -> Optional[Dict[str, float]]:
        """Reuse-engine counters (None when ``reuse=False``)."""
        return self._engine.stats() if self._engine is not None else None

    def cached_solution(self, windows: Sequence[int]) -> Optional[NetworkSolution]:
        """The retained solution at ``windows``, or None — never solves.

        The persistent :class:`~repro.search.store.EvaluationStore` uses
        this to harvest converged queue lengths as warm-start seeds
        without triggering extra work.  A cap-evicted point reads as
        None, exactly like a never-evaluated one.
        """
        key = self._key(windows)
        solution = self._solutions.get(key)
        if solution is not None:
            self._solutions.move_to_end(key)
        return solution

    def prime_seed(self, windows: Sequence[int], queue_lengths: np.ndarray) -> None:
        """Feed an externally stored warm-start seed to the reuse engine.

        No-op when ``reuse=False`` or the solver takes no ``warm_start=``;
        the seed is validated lazily at use time by the solver itself.
        """
        if self._engine is not None:
            self._engine.prime_seed(
                self._key(windows), np.asarray(queue_lengths, dtype=np.float64)
            )

    def __call__(self, windows: Sequence[int]) -> float:
        """Objective value ``F = 1/P`` at the given window vector."""
        key = self._key(windows)
        self.evaluations += 1
        candidate = self._network.with_populations(key)
        kwargs: Dict[str, object] = {}
        if self._solver_name is not None:
            kwargs["backend"] = self._backend
        warmed = False
        if self._engine is not None:
            extra = self._engine.solver_kwargs(key)
            warmed = "warm_start" in extra
            kwargs.update(extra)
        try:
            solution = self._solver(candidate, **kwargs)
        except SolverError:
            return float("inf")
        if self._engine is not None:
            self._engine.record(key, solution, warmed)
        self._retain(key, solution)
        return inverse_power(solution)

    def lower_bound(self, windows: Sequence[int]) -> float:
        """Certified lower bound on ``F(windows)`` — no fixed point solved.

        ``F = T / lambda`` with ``T`` the throughput-weighted mean of the
        per-chain transit delays, so unconditionally ``T >= min_r T_r >=
        min_r transit_demand_r`` (waiting contains service at every
        non-source station of ``V(r)``), while per-chain throughput is
        bounded above by its single-chain balanced-job bound
        (:func:`repro.mva.bounds.balanced_job_bounds`): the asymptotic
        components are unconditional, and the balanced-comparison
        component relies on cross-chain interference only ever *lowering*
        a chain's throughput in a product-form network.  Hence

            F(E) >= min_{r: E_r>0} transit_r / sum_{r: E_r>0} ub_r(E_r)

        deflated by ``1 - 1e-9`` against floating-point slack.  A point
        whose bound exceeds the search incumbent is provably dominated,
        which is what lets :func:`repro.search.pattern.pattern_search`
        skip its solve without ever changing the chosen optimum.

        Returns ``-inf`` (never prunes) when the network rejects the
        bound computation, and ``inf`` for the all-zero window vector
        (whose true objective is ``inf`` too).
        """
        key = self._key(windows)
        transit = self._transit_demands()
        upper_sum = 0.0
        min_transit = float("inf")
        for r, w in enumerate(key):
            if w <= 0:
                continue
            try:
                upper_sum += self._throughput_upper(r, w)
            except ModelError:
                return float("-inf")
            min_transit = min(min_transit, transit[r])
        if upper_sum <= 0 or not np.isfinite(min_transit) or min_transit <= 0:
            # All windows zero -> F is inf; a zero transit demand gives
            # no information, so never prune on it.
            return float("inf") if upper_sum <= 0 else float("-inf")
        return (min_transit / upper_sum) * (1.0 - 1e-9)

    def _transit_demands(self) -> np.ndarray:
        """``(R,)`` total service demand over each chain's set ``V(r)``."""
        if not hasattr(self, "_transit"):
            mask = self._network.delay_mask()
            self._transit = np.where(mask, self._network.demands, 0.0).sum(axis=1)
        return self._transit

    def _throughput_upper(self, chain: int, window: int) -> float:
        """Memoised balanced-job upper throughput bound for one chain."""
        cached = self._bound_uppers.get((chain, window))
        if cached is None:
            cached = balanced_job_bounds(
                self._network.demands[chain], window
            ).upper
            self._bound_uppers[(chain, window)] = cached
        return cached

    def soa_assessment(self, batch_size: int = 2) -> Tuple[bool, str]:
        """The SoA engagement decision for a ``batch_size`` batch.

        Delegates to :func:`repro.mva.autobatch.assess`: a named solver
        with a batched fixed point, no reuse engine — warm starts are
        inherently per-key (each solve seeds from its nearest already-
        solved neighbour, which may be *in the same batch*), so the
        reuse path keeps the serial loop — a dense kernel backend, and
        a per-network tensor under the machine's calibrated crossover
        (or the compiled tier with numba, where the pack kernel has no
        crossover).  Returns ``(engage, reason)``; callers log declines
        so caps are never silent.
        """
        from repro.mva import autobatch

        return autobatch.assess(
            self._solver_name,
            self._engine is not None,
            self._backend,
            self._network.num_chains * self._network.num_stations,
            batch_size,
        )

    @property
    def soa_batchable(self) -> bool:
        """True when serial batches can run as one cross-network SoA pass.

        The engagement decision of :meth:`soa_assessment` for a minimal
        (two-network) batch.  On the reference tiers the SoA pass
        performs the same floating-point operations in the same order as
        per-key cold solves, so switching it on never changes a search
        trajectory.
        """
        return self.soa_assessment()[0]

    def _batch_solve_soa(self, keys: List[Point]) -> List[float]:
        """Serial-mode fast path: one packed tensor pass for the batch."""
        from repro.mva.soa import solve_windows_batched

        unique = list(dict.fromkeys(keys))
        solutions = solve_windows_batched(
            self._network,
            unique,
            solver=self._solver_name,
            backend=self._backend,
        )
        values: Dict[Point, float] = {}
        for key, solution in zip(unique, solutions):
            self.evaluations += 1
            self._retain(key, solution)
            values[key] = inverse_power(solution)
        return [values[k] for k in keys]

    def batch_solve_networks(
        self, networks: Sequence[ClosedNetwork]
    ) -> "List[Tuple[float, Optional[NetworkSolution]]]":
        """Evaluate a batch of arbitrary (mixed-topology) networks.

        The heterogeneous counterpart of :meth:`batch_solve`: the
        networks need not share this objective's topology, so results
        bypass the window-keyed solution cache and are returned directly
        as ``(1/power, solution)`` pairs in input order (``(inf, None)``
        where the solver failed).  When :func:`repro.mva.autobatch.
        assess` engages, the whole batch runs as padded heterogeneous
        SoA packs (:func:`repro.mva.soa.solve_networks_batched` — on the
        compiled tier, one JIT pack kernel call per chunk), agreeing
        with serial solves to the 1e-8 parity band; declined batches are
        logged with the reason and solved serially.  ``evaluations``
        grows by ``len(networks)`` either way.
        """
        from repro.mva import autobatch

        networks = list(networks)
        if not networks:
            return []
        per_network = max(n.num_chains * n.num_stations for n in networks)
        engage, reason = autobatch.assess(
            self._solver_name,
            self._engine is not None,
            self._backend,
            per_network,
            len(networks),
        )
        solutions: List[Optional[NetworkSolution]]
        if engage:
            from repro.mva.soa import solve_networks_batched

            autobatch.record_engaged(len(networks))
            solutions = list(
                solve_networks_batched(
                    networks, solver=self._solver_name, backend=self._backend
                )
            )
        else:
            autobatch.record_declined(reason, len(networks))
            kwargs: Dict[str, object] = {}
            if self._solver_name is not None:
                kwargs["backend"] = self._backend
            solutions = []
            for network in networks:
                try:
                    solutions.append(self._solver(network, **kwargs))
                except SolverError:
                    solutions.append(None)
        results: "List[Tuple[float, Optional[NetworkSolution]]]" = []
        for solution in solutions:
            self.evaluations += 1
            value = inverse_power(solution) if solution is not None else float("inf")
            results.append((value, solution))
        return results

    def batch_solve(self, batch: Sequence[Sequence[int]]) -> List[float]:
        """Evaluate a whole batch of window vectors in one call.

        The batch is typically a pattern-search neighborhood or a
        multistart seed list.  With ``workers > 1`` (and a named solver)
        the solves run concurrently on a process pool — created lazily on
        first use and reused across calls.  In-process batches of a
        batchable named solver on a dense backend run as *one*
        cross-network SoA tensor pass (see :mod:`repro.mva.soa`),
        bit-identical to the per-key loop; everything else runs serially
        in-process.  Either way the full solutions are retained, so
        :meth:`solution` is free afterwards, and ``evaluations`` grows by
        ``len(batch)``.

        Returns the objective values in batch order (``inf`` where the
        solver failed).  Duplicate vectors in one batch are solved once.
        """
        keys = [self._key(w) for w in batch]
        if not keys:
            return []
        if not self.parallel:
            if len(keys) >= 2:
                from repro.mva import autobatch

                engage, reason = self.soa_assessment(len(keys))
                if engage:
                    autobatch.record_engaged(len(keys))
                    return self._batch_solve_soa(keys)
                autobatch.record_declined(reason, len(keys))
            return [self(k) for k in keys]

        unique = list(dict.fromkeys(keys))
        if self._pool_mode == "persistent":
            pool = self.ensure_pool()
            seeds = {}
            for key in unique:
                seed = self.seed_for(key)
                if seed is not None:
                    seeds[key] = seed
            completed = pool.map(unique, seeds=seeds or None)
            values = {}
            for key in unique:
                done = completed[key]
                values[key] = done.value
                self.absorb_remote(key, done.payload)
            return [values[k] for k in keys]

        from concurrent.futures.process import BrokenProcessPool

        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                initializer=_mark_executor_worker,
            )
        try:
            results = self._run_executor(unique)
        except BrokenProcessPool as error:
            # A worker died mid-batch (crash, OOM kill): the executor is
            # permanently broken.  Dispose of it and let the evaluation
            # plane degrade to a lower rung.
            self._dispose_executor(kill=True)
            raise PoolFailure(
                f"per-batch process pool broke: {error}"
            ) from error
        values: Dict[Point, float] = {}
        for key, (value, solution) in zip(unique, results):
            self.evaluations += 1
            values[key] = value
            if solution is not None:
                self._retain(key, solution)
                if self._engine is not None:
                    # Pool workers solve cold, but their converged queue
                    # lengths still seed future in-process neighbours.
                    self._engine.record(key, solution, warmed=False)
        return [values[k] for k in keys]

    def _run_executor(
        self, unique: List[Point]
    ) -> "List[Tuple[float, Optional[NetworkSolution]]]":
        """Run one per-batch fan-out, honouring the task-deadline watchdog.

        Without ``REPRO_TASK_DEADLINE`` this is a plain ``executor.map``.
        With a deadline, the batch runs through futures with a bounded
        wait: a hung executor worker (which ``map`` would block on
        forever) surfaces as :class:`~repro.errors.PoolFailure` after the
        whole-batch allowance, and the wedged executor is killed rather
        than joined.
        """
        import concurrent.futures as futures_module

        deadline_raw = os.environ.get("REPRO_TASK_DEADLINE")
        if not deadline_raw or not deadline_raw.strip():
            return list(
                self._pool.map(
                    _solve_windows,
                    [self._solver_name] * len(unique),
                    [self._backend] * len(unique),
                    [self._network] * len(unique),
                    unique,
                )
            )
        deadline = float(deadline_raw)
        futures = [
            self._pool.submit(
                _solve_windows, self._solver_name, self._backend,
                self._network, key,
            )
            for key in unique
        ]
        # Per-task deadline scaled to the batch: tasks queue behind each
        # other on a small executor, so the whole batch gets deadline x
        # (tasks + 1) before the watchdog declares it hung.
        _done, not_done = futures_module.wait(
            futures, timeout=deadline * (len(unique) + 1)
        )
        if not_done:
            for future in not_done:
                future.cancel()
            self._dispose_executor(kill=True)
            raise PoolFailure(
                f"per-batch executor exceeded the {deadline:g}s task "
                f"deadline with {len(not_done)} of {len(unique)} tasks "
                "unfinished"
            )
        return [future.result() for future in futures]

    def _dispose_executor(self, kill: bool = False) -> None:
        """Drop the per-batch executor; ``kill=True`` SIGKILLs its workers.

        ``shutdown(wait=True)`` on an executor with a hung worker never
        returns, so the broken-pool paths kill the worker processes first
        and then shut down without waiting.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if kill:
            for process in list(getattr(pool, "_processes", {}).values()):
                try:
                    process.kill()
                except Exception:  # pragma: no cover - already dead
                    pass
        try:
            pool.shutdown(wait=not kill, cancel_futures=kill)
        except Exception:  # pragma: no cover - broken executor internals
            pass

    def demote_pool(self, mode: str) -> None:
        """Degrade the parallel dispatch strategy mid-run.

        The evaluation plane's side of the degradation ladder:
        ``"per-batch"`` abandons a broken persistent pool in favour of
        the executor fan-out; ``"serial"`` abandons process pools
        entirely (``workers`` drops to 0, so :meth:`batch_solve` runs
        in-process from then on).  Broken machinery is disposed of with
        prejudice — a wedged pool is never joined.
        """
        if mode not in ("per-batch", "serial"):
            raise ModelError(
                f"cannot demote pool to {mode!r}; "
                "expected 'per-batch' or 'serial'"
            )
        if self._eval_pool is not None:
            if self._eval_pool_owned:
                try:
                    self._eval_pool.close()
                except Exception:  # pragma: no cover - broken fleet
                    pass
            self._eval_pool = None
            self._eval_pool_owned = True
        if mode == "per-batch":
            self._pool_mode = "per-batch"
        else:
            self._dispose_executor(kill=True)
            self._workers = 0

    def close(self) -> None:
        """Shut down owned pools (no-op when none was created).

        A pool borrowed via :meth:`attach_pool` is left running — its
        owner (the campaign) closes it once, after every scenario.
        """
        self._dispose_executor()
        if self._eval_pool is not None:
            if self._eval_pool_owned:
                self._eval_pool.close()
            self._eval_pool = None
            self._eval_pool_owned = True

    def __getstate__(self) -> Dict[str, object]:
        """Spawn-safe pickling: live pools never cross a process boundary.

        A ``WindowObjective`` is shipped to workers (e.g. inside a
        campaign task under the ``spawn`` start method), so its state
        must stay picklable: process pools, and the shared-memory pool
        with its queues, are dropped and lazily recreated on first use
        in the new process.
        """
        state = self.__dict__.copy()
        state["_pool"] = None
        state["_eval_pool"] = None
        state["_eval_pool_owned"] = True
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    def __enter__(self) -> "WindowObjective":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def solution(self, windows: Sequence[int]) -> NetworkSolution:
        """The full solution at ``windows`` (solving now if needed)."""
        key = tuple(int(w) for w in windows)
        if key not in self._solutions:
            self(key)
        if key not in self._solutions:
            raise SolverError(f"no solution obtainable at windows {key}")
        self._solutions.move_to_end(key)
        return self._solutions[key]
