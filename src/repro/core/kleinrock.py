"""Kleinrock's p-hop window model (thesis §4.6, [52]).

The simplest analytical handle on window flow control: model a virtual
channel as ``p`` identical M/M/1 hops with instantaneous end-to-end
acknowledgements.  With network capacity ``mu`` (msg/s) and throughput
``lambda``, the mean network delay is

    T(lambda) = p / (mu - lambda)                       (eq. 4.21)

and a window of ``w`` outstanding messages sustains (Little's law over the
window, eq. 4.22)

    w = p * lambda / (mu - lambda)    <=>    lambda(w) = w mu / (p + w)

Power ``P = lambda/T = lambda (mu - lambda) / p`` is maximised at
``lambda = mu/2``, i.e. at the famous rule

    w* = p    (optimal window = hop count)              (eq. 4.23)

The thesis shows this rule is good when chains barely interact (2-class
example) and poor when they interact strongly (4-class example, Table 4.12
column ``P_4431``).  These closed forms also provide WINDIM's initial
window vector.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.queueing.network import ClosedNetwork

__all__ = [
    "kleinrock_delay",
    "kleinrock_throughput",
    "kleinrock_window_for_throughput",
    "kleinrock_power",
    "optimal_window",
    "hop_count_windows",
]


def kleinrock_delay(throughput: float, capacity: float, hops: int) -> float:
    """Mean network delay ``T = p/(mu - lambda)`` (eq. 4.21)."""
    _validate(capacity, hops)
    if throughput < 0:
        raise ModelError("throughput must be >= 0")
    if throughput >= capacity:
        return float("inf")
    return hops / (capacity - throughput)


def kleinrock_throughput(window: float, capacity: float, hops: int) -> float:
    """Throughput sustained by a window: ``lambda = w mu / (p + w)`` (eq. 4.22)."""
    _validate(capacity, hops)
    if window < 0:
        raise ModelError("window must be >= 0")
    return window * capacity / (hops + window)


def kleinrock_window_for_throughput(throughput: float, capacity: float, hops: int) -> float:
    """Window needed for a target throughput: ``w = p lambda/(mu - lambda)``."""
    _validate(capacity, hops)
    if not 0 <= throughput < capacity:
        raise ModelError(
            f"throughput must lie in [0, capacity); got {throughput} vs {capacity}"
        )
    return hops * throughput / (capacity - throughput)


def kleinrock_power(window: float, capacity: float, hops: int) -> float:
    """Power ``P(w) = lambda(w) (mu - lambda(w)) / p`` of the p-hop model."""
    lam = kleinrock_throughput(window, capacity, hops)
    return lam * (capacity - lam) / hops


def optimal_window(hops: int) -> int:
    """Kleinrock's optimal window ``w* = p`` (eq. 4.23)."""
    if hops < 1:
        raise ModelError(f"hops must be >= 1, got {hops}")
    return hops


def hop_count_windows(network: ClosedNetwork) -> tuple:
    """Per-chain hop-count window vector ``(p_1, ..., p_R)``.

    This is both Kleinrock's recommended setting for non-interacting chains
    and the WINDIM initial point (thesis §4.4).  Hops exclude each chain's
    source queue.
    """
    return tuple(max(1, chain.hop_count) for chain in network.chains)


def _validate(capacity: float, hops: int) -> None:
    if capacity <= 0:
        raise ModelError(f"capacity must be positive, got {capacity}")
    if hops < 1:
        raise ModelError(f"hops must be >= 1, got {hops}")
