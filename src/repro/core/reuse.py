"""Cross-evaluation reuse for WINDIM objective evaluations.

A pattern search evaluates clouds of *adjacent* window vectors, yet each
objective evaluation classically starts from scratch: the MVA fixed
point from the cold balanced initialiser, the exact lattice from
population zero.  :class:`ReuseEngine` makes the cost of an evaluation
depend on its distance from already-solved points instead:

* **Warm starts** — the engine keeps a bounded store of converged
  queue-length matrices keyed by window vector and hands the solver the
  nearest (L1) neighbour's as ``warm_start=``.  The solvers' stopping
  criteria are unchanged, so converged values stay within the existing
  1e-8 parity band; only iteration counts drop.
* **Lattice sharing** — exact solvers receive one shared
  :class:`~repro.exact.lattice_cache.LatticeCache`, so the prefix
  lattices of neighbouring targets are computed once (bit-exact reuse).

Which keyword a solver understands is discovered by signature
inspection, so custom callables participate exactly to the extent they
opt in (a solver without ``warm_start=`` simply runs cold).
"""

from __future__ import annotations

import inspect
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

import numpy as np

__all__ = ["ReuseEngine"]

Point = Tuple[int, ...]

#: Default cap on retained warm-start seeds (one (R, L) float matrix each).
DEFAULT_MAX_SEEDS = 128


def _accepted_keywords(solver: Callable) -> frozenset:
    """Keyword names ``solver`` accepts (empty when inspection fails)."""
    try:
        parameters = inspect.signature(solver).parameters
    except (TypeError, ValueError):
        return frozenset()
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        return frozenset({"warm_start", "lattice_cache"})
    return frozenset(
        name
        for name, p in parameters.items()
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    )


class ReuseEngine:
    """Warm-start seed store + shared lattice cache for one objective.

    Parameters
    ----------
    solver:
        The solver callable the owning objective will invoke; inspected
        once for ``warm_start=`` / ``lattice_cache=`` support.
    max_seeds:
        Bound on retained queue-length seeds; the least recently *stored*
        seed is evicted first.
    """

    def __init__(self, solver: Callable, max_seeds: int = DEFAULT_MAX_SEEDS) -> None:
        keywords = _accepted_keywords(solver)
        self.supports_warm_start = "warm_start" in keywords
        self.supports_lattice = "lattice_cache" in keywords
        self.max_seeds = int(max_seeds)
        self._seeds: "OrderedDict[Point, np.ndarray]" = OrderedDict()
        self._key_matrix: Optional[np.ndarray] = None
        self._lattice_cache = None
        if self.supports_lattice:
            from repro.exact.lattice_cache import LatticeCache

            self._lattice_cache = LatticeCache()
        self.warm_solves = 0
        self.cold_solves = 0
        self.warm_iterations = 0
        self.cold_iterations = 0

    # ------------------------------------------------------------------
    # seed store
    # ------------------------------------------------------------------
    def nearest_seed(self, key: Point) -> Optional[np.ndarray]:
        """Seed of the L1-nearest stored window vector (None when empty).

        Ties break towards the earliest-stored key: ``argmin`` returns
        the first minimal row and the key matrix preserves store order,
        matching a first-wins linear scan.
        """
        if not self._seeds:
            return None
        if self._key_matrix is None:
            self._key_matrix = np.array(list(self._seeds), dtype=np.int64)
        distances = np.abs(self._key_matrix - np.asarray(key, dtype=np.int64)).sum(axis=1)
        nearest = self._key_matrix[int(np.argmin(distances))]
        return self._seeds[tuple(int(x) for x in nearest)]

    def prime_seed(self, key: Point, queue_lengths: np.ndarray) -> None:
        """Store a converged queue-length matrix for ``key``."""
        if not self.supports_warm_start:
            return
        key = tuple(int(x) for x in key)
        if key not in self._seeds and len(self._seeds) >= self.max_seeds:
            self._seeds.popitem(last=False)
            self._key_matrix = None
        elif key not in self._seeds:
            self._key_matrix = None
        self._seeds[key] = np.asarray(queue_lengths, dtype=float)

    # ------------------------------------------------------------------
    # solver integration
    # ------------------------------------------------------------------
    def solver_kwargs(self, key: Point) -> Dict[str, object]:
        """Extra keyword arguments for the solve at window vector ``key``."""
        kwargs: Dict[str, object] = {}
        if self.supports_lattice and self._lattice_cache is not None:
            kwargs["lattice_cache"] = self._lattice_cache
        if self.supports_warm_start:
            seed = self.nearest_seed(key)
            if seed is not None:
                kwargs["warm_start"] = seed
        return kwargs

    def record(self, key: Point, solution, warmed: bool) -> None:
        """Book-keep a finished solve and bank its seed for neighbours."""
        iterations = int(getattr(solution, "iterations", 0))
        if warmed:
            self.warm_solves += 1
            self.warm_iterations += iterations
        else:
            self.cold_solves += 1
            self.cold_iterations += iterations
        self.prime_seed(key, solution.queue_lengths)

    def stats(self) -> Dict[str, float]:
        """Counters for result summaries and benches."""
        out: Dict[str, float] = {
            "warm_solves": self.warm_solves,
            "cold_solves": self.cold_solves,
            "warm_iterations": self.warm_iterations,
            "cold_iterations": self.cold_iterations,
            "seeds": len(self._seeds),
        }
        if self._lattice_cache is not None:
            for name, value in self._lattice_cache.stats().items():
                out[f"lattice_{name}"] = value
        return out
