"""Multi-start WINDIM.

Pattern search is a local method; on the flat-topped power surfaces of
window dimensioning it can park one step away from the global optimum
(the thesis only claims "good" settings, §4.1).  Running the search from
several principled starting points — all three initial-window strategies
plus corner probes — and keeping the best answer removes nearly all of
that gap at a small multiple of the cost, with the evaluation cache
shared so repeated visits are free.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.core.initializers import INITIAL_WINDOW_STRATEGIES, initial_windows
from repro.core.objective import Solver, WindowObjective
from repro.core.power import power_report
from repro.core.windim import WindimResult
from repro.errors import ModelError
from repro.evalplane import build_plane
from repro.queueing.network import ClosedNetwork
from repro.search.cache import EvaluationCache
from repro.search.pattern import pattern_search
from repro.search.result import SearchResult
from repro.search.space import IntegerBox
from repro.search.store import EvaluationStore, model_fingerprint

__all__ = ["windim_multistart"]


def windim_multistart(
    network: ClosedNetwork,
    solver: Union[str, Solver] = "mva-heuristic",
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    pool_mode: Optional[str] = None,
    extra_starts: Optional[Sequence[Sequence[int]]] = None,
    max_window: int = 64,
    initial_step: int = 2,
    max_halvings: int = 8,
    max_evaluations: int = 20_000,
    reuse: bool = False,
    store_path: Optional[str] = None,
) -> WindimResult:
    """Run WINDIM from several starts and keep the best windows.

    Starting points: every named strategy of
    :data:`~repro.core.initializers.INITIAL_WINDOW_STRATEGIES`, a
    mid-range probe, plus any ``extra_starts``.  All runs share one
    evaluation cache, so overlapping trajectories cost nothing.

    ``backend`` selects the solver kernel and ``workers`` a process-pool
    size (as in :func:`repro.core.windim.windim`).  With workers, the
    whole deduplicated seed list is batch-solved up front in one
    :meth:`~repro.core.objective.WindowObjective.batch_solve` call, and
    every search's exploratory neighborhoods run in parallel — under the
    default persistent ``pool_mode`` on one long-lived worker fleet
    (created once, shared by the seed batch and every start's
    speculative scheduler), under ``per-batch`` via synchronous prefetch
    batches.

    ``reuse`` and ``store_path`` behave as in
    :func:`repro.core.windim.windim` — and pay off even more here, since
    every restarted search warm-starts from (and prunes against) the
    accumulated evaluations of all previous starts.

    Returns
    -------
    WindimResult
        As :func:`repro.core.windim.windim`; ``search`` is the run that
        produced the winner, with cache-wide evaluation totals.
    """
    objective = WindowObjective(
        network,
        solver,
        backend=backend,
        workers=workers,
        reuse=reuse,
        pool_mode=pool_mode,
    )
    space = IntegerBox.windows(network.num_chains, max_window)
    cache = EvaluationCache(objective)

    store: Optional[EvaluationStore] = None
    recorded_history = 0
    if store_path is not None:
        solver_label = solver if isinstance(solver, str) else getattr(
            solver, "primary_name", getattr(solver, "__name__", "custom")
        )
        from repro.backend import parity_tier

        store = EvaluationStore.open(
            store_path,
            model_fingerprint(
                network,
                str(solver_label),
                backend_tier=parity_tier(objective.backend),
            ),
        )
        for point, value in store.values.items():
            cache.values.setdefault(point, value)
        for point, seed in store.seeds.items():
            objective.prime_seed(point, seed)

    def persist_evaluation(live_cache: EvaluationCache) -> None:
        nonlocal recorded_history
        history = live_cache.history
        while recorded_history < len(history):
            point, value = history[recorded_history]
            recorded_history += 1
            if store is None or point in store.values:
                continue
            solution = objective.cached_solution(point)
            seed = (
                solution.queue_lengths
                if solution is not None and solution.converged
                else None
            )
            store.record(point, value, seed)

    starts: List[Tuple[int, ...]] = []
    for strategy in INITIAL_WINDOW_STRATEGIES:
        starts.append(initial_windows(network, strategy))
    midpoint = tuple(
        max(1, min(max_window, max_window // 4)) for _ in range(network.num_chains)
    )
    starts.append(midpoint)
    if extra_starts is not None:
        for start in extra_starts:
            if len(start) != network.num_chains:
                raise ModelError(
                    f"start {tuple(start)} has wrong dimension "
                    f"(expected {network.num_chains})"
                )
            starts.append(tuple(int(w) for w in start))

    best_search: Optional[SearchResult] = None
    best_start: Tuple[int, ...] = starts[0]
    unique_starts = [space.clip(s) for s in dict.fromkeys(starts)]
    # One plane serves every start: the shared cache makes overlapping
    # trajectories free, a pooled plane shares one worker fleet across
    # the seed batch and all starts' speculation, and the context manager
    # guarantees drain-then-close on every exit path — an exhausted
    # evaluation cap (or a raising solver) mid-loop can no longer return
    # early with in-flight pool tasks undrained.
    plane = build_plane(
        objective,
        cache=cache,
        space=space,
        max_evaluations=max_evaluations,
        on_evaluation=persist_evaluation if store is not None else None,
        bound=objective.lower_bound if reuse else None,
        seed_for=objective.seed_for if reuse else None,
    )
    try:
        with plane:
            if objective.parallel or objective.soa_batchable:
                # Warm the shared cache with every seed in one batch
                # (trimmed to the evaluation cap, never raising): fanned
                # over the pool when parallel, or as one cross-network
                # SoA pass when the serial objective is batchable — the
                # SoA pass is bit-identical to per-key solves on the
                # reference tiers, so trajectories are unchanged.
                plane.submit_many(unique_starts)
            for start in dict.fromkeys(unique_starts):
                run = pattern_search(
                    objective,
                    start,
                    space,
                    initial_step=initial_step,
                    max_halvings=max_halvings,
                    plane=plane,
                )
                if best_search is None or run.best_value < best_search.best_value:
                    best_search = run
                    best_start = start
    finally:
        if store is not None:
            store.close()
    pool_health = plane.pool_health

    assert best_search is not None
    solution = objective.solution(best_search.best_point)
    report = power_report(solution)
    combined = SearchResult(
        best_point=best_search.best_point,
        best_value=best_search.best_value,
        evaluations=cache.evaluations,
        lookups=cache.lookups,
        base_points=best_search.base_points,
        method="pattern-search-multistart",
        pruned=cache.pruned,
    )
    return WindimResult(
        windows=best_search.best_point,
        power=report.power,
        report=report,
        solution=solution,
        search=combined,
        initial_windows=best_start,
        store_seeded=store.loaded if store is not None else 0,
        reuse_stats=objective.reuse_stats,
        pool_health=pool_health,
    )
