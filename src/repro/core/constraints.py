"""Storage-capacity constraints on window settings (thesis §2.3).

§2.3: "if ``E_r`` were allowed to become so large that it exceeds the
storage capacity ``K_i`` of node i along the r-th virtual channel, a large
amount of traffic may at times converge on one place … rendering the
control totally ineffective."  The safe condition is that each station's
*worst-case* occupancy — the sum of the windows of all chains visiting it
— stays within its storage:

    sum_{r : i in Q(r)} E_r <= K_i        for every constrained station i.

:class:`StationCapacityConstraint` encodes that linear constraint and
:func:`constrained_windim` runs the WINDIM search inside the feasible
region (infeasible window vectors evaluate to ``inf``, so pattern search
simply never crosses the boundary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.core.initializers import initial_windows
from repro.core.objective import Solver, WindowObjective
from repro.core.power import power_report
from repro.core.windim import WindimResult
from repro.errors import ModelError, SearchError
from repro.queueing.network import ClosedNetwork
from repro.search.cache import EvaluationCache
from repro.search.pattern import pattern_search
from repro.search.space import IntegerBox

__all__ = ["StationCapacityConstraint", "constrained_windim"]


@dataclass(frozen=True)
class StationCapacityConstraint:
    """Per-station storage limits on the total window mass.

    Parameters
    ----------
    capacities:
        Mapping from station name to its storage capacity ``K_i``
        (messages).  Stations not listed are unconstrained.
    """

    capacities: Mapping[str, int]

    def __post_init__(self) -> None:
        for station, capacity in self.capacities.items():
            if capacity < 1:
                raise ModelError(
                    f"station {station!r}: capacity must be >= 1, got {capacity}"
                )

    def station_load(
        self, network: ClosedNetwork, windows: Sequence[int], station: str
    ) -> int:
        """Worst-case occupancy of ``station`` under ``windows``."""
        index = network.station_id(station)
        visiting = network.visiting_chains(index)
        return int(sum(int(windows[r]) for r in visiting))

    def is_feasible(self, network: ClosedNetwork, windows: Sequence[int]) -> bool:
        """True when every constrained station respects its capacity."""
        for station, capacity in self.capacities.items():
            if self.station_load(network, windows, station) > capacity:
                return False
        return True

    def violations(
        self, network: ClosedNetwork, windows: Sequence[int]
    ) -> Dict[str, Tuple[int, int]]:
        """Mapping station -> (load, capacity) for violated constraints."""
        bad = {}
        for station, capacity in self.capacities.items():
            load = self.station_load(network, windows, station)
            if load > capacity:
                bad[station] = (load, capacity)
        return bad


def constrained_windim(
    network: ClosedNetwork,
    constraint: StationCapacityConstraint,
    solver: Union[str, Solver] = "mva-heuristic",
    start: Optional[Sequence[int]] = None,
    max_window: int = 64,
    initial_step: int = 2,
    max_halvings: int = 8,
    max_evaluations: int = 10_000,
) -> WindimResult:
    """WINDIM restricted to windows that fit the nodal storage (§2.3).

    The unconstrained objective is wrapped so infeasible vectors return
    ``inf``; the hop-count start is used when feasible, else the all-ones
    vector (which is feasible whenever the problem is feasible at all for
    single-visit chains).

    Raises
    ------
    SearchError
        If even unit windows violate the constraint.
    """
    unknown = set(constraint.capacities) - set(network.station_names)
    if unknown:
        raise ModelError(f"constraint names unknown stations: {sorted(unknown)}")

    base_objective = WindowObjective(network, solver)

    def objective(windows: Tuple[int, ...]) -> float:
        if not constraint.is_feasible(network, windows):
            return float("inf")
        return base_objective(windows)

    unit = (1,) * network.num_chains
    if not constraint.is_feasible(network, unit):
        raise SearchError(
            "infeasible problem: unit windows already violate "
            f"{constraint.violations(network, unit)}"
        )
    if start is None:
        candidate = initial_windows(network, "hops")
        start_point = candidate if constraint.is_feasible(network, candidate) else unit
    else:
        start_point = tuple(int(w) for w in start)
        if not constraint.is_feasible(network, start_point):
            raise SearchError(
                "requested start violates the capacity constraint: "
                f"{constraint.violations(network, start_point)}"
            )

    space = IntegerBox.windows(network.num_chains, max_window)
    cache = EvaluationCache(objective)
    search = pattern_search(
        objective,
        start_point,
        space,
        initial_step=initial_step,
        max_halvings=max_halvings,
        max_evaluations=max_evaluations,
        cache=cache,
    )
    solution = base_objective.solution(search.best_point)
    report = power_report(solution)
    return WindimResult(
        windows=search.best_point,
        power=report.power,
        report=report,
        solution=solution,
        search=search,
        initial_windows=start_point,
    )
