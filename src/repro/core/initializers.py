"""Initial window vectors for the WINDIM search (thesis §4.4).

The choice of starting point matters for a local search.  The thesis uses
Kleinrock's hop-count rule; this module also offers unit windows (maximal
throttling) and a demand-balance rule for experimentation — the ablation
benchmark ``bench_ablation_init`` compares them.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.kleinrock import hop_count_windows
from repro.errors import ModelError
from repro.queueing.network import ClosedNetwork

__all__ = ["initial_windows", "INITIAL_WINDOW_STRATEGIES"]

#: Names accepted by :func:`initial_windows`.
INITIAL_WINDOW_STRATEGIES = ("hops", "unit", "demand-balance")


def unit_windows(network: ClosedNetwork) -> Tuple[int, ...]:
    """All-ones window vector — start from maximal throttling."""
    return (1,) * network.num_chains


def demand_balance_windows(network: ClosedNetwork) -> Tuple[int, ...]:
    """Windows proportional to route demand, normalised to min 1.

    A chain whose cycle demand (excluding the source queue) is twice
    another's gets twice the window, the intuition being that longer/slower
    routes need more messages in flight to stay utilised.
    """
    demands = []
    for r, chain in enumerate(network.chains):
        total = 0.0
        for visited, service in zip(chain.visits, chain.service_times):
            if visited != chain.source_station:
                total += service
        demands.append(total)
    floor = min(d for d in demands if d > 0) if any(d > 0 for d in demands) else 1.0
    return tuple(max(1, round(d / floor)) for d in demands)


def initial_windows(network: ClosedNetwork, strategy: str = "hops") -> Tuple[int, ...]:
    """Initial window vector by named strategy.

    ``"hops"``
        Kleinrock hop counts — the thesis default.
    ``"unit"``
        All ones.
    ``"demand-balance"``
        Proportional to per-chain cycle demand.
    """
    if strategy == "hops":
        return hop_count_windows(network)
    if strategy == "unit":
        return unit_windows(network)
    if strategy == "demand-balance":
        return demand_balance_windows(network)
    raise ModelError(
        f"unknown initial-window strategy {strategy!r}; "
        f"expected one of {INITIAL_WINDOW_STRATEGIES}"
    )
