"""Integer optimisers for window dimensioning (thesis §4.3).

* :func:`~repro.search.pattern.pattern_search` — Hooke–Jeeves, the WINDIM
  engine.
* :func:`~repro.search.exhaustive.exhaustive_search` — global baseline.
* :func:`~repro.search.coordinate.coordinate_descent` — simple baseline.
* :class:`~repro.search.cache.EvaluationCache` — memoisation (APL ``FLOC``).
* :class:`~repro.search.store.EvaluationStore` — persistent cross-run cache.
* :class:`~repro.search.space.IntegerBox` — integer search spaces.
"""

from repro.search.cache import EvaluationCache
from repro.search.coordinate import coordinate_descent
from repro.search.exhaustive import exhaustive_search
from repro.search.pattern import pattern_search
from repro.search.result import SearchResult
from repro.search.space import IntegerBox
from repro.search.store import EvaluationStore, model_fingerprint

__all__ = [
    "EvaluationCache",
    "EvaluationStore",
    "IntegerBox",
    "SearchResult",
    "model_fingerprint",
    "pattern_search",
    "exhaustive_search",
    "coordinate_descent",
]
