"""Cyclic coordinate descent baseline.

A simpler neighbour of pattern search: repeatedly sweep the coordinates,
moving each by ±1 while it improves, until a full sweep makes no progress.
It lacks the pattern (acceleration) move, so on ridge-shaped objectives it
needs more evaluations than Hooke–Jeeves — exactly the comparison run by
``benchmarks/bench_pattern_search.py``.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.search.cache import EvaluationCache
from repro.search.result import SearchResult
from repro.search.space import IntegerBox

__all__ = ["coordinate_descent"]

Point = Tuple[int, ...]


def coordinate_descent(
    objective: Callable[[Point], float],
    start: Sequence[int],
    space: IntegerBox,
    max_sweeps: int = 1_000,
    cache: Optional[EvaluationCache] = None,
) -> SearchResult:
    """Minimise ``objective`` by unit-step cyclic coordinate descent."""
    if cache is None:
        cache = EvaluationCache(objective)

    current = space.clip(start)
    current_value = cache(current)
    trajectory = [current]

    for _sweep in range(max_sweeps):
        improved = False
        for axis in range(space.dimensions):
            # Slide along this axis while it keeps improving.
            while True:
                moved = False
                for direction in (+1, -1):
                    candidate = list(current)
                    candidate[axis] += direction
                    candidate_t = tuple(candidate)
                    if candidate_t not in space:
                        continue
                    value = cache(candidate_t)
                    if value < current_value:
                        current, current_value = candidate_t, value
                        trajectory.append(current)
                        improved = True
                        moved = True
                        break
                if not moved:
                    break
        if not improved:
            break

    return SearchResult(
        best_point=current,
        best_value=current_value,
        evaluations=cache.evaluations,
        lookups=cache.lookups,
        base_points=trajectory,
        method="coordinate-descent",
    )
