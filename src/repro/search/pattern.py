"""Integer Hooke–Jeeves pattern search (thesis §4.3 and the APL ``WINDIM``).

Pattern search alternates two kinds of moves:

* **Exploratory move** — perturb one coordinate at a time by the current
  step, keeping each change that reduces the objective (Fig. 4.2).
* **Pattern move** — after a successful exploration, leap from the new base
  point along the line from the previous base point, doubling the
  established direction (Fig. 4.3), and explore around the landing point.
  Successful patterns extend themselves, giving the accelerated
  ridge-following behaviour of Fig. 4.4.

When exploration around the current base fails, the step size is halved
(the APL ``Y <- 0.5 x Y``) and a new pattern is started; the search stops
once the integer step would drop below one, or after ``max_halvings``
reductions.  Because window sizes are integers, steps are integers here —
"since we are interested only in integral window settings … the Pattern
Search suffices" (§4.1).

All evaluations flow through an :class:`~repro.search.cache.EvaluationCache`
(the APL ``FLOC``), so revisited points are free.  A ``prefetch`` batch
evaluator (typically ``WindowObjective.batch_solve`` backed by a process
pool) may be supplied: before each exploratory sweep the not-yet-cached
``±step`` neighbours of the base point are evaluated speculatively in one
batch and merged into the cache, so the sequential sweep then runs on
cache hits.  Two resilience hooks thread through the same choke point:

* a :class:`~repro.resilience.budget.SearchBudget` is consulted before
  every *fresh* evaluation — when spent, the search returns its
  best-so-far flagged ``status="budget_exhausted"`` instead of running on;
* an ``on_evaluation`` callback fires after every fresh evaluation, which
  is where :class:`~repro.resilience.checkpoint.CheckpointManager` takes
  its periodic snapshots.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence, Tuple

from repro.errors import SearchError
from repro.resilience.budget import BudgetExhausted, SearchBudget
from repro.search.cache import EvaluationCache
from repro.search.result import SearchResult
from repro.search.space import IntegerBox

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.scheduler import SpeculativeScheduler

__all__ = ["pattern_search"]

Point = Tuple[int, ...]

Evaluator = Callable[[Point], float]

BatchEvaluator = Callable[[Sequence[Point]], Sequence[float]]


def _explore(
    evaluate: Evaluator,
    space: IntegerBox,
    point: Point,
    value: float,
    step: int,
    prune: Optional[Callable[[Point, float], bool]] = None,
) -> Tuple[Point, float]:
    """One exploratory sweep: perturb each coordinate by ±step in turn.

    ``prune(candidate, current_value)`` may reject a candidate without an
    evaluation when a certified lower bound proves it cannot beat the
    sweep's current value — the sweep's accepted points are then exactly
    those of an unpruned sweep (a dominated candidate would have failed
    its ``< current_value`` test anyway).
    """
    current = list(point)
    current_value = value
    for axis in range(space.dimensions):
        for direction in (+1, -1):
            candidate = list(current)
            candidate[axis] += direction * step
            candidate_t = tuple(candidate)
            if candidate_t not in space:
                continue
            if prune is not None and prune(candidate_t, current_value):
                continue
            candidate_value = evaluate(candidate_t)
            if candidate_value < current_value:
                current = candidate
                current_value = candidate_value
                break  # keep the improvement; next axis
    return tuple(current), current_value


def pattern_search(
    objective: Callable[[Point], float],
    start: Sequence[int],
    space: IntegerBox,
    initial_step: int = 2,
    max_halvings: int = 8,
    max_evaluations: int = 100_000,
    cache: Optional[EvaluationCache] = None,
    budget: Optional[SearchBudget] = None,
    on_evaluation: Optional[Callable[[EvaluationCache], None]] = None,
    prefetch: Optional[BatchEvaluator] = None,
    bound: Optional[Callable[[Point], float]] = None,
    scheduler: Optional["SpeculativeScheduler"] = None,
) -> SearchResult:
    """Minimise ``objective`` over ``space`` by integer pattern search.

    Parameters
    ----------
    objective:
        Function of an integer tuple returning the value to minimise
        (WINDIM passes ``1/power``).
    start:
        Initial window vector (the thesis uses the per-chain hop counts);
        clipped into ``space`` if outside.
    space:
        Integer box of feasible points.
    initial_step:
        Starting exploration step (>= 1).
    max_halvings:
        The APL ``KMAX``: number of step halvings before stopping.  With
        integer steps the search also stops as soon as the step underflows
        below one.
    max_evaluations:
        Safety budget of distinct objective evaluations.
    cache:
        Optional pre-populated evaluation cache to share across runs (e.g.
        across sweep points that revisit the same windows, or seeded from
        a resumed checkpoint).
    budget:
        Optional wall-clock/evaluation budget; when it runs out the search
        returns its best-so-far flagged ``status="budget_exhausted"``.
    on_evaluation:
        Called with the cache after every fresh evaluation (checkpointing
        hook); cache hits do not fire it.
    prefetch:
        Optional batch evaluator (points -> values, order-preserving).
        When given, the uncached ``±step`` cross around each explored
        base point is evaluated in one batch beforehand and primed into
        the cache — this is where ``WindowObjective.batch_solve`` plugs a
        process pool into the search.  Speculative points count as fresh
        evaluations (budget, ``max_evaluations``, and ``on_evaluation``
        all see them); a few may never be consulted by the sweep, which
        is the price of evaluating them concurrently.
    bound:
        Optional *certified lower bound* on the objective (WINDIM passes
        ``WindowObjective.lower_bound``).  An uncached exploratory
        candidate whose bound strictly exceeds the sweep's current value
        is skipped without a solve and counted in ``cache.pruned`` /
        ``SearchResult.pruned``.  Because the bound must be a true lower
        bound, a pruned candidate is provably dominated: the accepted
        base points, the chosen optimum, and its value are identical to
        an unpruned run.  Pattern-move landing points are never pruned
        (their value seeds the next exploration).
    scheduler:
        Optional :class:`~repro.parallel.scheduler.SpeculativeScheduler`
        bound to a persistent worker pool.  Supersedes ``prefetch``:
        instead of a synchronous cross batch before each sweep, the
        scheduler keeps the pool saturated with a speculative priority
        frontier and the search blocks only on values that have not yet
        arrived.  The demanded point sequence — hence the accepted-move
        trajectory and the optimum — is identical to a sequential run;
        speculative completions are merged through ``cache.prime`` and
        count against budget, ``max_evaluations``, and
        ``on_evaluation`` exactly like ``prefetch`` ones (the scheduler
        fires ``on_evaluation`` itself on every merge).

    Returns
    -------
    SearchResult
        The best point found and the search trajectory.
    """
    if initial_step < 1:
        raise SearchError(f"initial_step must be >= 1, got {initial_step}")
    if max_halvings < 0:
        raise SearchError(f"max_halvings must be >= 0, got {max_halvings}")
    if cache is None:
        cache = EvaluationCache(objective)
    elif cache.objective is not objective:
        raise SearchError("shared cache wraps a different objective")

    def evaluate(point: Point) -> float:
        fresh = tuple(int(x) for x in point) not in cache.values
        if fresh:
            if budget is not None:
                budget.check(cache.evaluations)
            if cache.evaluations >= max_evaluations:
                raise BudgetExhausted(
                    f"evaluation cap reached ({cache.evaluations} >= "
                    f"{max_evaluations})"
                )
            if scheduler is not None:
                # Blocks until the pool's value for this point is merged
                # into the cache (the scheduler fires on_evaluation for
                # every merge, so the plain path below must not).
                scheduler.demand(point)
                return cache(point)
        value = cache(point)
        if fresh and on_evaluation is not None:
            on_evaluation(cache)
        return value

    def prune(candidate: Point, current_value: float) -> bool:
        """True when a certified bound proves ``candidate`` dominated.

        Only uncached candidates are ever pruned (a cached value is free
        to consult), and only on a *strict* bound excess: a candidate
        whose true value ties the current one would be rejected by the
        sweep's strict ``<`` test anyway, so skipping it cannot change
        the trajectory.
        """
        if bound is None or candidate in cache.values:
            return False
        if bound(candidate) > current_value:
            cache.note_pruned()
            return True
        return False

    def prefetch_cross(point: Point, point_value: float) -> None:
        """Batch-evaluate the uncached ±step cross around ``point``.

        Results are primed into the cache, so the sequential exploratory
        sweep that follows mostly hits.  Budget and evaluation caps are
        honoured: the batch is trimmed to the remaining evaluation room
        and skipped entirely once the budget is spent.  Candidates whose
        certified bound already exceeds ``point_value`` are not worth a
        speculative solve — the sweep would prune them.
        """
        if prefetch is None:
            return
        fresh: list = []
        for axis in range(space.dimensions):
            for direction in (+1, -1):
                candidate = list(point)
                candidate[axis] += direction * step
                candidate_t = tuple(candidate)
                if (
                    candidate_t in space
                    and candidate_t not in cache.values
                    and candidate_t not in fresh
                    and not (
                        bound is not None and bound(candidate_t) > point_value
                    )
                ):
                    fresh.append(candidate_t)
        room = max_evaluations - cache.evaluations
        fresh = fresh[: max(0, room)]
        if not fresh:
            return
        if budget is not None:
            budget.check(cache.evaluations)
        for key, value in zip(fresh, prefetch(fresh)):
            if cache.prime(key, value) and on_evaluation is not None:
                on_evaluation(cache)

    base = space.clip(start)
    trajectory = [base]
    step = initial_step
    halvings = 0
    status = "completed"
    stop_reason = ""
    base_value = float("inf")

    def speculate(point: Point, point_value: float) -> None:
        """Line up the ±step cross (scheduler frontier or sync prefetch)."""
        if scheduler is not None:
            scheduler.begin_sweep(point, point_value, step)
        else:
            prefetch_cross(point, point_value)

    try:
        base_value = evaluate(base)
        while step >= 1 and halvings <= max_halvings:
            speculate(base, base_value)
            probe, probe_value = _explore(
                evaluate, space, base, base_value, step, prune
            )
            if probe_value < base_value:
                # Pattern phase: ride the established direction.
                previous = base
                base, base_value = probe, probe_value
                trajectory.append(base)
                if scheduler is not None:
                    scheduler.note_accept(base, previous, base_value, step)
                while True:
                    pattern_point = space.clip(
                        tuple(2 * b - p for b, p in zip(base, previous))
                    )
                    landing_value = evaluate(pattern_point)
                    speculate(pattern_point, landing_value)
                    probe2, probe2_value = _explore(
                        evaluate, space, pattern_point, landing_value, step, prune
                    )
                    if probe2_value < base_value:
                        previous = base
                        base, base_value = probe2, probe2_value
                        trajectory.append(base)
                        if scheduler is not None:
                            scheduler.note_accept(
                                base, previous, base_value, step
                            )
                    else:
                        break
            else:
                step //= 2
                halvings += 1
                if scheduler is not None:
                    scheduler.note_step(step)
    except BudgetExhausted as exc:
        status = "budget_exhausted"
        stop_reason = exc.reason
        if scheduler is not None:
            # Bank already-paid-for speculation before picking the
            # best-so-far: in-flight completions are real evaluations.
            scheduler.finish()
        # Best-so-far: the cache may hold a better explored-but-not-yet-
        # accepted point than the current base (or the start may never
        # have been evaluated at all under a zero budget).
        cached_best, cached_value = cache.best()
        if cached_best is None:
            base_value = float("inf")
        elif not trajectory or cached_value < base_value:
            base, base_value = cached_best, cached_value
            if not trajectory or trajectory[-1] != base:
                trajectory.append(base)
    finally:
        if scheduler is not None:
            scheduler.finish()

    return SearchResult(
        best_point=base,
        best_value=base_value,
        evaluations=cache.evaluations,
        lookups=cache.lookups,
        base_points=trajectory,
        method="pattern-search",
        status=status,
        stop_reason=stop_reason,
        pruned=cache.pruned,
    )
