"""Integer Hooke–Jeeves pattern search (thesis §4.3 and the APL ``WINDIM``).

Pattern search alternates two kinds of moves:

* **Exploratory move** — perturb one coordinate at a time by the current
  step, keeping each change that reduces the objective (Fig. 4.2).
* **Pattern move** — after a successful exploration, leap from the new base
  point along the line from the previous base point, doubling the
  established direction (Fig. 4.3), and explore around the landing point.
  Successful patterns extend themselves, giving the accelerated
  ridge-following behaviour of Fig. 4.4.

When exploration around the current base fails, the step size is halved
(the APL ``Y <- 0.5 x Y``) and a new pattern is started; the search stops
once the integer step would drop below one, or after ``max_halvings``
reductions.  Because window sizes are integers, steps are integers here —
"since we are interested only in integral window settings … the Pattern
Search suffices" (§4.1).

All evaluations flow through an
:class:`~repro.evalplane.plane.EvaluationPlane`: the search demands
values with :meth:`~repro.evalplane.plane.EvaluationPlane.submit`,
telegraphs its intent through the plane's speculation hints
(``hint_sweep``/``hint_accept``/``hint_step``), rejects provably
dominated candidates through :meth:`~repro.evalplane.plane.
EvaluationPlane.prune`, and banks in-flight speculation with
:meth:`~repro.evalplane.plane.EvaluationPlane.drain` on every exit from
the loop.  Which execution backend sits behind those calls — in-process
serial, per-batch process pool, persistent shared-memory fleet, the
resilient ladder — is entirely the plane's business; the conformance
suite (``tests/evalplane/``) certifies that all of them walk the same
trajectory.  Budget/cap enforcement and the ``on_evaluation`` checkpoint
hook live in the plane, at the single choke point every fresh evaluation
passes through.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence, Tuple

from repro.errors import SearchError
from repro.resilience.budget import BudgetExhausted, SearchBudget
from repro.search.cache import EvaluationCache
from repro.search.result import SearchResult
from repro.search.space import IntegerBox

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.evalplane.plane import EvaluationPlane

__all__ = ["pattern_search"]

Point = Tuple[int, ...]

Evaluator = Callable[[Point], float]


def _explore(
    evaluate: Evaluator,
    space: IntegerBox,
    point: Point,
    value: float,
    step: int,
    prune: Callable[[Point, float], bool],
) -> Tuple[Point, float]:
    """One exploratory sweep: perturb each coordinate by ±step in turn.

    ``prune(candidate, current_value)`` may reject a candidate without an
    evaluation when a certified lower bound proves it cannot beat the
    sweep's current value — the sweep's accepted points are then exactly
    those of an unpruned sweep (a dominated candidate would have failed
    its ``< current_value`` test anyway).
    """
    current = list(point)
    current_value = value
    for axis in range(space.dimensions):
        for direction in (+1, -1):
            candidate = list(current)
            candidate[axis] += direction * step
            candidate_t = tuple(candidate)
            if candidate_t not in space:
                continue
            if prune(candidate_t, current_value):
                continue
            candidate_value = evaluate(candidate_t)
            if candidate_value < current_value:
                current = candidate
                current_value = candidate_value
                break  # keep the improvement; next axis
    return tuple(current), current_value


def pattern_search(
    objective: Callable[[Point], float],
    start: Sequence[int],
    space: IntegerBox,
    initial_step: int = 2,
    max_halvings: int = 8,
    max_evaluations: int = 100_000,
    cache: Optional[EvaluationCache] = None,
    budget: Optional[SearchBudget] = None,
    on_evaluation: Optional[Callable[[EvaluationCache], None]] = None,
    bound: Optional[Callable[[Point], float]] = None,
    plane: Optional["EvaluationPlane"] = None,
) -> SearchResult:
    """Minimise ``objective`` over ``space`` by integer pattern search.

    Parameters
    ----------
    objective:
        Function of an integer tuple returning the value to minimise
        (WINDIM passes ``1/power``).
    start:
        Initial window vector (the thesis uses the per-chain hop counts);
        clipped into ``space`` if outside.
    space:
        Integer box of feasible points.
    initial_step:
        Starting exploration step (>= 1).
    max_halvings:
        The APL ``KMAX``: number of step halvings before stopping.  With
        integer steps the search also stops as soon as the step underflows
        below one.
    max_evaluations:
        Safety budget of distinct objective evaluations (ignored when a
        ``plane`` is supplied — the plane's own cap governs).
    cache:
        Optional pre-populated evaluation cache to share across runs (e.g.
        across sweep points that revisit the same windows, or seeded from
        a resumed checkpoint).
    budget:
        Optional wall-clock/evaluation budget; when it runs out the search
        returns its best-so-far flagged ``status="budget_exhausted"``.
    on_evaluation:
        Called with the cache after every fresh evaluation (checkpointing
        hook); cache hits do not fire it.
    bound:
        Optional *certified lower bound* on the objective (WINDIM passes
        ``WindowObjective.lower_bound``).  An uncached exploratory
        candidate whose bound strictly exceeds the sweep's current value
        is skipped without a solve and counted in ``cache.pruned`` /
        ``SearchResult.pruned``.  Because the bound must be a true lower
        bound, a pruned candidate is provably dominated: the accepted
        base points, the chosen optimum, and its value are identical to
        an unpruned run.  Pattern-move landing points are never pruned
        (their value seeds the next exploration).
    plane:
        The :class:`~repro.evalplane.plane.EvaluationPlane` to evaluate
        through.  When omitted, a
        :class:`~repro.evalplane.serial.SerialPlane` is built from the
        wiring arguments above (in-process evaluation — the reference
        semantics).  When supplied, it must wrap ``objective``, the
        wiring arguments must be left unset (the plane already carries
        them), and the caller keeps ownership: the search drains it on
        every exit but never closes it.  Parallel planes speculate on
        the search's hints; speculative points count as fresh evaluations
        (budget, cap and ``on_evaluation`` all see them) and never change
        the demanded sequence — the accepted-move trajectory and the
        optimum are bitwise-identical to a serial run.

    Returns
    -------
    SearchResult
        The best point found and the search trajectory.
    """
    if initial_step < 1:
        raise SearchError(f"initial_step must be >= 1, got {initial_step}")
    if max_halvings < 0:
        raise SearchError(f"max_halvings must be >= 0, got {max_halvings}")
    if plane is None:
        from repro.evalplane.serial import SerialPlane

        plane = SerialPlane(
            objective,
            cache=cache,
            space=space,
            budget=budget,
            max_evaluations=max_evaluations,
            on_evaluation=on_evaluation,
            bound=bound,
        )
    else:
        if plane.objective is not objective:
            raise SearchError("plane wraps a different objective")
        if (
            cache is not None and cache is not plane.cache
        ) or budget is not None or on_evaluation is not None or bound is not None:
            raise SearchError(
                "pass evaluation wiring (cache/budget/on_evaluation/bound) "
                "either on the plane or to pattern_search, not both"
            )
    cache = plane.cache

    def evaluate(point: Point) -> float:
        return plane.submit(point).value

    base = space.clip(start)
    trajectory = [base]
    step = initial_step
    halvings = 0
    status = "completed"
    stop_reason = ""
    base_value = float("inf")

    try:
        base_value = evaluate(base)
        while step >= 1 and halvings <= max_halvings:
            plane.hint_sweep(base, base_value, step)
            probe, probe_value = _explore(
                evaluate, space, base, base_value, step, plane.prune
            )
            if probe_value < base_value:
                # Pattern phase: ride the established direction.
                previous = base
                base, base_value = probe, probe_value
                trajectory.append(base)
                plane.hint_accept(base, previous, base_value, step)
                while True:
                    pattern_point = space.clip(
                        tuple(2 * b - p for b, p in zip(base, previous))
                    )
                    landing_value = evaluate(pattern_point)
                    plane.hint_sweep(pattern_point, landing_value, step)
                    probe2, probe2_value = _explore(
                        evaluate, space, pattern_point, landing_value, step,
                        plane.prune,
                    )
                    if probe2_value < base_value:
                        previous = base
                        base, base_value = probe2, probe2_value
                        trajectory.append(base)
                        plane.hint_accept(base, previous, base_value, step)
                    else:
                        break
            else:
                step //= 2
                halvings += 1
                plane.hint_step(step)
    except BudgetExhausted as exc:
        status = "budget_exhausted"
        stop_reason = exc.reason
        # Bank already-paid-for speculation before picking the
        # best-so-far: in-flight completions are real evaluations.
        plane.drain()
        # Best-so-far: the cache may hold a better explored-but-not-yet-
        # accepted point than the current base (or the start may never
        # have been evaluated at all under a zero budget).
        cached_best, cached_value = plane.best()
        if cached_best is None:
            base_value = float("inf")
        elif not trajectory or cached_value < base_value:
            base, base_value = cached_best, cached_value
            if not trajectory or trajectory[-1] != base:
                trajectory.append(base)
    finally:
        plane.drain()

    return SearchResult(
        best_point=base,
        best_value=base_value,
        evaluations=cache.evaluations,
        lookups=cache.lookups,
        base_points=trajectory,
        method="pattern-search",
        status=status,
        stop_reason=stop_reason,
        pruned=cache.pruned,
    )
