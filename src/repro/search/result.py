"""Common result record for the integer optimisers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["SearchResult"]

Point = Tuple[int, ...]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of an optimisation run.

    Attributes
    ----------
    best_point:
        The minimiser found (for WINDIM: the optimal window vector).
    best_value:
        Objective value at ``best_point`` (for WINDIM: ``1/power``).
    evaluations:
        Distinct objective evaluations performed (cache misses).
    lookups:
        Total objective requests including cache hits.
    base_points:
        Sequence of accepted base points, ending at ``best_point`` —
        the search trajectory (thesis Fig. 4.4).
    method:
        Optimiser name.
    status:
        ``"completed"`` for a full run; ``"budget_exhausted"`` when a
        :class:`~repro.resilience.budget.SearchBudget` (or the legacy
        ``max_evaluations`` cap) stopped the search early — the result is
        then the best point seen so far, not a certified local optimum.
    stop_reason:
        Human-readable cause when ``status != "completed"``.
    pruned:
        Candidates rejected by a certified lower bound without an
        evaluation (0 unless the search ran with a ``bound`` hook).
    """

    best_point: Point
    best_value: float
    evaluations: int
    lookups: int
    base_points: List[Point] = field(default_factory=list)
    method: str = ""
    status: str = "completed"
    stop_reason: str = ""
    pruned: int = 0

    @property
    def budget_exhausted(self) -> bool:
        """True when the search stopped on a budget rather than completing."""
        return self.status == "budget_exhausted"

    def summary(self) -> str:
        """One-line human-readable result."""
        line = (
            f"{self.method}: best {list(self.best_point)} "
            f"value {self.best_value:.6g} "
            f"({self.evaluations} evaluations, {self.lookups} lookups)"
        )
        if self.pruned:
            line += f" [{self.pruned} pruned]"
        if self.status != "completed":
            line += f" [{self.status}: {self.stop_reason}]"
        return line
