"""Memoised objective evaluation (the APL ``FLOC``/``FCT`` pair).

The thesis WINDIM program keeps every evaluated window vector and its
objective value in arrays (``XCMP``/``FXCMP``); before calling the costly
MVA routine ``FCT`` it scans them via ``FLOC`` ("the necessary computations
were done previously").  :class:`EvaluationCache` is the same idea with a
dictionary, plus bookkeeping of hit/miss counts used by the benchmarks to
report how much work memoisation saves the pattern search.

Cache keys are *only* the integer window vectors — deliberately agnostic
of which solver kernel backend produced the value, so a cache (or resumed
checkpoint) populated by a ``"scalar"`` run is reused verbatim under
``"vectorized"`` and vice versa.  The parity test wall pins the two
backends to ≤ 1e-8 relative error, far inside the tolerance of any
search decision, which is what makes the sharing sound.

All mutating and reading operations take an internal re-entrant lock, so
a cache shared by concurrent batch evaluations cannot be corrupted
(values, history, and counters stay mutually consistent).
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["EvaluationCache"]

Point = Tuple[int, ...]


def _integral_key(point: Point) -> Tuple[int, ...]:
    """Normalise a point to a tuple of ints, rejecting fractional values."""
    key = []
    for x in point:
        i = int(x)
        if i != x:
            raise ValueError(
                f"non-integral coordinate {x!r} in point {tuple(point)!r}; "
                "window vectors must be integer-valued"
            )
        key.append(i)
    return tuple(key)


@dataclass
class EvaluationCache:
    """Memoising wrapper around an objective function.

    Parameters
    ----------
    objective:
        Function mapping an integer point to the value being minimised.

    Attributes
    ----------
    hits / misses:
        Lookup statistics.
    pruned:
        Candidates rejected by a certified bound without an evaluation
        (see the ``bound`` hook of
        :func:`repro.search.pattern.pattern_search`); they appear in no
        other counter — a pruned point was never looked up.
    history:
        Every *distinct* evaluated point, in evaluation order, with its
        value — useful for plotting search trajectories.
    """

    objective: Callable[[Point], float]
    values: Dict[Point, float] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    pruned: int = 0
    history: List[Tuple[Point, float]] = field(default_factory=list)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def __call__(self, point: Point) -> float:
        """Evaluate ``point``, reusing a previous result when available.

        Coordinates must be integral (Python ints, numpy integer scalars,
        or integer-valued floats).  A fractional coordinate is rejected
        rather than silently truncated: truncation would cache the value
        of a *different* window vector under the requested key and
        corrupt every later lookup of the truncated point.
        """
        key = _integral_key(point)
        with self._lock:
            if key in self.values:
                self.hits += 1
                return self.values[key]
            self.misses += 1
            value = float(self.objective(key))
            self.values[key] = value
            self.history.append((key, value))
            return value

    def prime(self, point: Point, value: float) -> bool:
        """Insert an externally computed value as a fresh evaluation.

        The merge half of batch evaluation: results computed elsewhere
        (e.g. on a process pool by ``WindowObjective.batch_solve``) enter
        the cache with full bookkeeping — counted as a miss and appended
        to ``history`` exactly as if :meth:`__call__` had computed them.
        Returns False (and changes nothing) when the point is already
        cached, so racing producers cannot double-count.
        """
        key = _integral_key(point)
        with self._lock:
            if key in self.values:
                return False
            self.misses += 1
            self.values[key] = float(value)
            self.history.append((key, float(value)))
            return True

    def note_pruned(self) -> None:
        """Count one bound-pruned candidate (no evaluation happened)."""
        with self._lock:
            self.pruned += 1

    def __contains__(self, point: Point) -> bool:
        """True when ``point`` is already cached (no counter updates)."""
        with self._lock:
            return _integral_key(point) in self.values

    @property
    def evaluations(self) -> int:
        """Number of distinct objective evaluations performed."""
        return self.misses

    @property
    def lookups(self) -> int:
        """Total number of objective requests (cached or not)."""
        return self.hits + self.misses

    def snapshot(self) -> Tuple[List[Tuple[Point, float]], Optional[Point], float, int]:
        """Atomic ``(entries, best_point, best_value, evaluations)`` copy.

        Checkpointing reads several fields that must be mutually
        consistent; taking them in one locked step keeps a flush that
        races concurrent batch inserts from seeing a half-updated cache
        (or dying on a dict mutated mid-iteration).  The entries are a
        **deep copy**: a ``prime()`` racing the flush that serialises
        this snapshot (e.g. a scheduler merge during a checkpoint write)
        must not be able to mutate payloads the checkpoint already
        claims to have captured.
        """
        with self._lock:
            entries = copy.deepcopy(list(self.values.items()))
            if entries:
                point, value = min(entries, key=lambda item: item[1])
            else:
                point, value = None, float("inf")
            return entries, point, value, self.misses

    def best(self) -> Tuple[Optional[Point], float]:
        """The best point seen so far (``(None, inf)`` when empty)."""
        with self._lock:
            if not self.values:
                return None, float("inf")
            point = min(self.values, key=self.values.get)
            return point, self.values[point]

    def clear(self) -> None:
        """Forget all cached evaluations and statistics."""
        with self._lock:
            self.values.clear()
            self.history.clear()
            self.hits = 0
            self.misses = 0
            self.pruned = 0
