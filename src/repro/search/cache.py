"""Memoised objective evaluation (the APL ``FLOC``/``FCT`` pair).

The thesis WINDIM program keeps every evaluated window vector and its
objective value in arrays (``XCMP``/``FXCMP``); before calling the costly
MVA routine ``FCT`` it scans them via ``FLOC`` ("the necessary computations
were done previously").  :class:`EvaluationCache` is the same idea with a
dictionary, plus bookkeeping of hit/miss counts used by the benchmarks to
report how much work memoisation saves the pattern search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["EvaluationCache"]

Point = Tuple[int, ...]


def _integral_key(point: Point) -> Tuple[int, ...]:
    """Normalise a point to a tuple of ints, rejecting fractional values."""
    key = []
    for x in point:
        i = int(x)
        if i != x:
            raise ValueError(
                f"non-integral coordinate {x!r} in point {tuple(point)!r}; "
                "window vectors must be integer-valued"
            )
        key.append(i)
    return tuple(key)


@dataclass
class EvaluationCache:
    """Memoising wrapper around an objective function.

    Parameters
    ----------
    objective:
        Function mapping an integer point to the value being minimised.

    Attributes
    ----------
    hits / misses:
        Lookup statistics.
    history:
        Every *distinct* evaluated point, in evaluation order, with its
        value — useful for plotting search trajectories.
    """

    objective: Callable[[Point], float]
    values: Dict[Point, float] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    history: List[Tuple[Point, float]] = field(default_factory=list)

    def __call__(self, point: Point) -> float:
        """Evaluate ``point``, reusing a previous result when available.

        Coordinates must be integral (Python ints, numpy integer scalars,
        or integer-valued floats).  A fractional coordinate is rejected
        rather than silently truncated: truncation would cache the value
        of a *different* window vector under the requested key and
        corrupt every later lookup of the truncated point.
        """
        key = _integral_key(point)
        if key in self.values:
            self.hits += 1
            return self.values[key]
        self.misses += 1
        value = float(self.objective(key))
        self.values[key] = value
        self.history.append((key, value))
        return value

    @property
    def evaluations(self) -> int:
        """Number of distinct objective evaluations performed."""
        return self.misses

    @property
    def lookups(self) -> int:
        """Total number of objective requests (cached or not)."""
        return self.hits + self.misses

    def best(self) -> Tuple[Optional[Point], float]:
        """The best point seen so far (``(None, inf)`` when empty)."""
        if not self.values:
            return None, float("inf")
        point = min(self.values, key=self.values.get)
        return point, self.values[point]

    def clear(self) -> None:
        """Forget all cached evaluations and statistics."""
        self.values.clear()
        self.history.clear()
        self.hits = 0
        self.misses = 0
