"""Persistent cross-run evaluation store (``windim run --store``).

A WINDIM campaign usually dimensions the *same* network many times —
parameter sweeps, restarted jobs, multistart batches.  Each run's
:class:`~repro.search.cache.EvaluationCache` dies with the process, so
identical window vectors get re-solved from scratch.  The
:class:`EvaluationStore` spills that cache to disk: objective values *and*
the converged queue-length vectors that warm-start future solves (see
:class:`~repro.core.reuse.ReuseEngine`), so a later run on the same model
starts with every previously solved point for free.

Format — JSON Lines, append-only:

* line 1 is a header ``{"version": 1, "fingerprint": "..."}``;
* every further line is one evaluation
  ``{"crc": <crc32>, "point": [w1, ..., wR], "value": <float|null>,
  "seed": [[...]]|null}`` (``null`` value encodes ``inf`` — an
  infeasible/failed point; ``crc`` covers the rest of the record and is
  optional on read for back-compatibility with pre-CRC stores).

Appending a line per fresh evaluation keeps writes O(1) and crash-safe in
the useful sense: a crash can tear at most the final line, which
:func:`load` silently drops (every earlier record is intact).  A torn or
foreign *header* is a hard :class:`~repro.errors.SearchError` instead.

The store *self-heals* on load: by default (``strict=False``) a record
line that fails to parse or whose CRC does not match is moved to a
``<path>.quarantine`` sidecar with a warning instead of aborting the
load, the healthy records are kept, and the store is immediately
compacted so the damage never survives another generation.  Pass
``strict=True`` to restore the old fail-hard behaviour.  Appends are
retried under a :class:`~repro.resilience.retry.RetryPolicy`; a store
whose disk persistently refuses writes degrades to memory-only (with a
warning) rather than failing the search.

:meth:`EvaluationStore.compact` rewrites the file deduplicated through the
same-directory-temp + fsync + ``os.replace`` idiom used by
:mod:`repro.resilience.checkpoint`, so the file on disk is always either
the old store or the complete new one.

The header fingerprint (:func:`model_fingerprint`) hashes everything that
determines an objective value *except* the chain populations (those are
the decision variables the store is indexed by) and the kernel backend
(the parity wall pins backends to <= 1e-8 of each other, far inside any
search decision).  Opening a store whose fingerprint does not match the
current network+solver raises :class:`~repro.errors.SearchError`: a stale
store can never poison a different instance.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
import warnings
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SearchError
from repro.queueing.network import ClosedNetwork
from repro.resilience.retry import RetryPolicy

__all__ = ["STORE_VERSION", "EvaluationStore", "model_fingerprint"]

STORE_VERSION = 1

Point = Tuple[int, ...]

#: Retries for store IO (reads at open, appends per record): transient
#: failures get two quick backed-off retries before the store degrades.
DEFAULT_STORE_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.01, multiplier=4.0, max_delay=0.2
)


def _canonical(record: Dict[str, object]) -> str:
    """The byte-stable serialisation the record CRC is computed over."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _record_line(payload: Dict[str, object]) -> str:
    """Serialise one record with its CRC-32 checksum prepended."""
    body = dict(payload)
    body["crc"] = zlib.crc32(_canonical(payload).encode("utf-8"))
    return _canonical(body)


def model_fingerprint(
    network: ClosedNetwork,
    solver_label: str,
    backend_tier: Optional[str] = None,
) -> str:
    """Hash the parts of ``(network, solver)`` that determine ``F(E)``.

    Included: the demand and visit-count matrices, each station's
    discipline/servers/rate multipliers, per-chain source queues, and the
    solving algorithm's label.  Excluded: chain populations (the store's
    keys *are* window vectors) and the kernel backend *within a bitwise
    parity tier* (a ``"scalar"`` store is valid under ``"vectorized"``
    and compiled-without-numba and vice versa — the parity wall
    guarantees bit-identical values across that whole tier).

    ``backend_tier`` is the :func:`repro.backend.parity_tier` of the run
    (``"reference"``/``"jit-v<N>"``).  Only non-reference tiers are
    hashed — the default keeps every existing store valid — so a
    numba-JIT ``"compiled"`` run never silently replays reference-tier
    entries whose values it could not have produced bit-for-bit, and
    vice versa.  The jit tier label carries the kernel-set version
    (:data:`repro.mva.compiled.JIT_KERNEL_VERSION`), so stores written
    under an older kernel era are likewise kept apart from newer ones.
    """
    digest = hashlib.sha256()
    digest.update(b"windim-store-v1")
    if backend_tier is not None and backend_tier != "reference":
        digest.update(f"backend-tier:{backend_tier}".encode())
    digest.update(repr(network.demands.shape).encode())
    digest.update(np.ascontiguousarray(network.demands, dtype=np.float64).tobytes())
    digest.update(np.ascontiguousarray(network.visit_counts, dtype=np.float64).tobytes())
    digest.update(np.ascontiguousarray(network.source_index, dtype=np.int64).tobytes())
    for station in network.stations:
        digest.update(station.discipline.value.encode())
        digest.update(str(station.servers).encode())
        digest.update(repr(station.rate_multipliers).encode())
    digest.update(str(solver_label).encode())
    return digest.hexdigest()


def _encode_value(value: float) -> Optional[float]:
    """JSON has no ``inf``; an infeasible point is stored as ``null``."""
    return value if math.isfinite(value) else None


def _decode_value(raw: Optional[float]) -> float:
    return float(raw) if raw is not None else math.inf


class EvaluationStore:
    """Append-only on-disk mirror of an evaluation cache.

    Construct with :meth:`open`.  Typical wiring (done by
    :func:`repro.core.windim.windim` under ``store_path=``):

    1. ``open(path, fingerprint)`` — loads previous entries, or creates a
       fresh file with a header.
    2. Prime the run: copy :attr:`values` into the search's
       ``EvaluationCache`` and :attr:`seeds` into the
       :class:`~repro.core.reuse.ReuseEngine`.
    3. :meth:`record` every fresh evaluation as it happens.
    4. :meth:`close` — compacts away duplicate records and releases the
       file handle.

    Attributes
    ----------
    values:
        ``{window vector: objective value}`` for every stored evaluation.
    seeds:
        ``{window vector: (R, L) converged queue lengths}`` where a seed
        was recorded (solver failures and seedless runs store ``null``).
    loaded:
        Number of evaluations read from disk at :meth:`open` time.
    quarantined:
        Corrupt record lines moved to the ``.quarantine`` sidecar at
        :meth:`open` time (always 0 under ``strict=True``).
    """

    def __init__(
        self,
        path: str,
        fingerprint: str,
        values: Dict[Point, float],
        seeds: Dict[Point, np.ndarray],
        appended_lines: int,
        io_policy: Optional[RetryPolicy] = None,
    ):
        self.path = str(path)
        self.fingerprint = str(fingerprint)
        self.values = values
        self.seeds = seeds
        self.loaded = len(values)
        self.quarantined = 0
        self._io_policy = io_policy or DEFAULT_STORE_RETRY
        self._broken = False  # disk gave up; keep serving from memory
        self._disk_lines = appended_lines  # eval records currently on disk
        self._handle = open(self.path, "a")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: str,
        fingerprint: str,
        strict: bool = False,
        io_policy: Optional[RetryPolicy] = None,
    ) -> "EvaluationStore":
        """Open (creating if absent) the store at ``path``.

        By default corrupt *record* lines are quarantined to
        ``<path>.quarantine`` (with a warning) and the load proceeds with
        every healthy record; ``strict=True`` makes any malformed record
        a hard error instead.  Header damage and fingerprint mismatches
        always raise — without a trustworthy header the whole file is
        suspect.

        Raises
        ------
        SearchError
            When the file exists but is not a store, has an unsupported
            version, carries a different model fingerprint, or — under
            ``strict=True`` — contains a malformed record.
        """
        policy = io_policy or DEFAULT_STORE_RETRY
        values: Dict[Point, float] = {}
        seeds: Dict[Point, np.ndarray] = {}
        lines_on_disk = 0
        quarantined: List[Tuple[int, str]] = []
        if os.path.exists(path) and os.path.getsize(path) > 0:
            values, seeds, lines_on_disk, quarantined = cls._load(
                path, fingerprint, strict=strict, io_policy=policy
            )
        else:
            cls._write_header(path, fingerprint)
        store = cls(
            path, fingerprint, values, seeds, lines_on_disk, io_policy=policy
        )
        if quarantined:
            store.quarantined = len(quarantined)
            cls._write_quarantine(path, quarantined)
            warnings.warn(
                f"evaluation store {path}: quarantined {len(quarantined)} "
                f"corrupt record line(s) to {path}.quarantine and kept "
                f"{len(values)} healthy record(s)",
                RuntimeWarning,
                stacklevel=2,
            )
            # Compact immediately so the damaged bytes never survive
            # into the next generation of the file.
            store.compact()
        return store

    @staticmethod
    def _write_quarantine(
        path: str, quarantined: List[Tuple[int, str]]
    ) -> None:
        """Append the corrupt lines to the sidecar (best effort)."""
        sidecar = path + ".quarantine"
        try:
            with open(sidecar, "a") as handle:
                for lineno, raw in quarantined:
                    handle.write(json.dumps({"line": lineno, "raw": raw}))
                    handle.write("\n")
        except OSError:  # pragma: no cover - sidecar is advisory
            pass

    @staticmethod
    def _write_header(path: str, fingerprint: str) -> None:
        directory = os.path.dirname(os.path.abspath(path)) or "."
        os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            handle.write(
                json.dumps({"version": STORE_VERSION, "fingerprint": fingerprint})
            )
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())

    @staticmethod
    def _read_lines(path: str, io_policy: RetryPolicy) -> List[str]:
        """Read the raw store lines, retrying transient IO failures."""
        from repro.chaos import hooks as chaos_hooks

        def _read() -> List[str]:
            chaos_hooks.perform("store.load")
            with open(path, "r") as handle:
                return handle.read().split("\n")

        try:
            return io_policy.call(_read, retry_on=(OSError,), salt=path)
        except OSError as exc:
            raise SearchError(
                f"cannot read evaluation store {path}: {exc}"
            ) from exc

    @classmethod
    def _load(
        cls,
        path: str,
        fingerprint: str,
        strict: bool = False,
        io_policy: Optional[RetryPolicy] = None,
    ) -> Tuple[
        Dict[Point, float],
        Dict[Point, np.ndarray],
        int,
        List[Tuple[int, str]],
    ]:
        lines = cls._read_lines(path, io_policy or DEFAULT_STORE_RETRY)
        # A complete file ends with "\n" -> trailing "" sentinel.  Anything
        # else after the final newline is a torn append; drop it silently.
        if lines and lines[-1] == "":
            lines.pop()
            torn = None
        else:
            torn = lines.pop() if lines else None
        if not lines:
            raise SearchError(
                f"evaluation store {path}: missing header line "
                + (f"(torn write {torn[:40]!r}?)" if torn else "")
            )
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise SearchError(
                f"evaluation store {path}: header is not valid JSON: {exc}"
            ) from exc
        if not isinstance(header, dict) or header.get("version") != STORE_VERSION:
            raise SearchError(
                f"evaluation store {path}: unsupported version "
                f"{header.get('version') if isinstance(header, dict) else header!r} "
                f"(expected {STORE_VERSION})"
            )
        stored = header.get("fingerprint")
        if stored != fingerprint:
            raise SearchError(
                f"evaluation store {path} was written for a different "
                f"model/solver (fingerprint {str(stored)[:12]}… vs "
                f"{fingerprint[:12]}…); refusing to reuse it — pass a "
                "different --store path for this instance"
            )
        values: Dict[Point, float] = {}
        seeds: Dict[Point, np.ndarray] = {}
        quarantined: List[Tuple[int, str]] = []
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
                crc = record.pop("crc", None)
                if crc is not None and int(crc) != zlib.crc32(
                    _canonical(record).encode("utf-8")
                ):
                    raise ValueError("record checksum mismatch (bit rot?)")
                point = tuple(int(x) for x in record["point"])
                value = _decode_value(record.get("value"))
                raw_seed = record.get("seed")
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                if strict:
                    raise SearchError(
                        f"evaluation store {path}: malformed record on line "
                        f"{lineno}: {exc}"
                    ) from exc
                quarantined.append((lineno, line))
                continue
            values[point] = value
            if raw_seed is not None:
                seeds[point] = np.asarray(raw_seed, dtype=np.float64)
            else:
                seeds.pop(point, None)
        return values, seeds, len(lines) - 1, quarantined

    # ------------------------------------------------------------------
    # reads / writes
    # ------------------------------------------------------------------
    def __contains__(self, point: Sequence[int]) -> bool:
        return tuple(int(x) for x in point) in self.values

    def __len__(self) -> int:
        return len(self.values)

    def get(self, point: Sequence[int]) -> Optional[float]:
        """The stored objective value, or None when absent."""
        return self.values.get(tuple(int(x) for x in point))

    def record(
        self,
        point: Sequence[int],
        value: float,
        seed: Optional[np.ndarray] = None,
    ) -> None:
        """Append one evaluation (idempotent for identical re-records)."""
        key = tuple(int(x) for x in point)
        if key in self.values and self.values[key] == _safe_float(value):
            if seed is None or key in self.seeds:
                return
        payload = {
            "point": list(key),
            "value": _encode_value(float(value)),
            "seed": np.asarray(seed, dtype=np.float64).tolist()
            if seed is not None
            else None,
        }
        self.values[key] = _safe_float(value)
        if seed is not None:
            self.seeds[key] = np.asarray(seed, dtype=np.float64)
        if self._broken:
            return  # disk already gave up; memory stays authoritative
        line = _record_line(payload)
        try:
            self._io_policy.call(
                lambda: self._append(line), retry_on=(OSError,), salt=str(key)
            )
        except OSError as exc:
            self._broken = True
            warnings.warn(
                f"evaluation store {self.path}: append failed after "
                f"{self._io_policy.max_attempts} attempts ({exc}); the "
                "store degrades to memory-only for the rest of the run",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        self._disk_lines += 1

    def _append(self, line: str) -> None:
        from repro.chaos import hooks as chaos_hooks

        action = chaos_hooks.perform("store.record")
        if action is not None and action.action == "corrupt":
            # Simulate bit rot / a torn sector inside the record: the
            # line length is preserved so only this record is damaged.
            cut = len(line) // 2
            line = line[:cut] + "\x00#CHAOS" + line[cut + 7 :]
        self._handle.write(line)
        self._handle.write("\n")
        self._handle.flush()

    def compact(self) -> str:
        """Atomically rewrite the store with one record per point.

        Uses the checkpoint idiom — same-directory temp file, fsync, then
        ``os.replace`` — so a crash mid-compaction leaves the previous
        store intact.  Returns the path.
        """
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(self.path) + ".", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(
                    json.dumps(
                        {"version": STORE_VERSION, "fingerprint": self.fingerprint}
                    )
                )
                handle.write("\n")
                for key in sorted(self.values):
                    seed = self.seeds.get(key)
                    handle.write(
                        _record_line(
                            {
                                "point": list(key),
                                "value": _encode_value(self.values[key]),
                                "seed": seed.tolist() if seed is not None else None,
                            }
                        )
                    )
                    handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            self._handle.close()
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        finally:
            if self._handle.closed:
                self._handle = open(self.path, "a")
        self._disk_lines = len(self.values)
        return self.path

    def stats(self) -> Dict[str, object]:
        """Store health counters for result summaries and reports."""
        return {
            "loaded": self.loaded,
            "quarantined": self.quarantined,
            "records": len(self.values),
            "disk_lines": self._disk_lines,
            "broken": self._broken,
        }

    def close(self) -> None:
        """Compact if the file holds duplicate records, then release it."""
        if self._handle.closed:
            return
        if self._disk_lines > len(self.values) and not self._broken:
            self.compact()
        self._handle.close()

    def __enter__(self) -> "EvaluationStore":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


def _safe_float(value: float) -> float:
    value = float(value)
    return value if math.isfinite(value) else math.inf
