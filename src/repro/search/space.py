"""Integer box search spaces for window dimensioning.

Window vectors are integer points ``lower <= e <= upper`` componentwise.
The thesis problem has ``lower = 1`` (a window of zero shuts the virtual
channel) and an upper bound set by node buffer capacity considerations
(§2.3).  :class:`IntegerBox` encapsulates clipping, membership and
neighbour generation for all the optimisers in this package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.errors import SearchError

__all__ = ["IntegerBox"]


@dataclass(frozen=True)
class IntegerBox:
    """Axis-aligned box of integer points.

    Parameters
    ----------
    lower / upper:
        Inclusive per-dimension bounds; must satisfy ``lower <= upper``.
    """

    lower: Tuple[int, ...]
    upper: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lower) != len(self.upper):
            raise SearchError(
                f"bounds dimension mismatch: {len(self.lower)} vs {len(self.upper)}"
            )
        if len(self.lower) == 0:
            raise SearchError("search space must have at least one dimension")
        for lo, hi in zip(self.lower, self.upper):
            if lo > hi:
                raise SearchError(f"empty range [{lo}, {hi}] in search space")

    @classmethod
    def windows(cls, dimensions: int, max_window: int = 64) -> "IntegerBox":
        """The standard window-dimensioning space ``[1, max_window]^R``."""
        if dimensions < 1:
            raise SearchError("need at least one window dimension")
        if max_window < 1:
            raise SearchError("max_window must be >= 1")
        return cls(lower=(1,) * dimensions, upper=(max_window,) * dimensions)

    @property
    def dimensions(self) -> int:
        """Number of coordinates."""
        return len(self.lower)

    def __contains__(self, point: Sequence[int]) -> bool:
        if len(point) != self.dimensions:
            return False
        return all(
            lo <= x <= hi for x, lo, hi in zip(point, self.lower, self.upper)
        )

    def clip(self, point: Sequence[int]) -> Tuple[int, ...]:
        """Project a point onto the box."""
        if len(point) != self.dimensions:
            raise SearchError(
                f"point dimension {len(point)} != space dimension {self.dimensions}"
            )
        return tuple(
            min(max(int(x), lo), hi)
            for x, lo, hi in zip(point, self.lower, self.upper)
        )

    def size(self) -> int:
        """Number of integer points in the box."""
        count = 1
        for lo, hi in zip(self.lower, self.upper):
            count *= hi - lo + 1
        return count

    def points(self) -> Iterator[Tuple[int, ...]]:
        """Enumerate every point (row-major); used by exhaustive search."""
        import itertools

        ranges = [range(lo, hi + 1) for lo, hi in zip(self.lower, self.upper)]
        return itertools.product(*ranges)

    def axis_neighbors(
        self, point: Sequence[int], step: int, axis: int
    ) -> Iterator[Tuple[int, ...]]:
        """The two axis moves ``point ± step * u_axis`` that stay in the box."""
        if step < 1:
            raise SearchError("step must be >= 1")
        base = list(point)
        for direction in (+1, -1):
            candidate = list(base)
            candidate[axis] += direction * step
            if tuple(candidate) in self:
                yield tuple(candidate)
