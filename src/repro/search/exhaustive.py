"""Exhaustive grid search baseline.

Evaluates every point of the integer box and returns the global minimiser.
This is the brute force that pattern search is designed to avoid; the
benchmarks use it to probe the global optimality of WINDIM's answers on
small windows (§4.5, "In probing the global optimality of the window sizes
selected …").
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.errors import SearchError
from repro.search.cache import EvaluationCache
from repro.search.result import SearchResult
from repro.search.space import IntegerBox

__all__ = ["exhaustive_search"]

Point = Tuple[int, ...]


def exhaustive_search(
    objective: Callable[[Point], float],
    space: IntegerBox,
    max_points: int = 1_000_000,
    cache: Optional[EvaluationCache] = None,
) -> SearchResult:
    """Minimise ``objective`` by evaluating every point of ``space``.

    Parameters
    ----------
    objective / space / cache:
        As for :func:`repro.search.pattern.pattern_search`.
    max_points:
        Guard rail: refuse spaces with more points than this.
    """
    size = space.size()
    if size > max_points:
        raise SearchError(
            f"search space has {size} points (> {max_points}); "
            "exhaustive search refused"
        )
    if cache is None:
        cache = EvaluationCache(objective)

    best_point: Optional[Point] = None
    best_value = float("inf")
    for point in space.points():
        value = cache(point)
        if value < best_value:
            best_point, best_value = point, value
    assert best_point is not None  # space is never empty

    return SearchResult(
        best_point=best_point,
        best_value=best_value,
        evaluations=cache.evaluations,
        lookups=cache.lookups,
        base_points=[best_point],
        method="exhaustive",
    )
