"""Uniform solver registry for differential verification.

Every throughput/delay backend in the repository — the exact product-form
solvers (:mod:`repro.exact`), the approximate MVA family (:mod:`repro.mva`)
and the discrete-event simulator (:mod:`repro.sim`) — is exposed here as a
:class:`SolverSpec` with one uniform interface: it takes a
:class:`VerifyCase` and returns a :class:`SolverOutput` of per-chain
throughputs and delays.  Each spec also knows when it is *applicable*
(e.g. Gordon–Newell wants a single chain, the CTMC wants a tractable state
space), so the differential checker can run every meaningful pair on every
fuzzed instance without special-casing solver quirks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exact.states import lattice_size
from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficClass
from repro.queueing.network import ClosedNetwork
from repro.solution import NetworkSolution

__all__ = [
    "SolverKind",
    "VerifyCase",
    "SolverOutput",
    "SolverSpec",
    "ctmc_state_count",
    "registry",
    "solver_names",
    "get_solver",
    "applicable_solvers",
]

#: Largest CTMC state space the oracle will ask the global-balance solver
#: to enumerate (a dense linear system is solved, so keep this modest).
CTMC_STATE_LIMIT = 4_000

#: Largest population lattice for the exact recursive solvers when driven
#: by the fuzzer (far below their own module limits; keeps sweeps fast).
LATTICE_LIMIT = 250_000


class SolverKind(Enum):
    """How a backend's output should be judged by the checker."""

    EXACT = "exact"
    APPROXIMATE = "approximate"
    SIMULATION = "simulation"


@dataclass(frozen=True)
class VerifyCase:
    """One network instance to be cross-checked.

    The analytic solvers need only the :class:`ClosedNetwork`; the
    simulator additionally needs the physical description it was built
    from (topology + traffic classes), so fuzzer-produced cases carry
    both.  Cases built directly from a :class:`ClosedNetwork` simply
    cannot be simulated and the simulator spec reports itself
    inapplicable.
    """

    label: str
    network: ClosedNetwork
    topology: Optional[Topology] = None
    classes: Optional[Tuple[TrafficClass, ...]] = None

    @property
    def can_simulate(self) -> bool:
        """True when the physical description needed by the simulator exists."""
        return self.topology is not None and self.classes is not None

    @classmethod
    def from_network(cls, label: str, network: ClosedNetwork) -> "VerifyCase":
        """An analytic-only case (no simulator backend)."""
        return cls(label=label, network=network)


@dataclass(frozen=True)
class SolverOutput:
    """Uniform result record: what every backend reports for a case.

    Attributes
    ----------
    throughputs / chain_delays:
        ``(R,)`` per-chain cycle throughput (msg/s) and mean network delay
        (seconds, excluding the source queue).
    mean_network_delay:
        Throughput-weighted mean network delay (the thesis ``T``).
    queue_lengths:
        ``(R, L)`` mean per-chain queue lengths, or ``None`` when the
        backend does not report them per chain (the simulator).
    delay_half_widths:
        ``(R,)`` 95% batch-means half-widths on the per-chain delays
        (simulation only; ``None`` for analytic backends).
    """

    solver: str
    kind: SolverKind
    throughputs: np.ndarray
    chain_delays: np.ndarray
    mean_network_delay: float
    queue_lengths: Optional[np.ndarray] = None
    delay_half_widths: Optional[np.ndarray] = None


@dataclass(frozen=True)
class SolverSpec:
    """One registered backend.

    ``applicability(case)`` returns ``None`` when the backend can handle
    the case, or a short human-readable reason when it cannot.
    """

    name: str
    kind: SolverKind
    solve: Callable[[VerifyCase], SolverOutput]
    applicability: Callable[[VerifyCase], Optional[str]]

    def is_applicable(self, case: VerifyCase) -> bool:
        """True when :attr:`applicability` raises no objection."""
        return self.applicability(case) is None


def ctmc_state_count(network: ClosedNetwork) -> int:
    """Size of the global-balance state space the CTMC solver enumerates.

    Each chain ``r`` with a route of ``m_r`` distinct stations and window
    ``E_r`` contributes ``C(E_r + m_r - 1, m_r - 1)`` placements; the state
    space is the product over chains.
    """
    total = 1
    for chain in network.chains:
        positions = len(set(chain.visits))
        total *= math.comb(int(chain.population) + positions - 1, positions - 1)
    return total


def _routes_revisit_stations(network: ClosedNetwork) -> bool:
    return any(
        len(set(chain.visits)) != len(chain.visits) for chain in network.chains
    )


def _output_from_solution(
    solution: NetworkSolution, name: str, kind: SolverKind
) -> SolverOutput:
    return SolverOutput(
        solver=name,
        kind=kind,
        throughputs=np.asarray(solution.throughputs, dtype=float),
        chain_delays=np.asarray(solution.chain_delays, dtype=float),
        mean_network_delay=float(solution.mean_network_delay),
        queue_lengths=np.asarray(solution.queue_lengths, dtype=float),
    )


def _network_solver(
    name: str,
    kind: SolverKind,
    solve_network: Callable[[ClosedNetwork], NetworkSolution],
    applicability: Callable[[VerifyCase], Optional[str]],
) -> SolverSpec:
    def solve(case: VerifyCase) -> SolverOutput:
        return _output_from_solution(solve_network(case.network), name, kind)

    return SolverSpec(name=name, kind=kind, solve=solve, applicability=applicability)


# ----------------------------------------------------------------------
# applicability predicates
# ----------------------------------------------------------------------
def _always(case: VerifyCase) -> Optional[str]:
    return None


def _fixed_rate_lattice(case: VerifyCase) -> Optional[str]:
    if not case.network.is_fixed_rate():
        return "needs fixed-rate single-server / IS stations"
    size = lattice_size([int(p) for p in case.network.populations])
    if size > LATTICE_LIMIT:
        return f"population lattice too large ({size} > {LATTICE_LIMIT})"
    return None


def _single_chain(case: VerifyCase) -> Optional[str]:
    if case.network.num_chains != 1:
        return f"single-chain solver ({case.network.num_chains} chains)"
    return None


def _ctmc_applicable(case: VerifyCase) -> Optional[str]:
    if not case.network.is_fixed_rate():
        return "needs fixed-rate single-server / IS stations"
    if _routes_revisit_stations(case.network):
        return "routes revisit stations"
    states = ctmc_state_count(case.network)
    if states > CTMC_STATE_LIMIT:
        return f"state space too large ({states} > {CTMC_STATE_LIMIT})"
    return None


def _simulatable(case: VerifyCase) -> Optional[str]:
    if not case.can_simulate:
        return "case carries no topology/traffic description"
    return None


# ----------------------------------------------------------------------
# backend adapters
# ----------------------------------------------------------------------
def _solve_convolution(network: ClosedNetwork) -> NetworkSolution:
    from repro.exact.convolution import solve_convolution

    return solve_convolution(network)


def _solve_mva_exact(network: ClosedNetwork) -> NetworkSolution:
    # Pinned to the scalar reference kernel so the registry's
    # ``mva-exact`` / ``mva-exact-vectorized`` pair is a genuine
    # differential check between the two kernels, independent of the
    # process-wide default backend.
    from repro.exact.mva_exact import solve_mva_exact

    return solve_mva_exact(network, backend="scalar")


def _solve_mva_exact_vectorized(network: ClosedNetwork) -> NetworkSolution:
    from repro.exact.mva_exact import solve_mva_exact

    return solve_mva_exact(network, backend="vectorized")


def _solve_ctmc(network: ClosedNetwork) -> NetworkSolution:
    from repro.exact.ctmc import solve_ctmc

    return solve_ctmc(network)


def _solve_gordon_newell(network: ClosedNetwork) -> NetworkSolution:
    from repro.exact.gordon_newell import solve_gordon_newell

    return solve_gordon_newell(network)


def _solve_buzen(case: VerifyCase) -> SolverOutput:
    """Single-chain measures straight from the Buzen constants.

    Deliberately a *different* code path from the ``gordon-newell``
    wrapper: throughput and queue lengths are read off the
    :class:`~repro.exact.buzen.BuzenResult` closed forms, so the two
    single-chain backends cross-check each other.
    """
    from repro.exact.buzen import buzen_stations

    network = case.network
    population = int(network.populations[0])
    demands = network.demands[0]
    peak = demands.max()
    scale = peak if peak > 0 else 1.0
    result = buzen_stations(demands / scale, population, network.stations)
    throughput = result.throughput() / scale
    queue_lengths = np.zeros((1, network.num_stations))
    for n, station in enumerate(network.stations):
        if station.is_delay:
            queue_lengths[0, n] = demands[n] * throughput
        else:
            queue_lengths[0, n] = result.mean_queue_length(n)
    mask = network.delay_mask()[0]
    delay = (
        float(queue_lengths[0, mask].sum() / throughput)
        if throughput > 0
        else float("inf")
    )
    return SolverOutput(
        solver="buzen",
        kind=SolverKind.EXACT,
        throughputs=np.asarray([throughput]),
        chain_delays=np.asarray([delay]),
        mean_network_delay=delay,
        queue_lengths=queue_lengths,
    )


def _buzen_applicable(case: VerifyCase) -> Optional[str]:
    reason = _single_chain(case)
    if reason is not None:
        return reason
    station = next(
        (
            s
            for s in case.network.stations
            if not s.is_delay and (s.servers != 1 or s.rate_multipliers is not None)
        ),
        None,
    )
    if station is not None:
        return f"station {station.name!r} is not fixed-rate single-server"
    return None


def _solve_heuristic(network: ClosedNetwork) -> NetworkSolution:
    # Scalar reference kernel (see _solve_mva_exact for the rationale).
    from repro.mva.heuristic import solve_mva_heuristic

    return solve_mva_heuristic(network, backend="scalar")


def _solve_heuristic_vectorized(network: ClosedNetwork) -> NetworkSolution:
    from repro.mva.heuristic import solve_mva_heuristic

    return solve_mva_heuristic(network, backend="vectorized")


def _solve_schweitzer(network: ClosedNetwork) -> NetworkSolution:
    from repro.mva.schweitzer import solve_schweitzer

    return solve_schweitzer(network)


def _solve_linearizer(network: ClosedNetwork) -> NetworkSolution:
    from repro.mva.linearizer import solve_linearizer

    return solve_linearizer(network)


def _asymptotic_regime(case: VerifyCase) -> Optional[str]:
    """The CLT/asymptotic solver's validity gate (chain-count floor).

    Outside the regime the mean-field fixed point has no accuracy claim
    (the arrival-theorem correction it drops is O(1) there, not
    O(1/chains)), so the oracle refuses to grade it — the solver is never
    silently held to bands that were calibrated elsewhere.
    """
    from repro.mva.asymptotic import ASYMPTOTIC_MIN_CHAINS

    if case.network.num_chains < ASYMPTOTIC_MIN_CHAINS:
        return (
            f"outside the CLT regime ({case.network.num_chains} chains "
            f"< {ASYMPTOTIC_MIN_CHAINS})"
        )
    return None


def _solve_asymptotic(network: ClosedNetwork) -> NetworkSolution:
    from repro.mva.asymptotic import solve_asymptotic

    return solve_asymptotic(network)


def _solve_resilient(network: ClosedNetwork) -> NetworkSolution:
    """The escalation-ladder runtime over the thesis heuristic.

    Registering it here means every differential sweep also exercises the
    retry/escalation machinery: its output must stay inside the same
    approximate tolerance bands as the heuristic it wraps, whichever rung
    ends up producing the accepted solution.
    """
    from repro.resilience.ladder import solve_resilient

    return solve_resilient(network, "mva-heuristic")


def simulation_spec(
    duration: float = 4_000.0,
    warmup: float = 400.0,
    seed: int = 0,
) -> SolverSpec:
    """A simulator backend with explicit run-length controls.

    The registry's default entry uses the defaults above; the deep fuzz
    sweep builds longer runs for tighter confidence intervals.
    """

    def solve(case: VerifyCase) -> SolverOutput:
        from repro.sim import FlowControlConfig, simulate

        assert case.topology is not None and case.classes is not None
        windows = [int(p) for p in case.network.populations]
        result = simulate(
            case.topology,
            case.classes,
            FlowControlConfig.end_to_end(windows),
            duration=duration,
            warmup=warmup,
            source_model="closed",
            seed=seed,
        )
        stats = [result.class_by_name(c.name) for c in case.classes]
        return SolverOutput(
            solver="simulation",
            kind=SolverKind.SIMULATION,
            throughputs=np.asarray([s.throughput for s in stats]),
            chain_delays=np.asarray([s.mean_network_delay for s in stats]),
            mean_network_delay=float(result.mean_network_delay),
            delay_half_widths=np.asarray([s.delay_half_width for s in stats]),
        )

    return SolverSpec(
        name="simulation",
        kind=SolverKind.SIMULATION,
        solve=solve,
        applicability=_simulatable,
    )


def _build_registry() -> Dict[str, SolverSpec]:
    specs = [
        _network_solver(
            "convolution", SolverKind.EXACT, _solve_convolution, _fixed_rate_lattice
        ),
        _network_solver(
            "mva-exact", SolverKind.EXACT, _solve_mva_exact, _fixed_rate_lattice
        ),
        _network_solver(
            "mva-exact-vectorized",
            SolverKind.EXACT,
            _solve_mva_exact_vectorized,
            _fixed_rate_lattice,
        ),
        _network_solver("ctmc", SolverKind.EXACT, _solve_ctmc, _ctmc_applicable),
        _network_solver(
            "gordon-newell", SolverKind.EXACT, _solve_gordon_newell, _single_chain
        ),
        SolverSpec(
            name="buzen",
            kind=SolverKind.EXACT,
            solve=_solve_buzen,
            applicability=_buzen_applicable,
        ),
        _network_solver(
            "mva-heuristic", SolverKind.APPROXIMATE, _solve_heuristic, _always
        ),
        _network_solver(
            "mva-heuristic-vectorized",
            SolverKind.APPROXIMATE,
            _solve_heuristic_vectorized,
            _always,
        ),
        _network_solver(
            "schweitzer", SolverKind.APPROXIMATE, _solve_schweitzer, _always
        ),
        _network_solver(
            "linearizer", SolverKind.APPROXIMATE, _solve_linearizer, _always
        ),
        _network_solver(
            "resilient", SolverKind.APPROXIMATE, _solve_resilient, _always
        ),
        _network_solver(
            "asymptotic",
            SolverKind.APPROXIMATE,
            _solve_asymptotic,
            _asymptotic_regime,
        ),
        simulation_spec(),
    ]
    return {spec.name: spec for spec in specs}


#: Every registered backend, keyed by name.  Exact solvers come first so
#: reference selection (first applicable exact solver) is deterministic.
REGISTRY: Dict[str, SolverSpec] = _build_registry()


def registry() -> Dict[str, SolverSpec]:
    """A copy of the full registry (name -> spec)."""
    return dict(REGISTRY)


def solver_names() -> Tuple[str, ...]:
    """All registered backend names, in precedence order."""
    return tuple(REGISTRY)


def get_solver(name: str) -> SolverSpec:
    """Look a backend up by name (raises ``KeyError``)."""
    return REGISTRY[name]


def applicable_solvers(
    case: VerifyCase,
    names: Optional[Sequence[str]] = None,
) -> Tuple[List[SolverSpec], List[Tuple[str, str]]]:
    """Partition backends into (applicable, skipped-with-reason) for a case.

    Parameters
    ----------
    case:
        The network instance.
    names:
        Restrict to these backends (default: the whole registry).
    """
    chosen = [REGISTRY[n] for n in names] if names is not None else list(
        REGISTRY.values()
    )
    applicable: List[SolverSpec] = []
    skipped: List[Tuple[str, str]] = []
    for spec in chosen:
        reason = spec.applicability(case)
        if reason is None:
            applicable.append(spec)
        else:
            skipped.append((spec.name, reason))
    return applicable, skipped
