"""Cross-solver differential checker.

Runs every applicable backend pair on each :class:`VerifyCase` and judges
agreement with a per-pair tolerance policy:

* **exact vs exact** — the product-form solvers compute the same quantity
  by different algorithms, so they must agree to numerical precision
  (``exact_rtol``, default 1e-8; pairs involving the dense CTMC linear
  solve get the slightly looser ``ctmc_rtol``).
* **approximate vs exact** — the §4.2 heuristic family is judged against
  the documented thesis error bands (a few percent on throughput, wider
  on delay), configurable per metric.
* **simulation vs exact** — the measured point must fall inside its own
  95% batch-means confidence interval around the exact value, scaled by
  ``sim_ci_multiplier``, with a small relative slack floor for
  very-tight-CI runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.verify.oracle import (
    SolverKind,
    SolverOutput,
    SolverSpec,
    VerifyCase,
    applicable_solvers,
)
from repro.verify.report import CaseReport, DifferentialReport, Discrepancy, PairResult

__all__ = ["TolerancePolicy", "check_pair", "check_case", "run_differential"]

_REL_FLOOR = 1e-12


@dataclass(frozen=True)
class TolerancePolicy:
    """Per-pair-kind tolerance bands.

    The approximate bands start from the thesis §4.2 accuracy discussion
    (the heuristic tracked the exact solution within a few percent on its
    own networks) and were calibrated against 800 fuzzed random meshes
    (seeds 0–19, 40 cases each): observed worst-case errors were 8.2%
    throughput / 28.1% per-chain delay for the heuristic and 12.7% / 22.3%
    for Schweitzer–Bard; the defaults add ~25% headroom on top.

    The CLT/asymptotic solver gets its own, wider bands: it drops the
    arrival-theorem correction entirely, so even inside its validity
    regime (the oracle gates it at >= 12 chains) per-chain errors are
    O(own-chain share), not O(percent).  Calibrated against random meshes
    at 12–13 chains with windows 1–3 vs exact MVA (seeds 1–6): observed
    worst-case 44.6% throughput / 47.8% per-chain delay; the defaults add
    ~30% headroom.  These bands are an order-of-magnitude sanity guard —
    the tier's value is scale, not small-network accuracy.
    """

    exact_rtol: float = 1e-8
    ctmc_rtol: float = 1e-7
    approx_throughput_rtol: float = 0.15
    approx_delay_rtol: float = 0.35
    asymptotic_throughput_rtol: float = 0.60
    asymptotic_delay_rtol: float = 0.65
    sim_ci_multiplier: float = 3.0
    sim_rel_slack: float = 0.05
    sim_throughput_rtol: float = 0.08


def _relative_error(candidate: float, reference: float) -> float:
    return abs(candidate - reference) / max(abs(reference), _REL_FLOOR)


def _metric_rows(
    case: VerifyCase,
    reference: SolverOutput,
    candidate: SolverOutput,
    include_queues: bool,
) -> List[Tuple[str, float, float]]:
    """(metric name, reference value, candidate value) triples to compare."""
    chains = case.network.chain_names
    rows: List[Tuple[str, float, float]] = []
    for r, name in enumerate(chains):
        rows.append(
            (
                f"throughput[{name}]",
                float(reference.throughputs[r]),
                float(candidate.throughputs[r]),
            )
        )
        rows.append(
            (
                f"delay[{name}]",
                float(reference.chain_delays[r]),
                float(candidate.chain_delays[r]),
            )
        )
    rows.append(
        ("mean_network_delay", reference.mean_network_delay, candidate.mean_network_delay)
    )
    if (
        include_queues
        and reference.queue_lengths is not None
        and candidate.queue_lengths is not None
    ):
        stations = case.network.station_names
        ref_q = reference.queue_lengths
        cand_q = candidate.queue_lengths
        for r, chain_name in enumerate(chains):
            for i, station_name in enumerate(stations):
                if ref_q[r, i] > 1e-9 or cand_q[r, i] > 1e-9:
                    rows.append(
                        (
                            f"queue[{chain_name},{station_name}]",
                            float(ref_q[r, i]),
                            float(cand_q[r, i]),
                        )
                    )
    return rows


def check_pair(
    case: VerifyCase,
    reference: SolverOutput,
    candidate: SolverOutput,
    policy: Optional[TolerancePolicy] = None,
) -> PairResult:
    """Judge one (reference, candidate) solver pair on one case.

    The reference is expected to be the more exact side; the policy used
    is chosen from the candidate's kind (and the CTMC band when either
    side is the global-balance solver).
    """
    policy = policy or TolerancePolicy()

    if candidate.kind is SolverKind.SIMULATION:
        return _check_simulation_pair(case, reference, candidate, policy)

    if candidate.kind is SolverKind.EXACT:
        tol = (
            policy.ctmc_rtol
            if "ctmc" in (reference.solver, candidate.solver)
            else policy.exact_rtol
        )
        policy_name = "exact-exact"
        rows = _metric_rows(case, reference, candidate, include_queues=True)
        tolerances = {row[0]: tol for row in rows}
    else:
        asymptotic = candidate.solver == "asymptotic"
        policy_name = "asymptotic-exact" if asymptotic else "approx-exact"
        throughput_tol = (
            policy.asymptotic_throughput_rtol
            if asymptotic
            else policy.approx_throughput_rtol
        )
        delay_tol = (
            policy.asymptotic_delay_rtol if asymptotic else policy.approx_delay_rtol
        )
        rows = _metric_rows(case, reference, candidate, include_queues=False)
        tolerances = {
            name: (throughput_tol if name.startswith("throughput") else delay_tol)
            for name, _, _ in rows
        }

    discrepancies: List[Discrepancy] = []
    max_error = 0.0
    max_tol = 0.0
    for metric, ref_value, cand_value in rows:
        tol = tolerances[metric]
        max_tol = max(max_tol, tol)
        error = _relative_error(cand_value, ref_value)
        max_error = max(max_error, error)
        if error > tol:
            discrepancies.append(
                Discrepancy(
                    case=case.label,
                    reference=reference.solver,
                    candidate=candidate.solver,
                    metric=metric,
                    reference_value=ref_value,
                    candidate_value=cand_value,
                    error=error,
                    tolerance=tol,
                )
            )
    return PairResult(
        case=case.label,
        reference=reference.solver,
        candidate=candidate.solver,
        policy=policy_name,
        max_error=max_error,
        tolerance=max_tol,
        discrepancies=tuple(discrepancies),
    )


def _check_simulation_pair(
    case: VerifyCase,
    reference: SolverOutput,
    candidate: SolverOutput,
    policy: TolerancePolicy,
) -> PairResult:
    """Confidence-interval coverage check for the simulator.

    Per-class delay: the exact value must lie within
    ``sim_ci_multiplier * half_width`` of the measured mean (with a
    relative slack floor so a run with a freakishly tight CI does not
    fail on a sub-percent difference).  Per-class throughput: plain
    relative band (the closed-source simulator measures throughput with
    far less variance than delay).
    """
    chains = case.network.chain_names
    discrepancies: List[Discrepancy] = []
    max_error = 0.0
    half_widths = (
        candidate.delay_half_widths
        if candidate.delay_half_widths is not None
        else np.zeros(len(chains))
    )
    for r, name in enumerate(chains):
        exact_delay = float(reference.chain_delays[r])
        sim_delay = float(candidate.chain_delays[r])
        allowed = max(
            policy.sim_ci_multiplier * float(half_widths[r]),
            policy.sim_rel_slack * abs(exact_delay),
        )
        # Error normalised so 1.0 sits exactly on the coverage boundary.
        error = (
            abs(sim_delay - exact_delay) / allowed if allowed > 0 else float("inf")
        )
        max_error = max(max_error, error)
        if error > 1.0:
            discrepancies.append(
                Discrepancy(
                    case=case.label,
                    reference=reference.solver,
                    candidate=candidate.solver,
                    metric=f"delay[{name}]",
                    reference_value=exact_delay,
                    candidate_value=sim_delay,
                    error=error,
                    tolerance=1.0,
                )
            )
        exact_tp = float(reference.throughputs[r])
        sim_tp = float(candidate.throughputs[r])
        tp_error = _relative_error(sim_tp, exact_tp)
        max_error = max(max_error, tp_error / max(policy.sim_throughput_rtol, _REL_FLOOR))
        if tp_error > policy.sim_throughput_rtol:
            discrepancies.append(
                Discrepancy(
                    case=case.label,
                    reference=reference.solver,
                    candidate=candidate.solver,
                    metric=f"throughput[{name}]",
                    reference_value=exact_tp,
                    candidate_value=sim_tp,
                    error=tp_error,
                    tolerance=policy.sim_throughput_rtol,
                )
            )
    return PairResult(
        case=case.label,
        reference=reference.solver,
        candidate=candidate.solver,
        policy="sim-exact",
        max_error=max_error,
        tolerance=1.0,
        discrepancies=tuple(discrepancies),
    )


def check_case(
    case: VerifyCase,
    policy: Optional[TolerancePolicy] = None,
    solvers: Optional[Sequence[str]] = None,
    include_simulation: bool = False,
) -> CaseReport:
    """Run all applicable solver pairs on one case.

    Exact backends are compared pairwise (every combination, earlier
    registry entry as reference); each approximate/simulation backend is
    compared against the first applicable exact backend.
    """
    policy = policy or TolerancePolicy()
    applicable, skipped = applicable_solvers(case, solvers)
    if not include_simulation:
        kept = []
        for spec in applicable:
            if spec.kind is SolverKind.SIMULATION:
                skipped.append((spec.name, "simulation disabled for this run"))
            else:
                kept.append(spec)
        applicable = kept

    outputs: List[Tuple[SolverSpec, SolverOutput]] = [
        (spec, spec.solve(case)) for spec in applicable
    ]

    exact = [(s, o) for s, o in outputs if s.kind is SolverKind.EXACT]
    others = [(s, o) for s, o in outputs if s.kind is not SolverKind.EXACT]

    pairs: List[PairResult] = []
    for i in range(len(exact)):
        for j in range(i + 1, len(exact)):
            pairs.append(check_pair(case, exact[i][1], exact[j][1], policy))

    if exact:
        reference = exact[0][1]
        for _spec, output in others:
            pairs.append(check_pair(case, reference, output, policy))
    else:
        for spec, _output in others:
            skipped.append((spec.name, "no exact reference applicable"))

    return CaseReport(
        case=case.label,
        solvers=tuple(spec.name for spec, _ in outputs),
        skipped=tuple(skipped),
        pairs=tuple(pairs),
    )


def run_differential(
    cases: Iterable[VerifyCase],
    policy: Optional[TolerancePolicy] = None,
    solvers: Optional[Sequence[str]] = None,
    include_simulation: bool = False,
) -> DifferentialReport:
    """Check every case and roll the results into one report."""
    reports = tuple(
        check_case(case, policy, solvers, include_simulation) for case in cases
    )
    return DifferentialReport(cases=reports)
