"""Differential-verification oracle (cross-solver fuzzing + golden fixtures).

The thesis argument rests on redundant solvers agreeing: the §4.2 MVA
heuristic must track the exact product-form solutions closely enough to
drive the WINDIM search, and the simulator must validate both.  This
package turns that redundancy into tooling:

* :mod:`repro.verify.oracle` — every throughput/delay backend behind one
  uniform :class:`~repro.verify.oracle.SolverSpec` interface.
* :mod:`repro.verify.fuzz` — seeded random closed networks bounded so the
  exact solvers stay tractable.
* :mod:`repro.verify.differential` — runs all applicable solver pairs with
  per-pair tolerance policies.
* :mod:`repro.verify.report` — structured discrepancy reports.
* :mod:`repro.verify.golden` — JSON regression fixtures for the thesis
  networks with record/replay.

CLI: ``windim verify --seed N --cases K``.
"""

from repro.verify.differential import (
    TolerancePolicy,
    check_case,
    check_pair,
    run_differential,
)
from repro.verify.fuzz import (
    FuzzConfig,
    case_seed,
    generate_case,
    generate_cases,
    generate_named_cases,
)
from repro.verify.golden import (
    GoldenCase,
    compare_fixture,
    compute_fixture,
    default_golden_dir,
    golden_case_names,
    golden_cases,
    load_fixture,
    record_fixtures,
    verify_fixtures,
)
from repro.verify.oracle import (
    SolverKind,
    SolverOutput,
    SolverSpec,
    VerifyCase,
    applicable_solvers,
    ctmc_state_count,
    get_solver,
    registry,
    simulation_spec,
    solver_names,
)
from repro.verify.report import CaseReport, DifferentialReport, Discrepancy, PairResult

__all__ = [
    "TolerancePolicy",
    "check_case",
    "check_pair",
    "run_differential",
    "FuzzConfig",
    "case_seed",
    "generate_case",
    "generate_cases",
    "generate_named_cases",
    "GoldenCase",
    "compare_fixture",
    "compute_fixture",
    "default_golden_dir",
    "golden_case_names",
    "golden_cases",
    "load_fixture",
    "record_fixtures",
    "verify_fixtures",
    "SolverKind",
    "SolverOutput",
    "SolverSpec",
    "VerifyCase",
    "applicable_solvers",
    "ctmc_state_count",
    "get_solver",
    "registry",
    "simulation_spec",
    "solver_names",
    "CaseReport",
    "DifferentialReport",
    "Discrepancy",
    "PairResult",
]
