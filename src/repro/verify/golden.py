"""Golden regression fixtures for the thesis networks.

Records every registered backend's outputs on the canonical thesis
networks (the Table 4.7/4.8 two-class loadings, the Table 4.12 four-class
row, the Fig. 4.9 fixed-window points, the Kleinrock tandem and the
ARPANET fragment) as JSON files under ``tests/golden/``.  The regression
tests replay the solvers and compare against the stored numbers, so any
future refactor of the MVA kernels, the convolution recursion or the
simulator's analytic counterparts has a fixed oracle.

Record mode (``windim verify --record-golden`` or
``REPRO_GOLDEN_RECORD=1`` in the test suite) regenerates the files;
replay mode is the default.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.verify.oracle import VerifyCase, get_solver

__all__ = [
    "GoldenCase",
    "golden_cases",
    "golden_case_names",
    "default_golden_dir",
    "fixture_path",
    "compute_fixture",
    "record_fixtures",
    "load_fixture",
    "compare_fixture",
    "verify_fixtures",
]

#: Relative tolerance for replay comparisons.  Loose enough to survive
#: numpy/BLAS differences across the CI matrix, tight enough that any
#: real algorithmic change trips it.
GOLDEN_RTOL = 1e-6


@dataclass(frozen=True)
class GoldenCase:
    """One thesis network pinned as a regression fixture."""

    name: str
    description: str
    build: Callable[[], VerifyCase]
    solvers: Tuple[str, ...]


def _canadian2(label: str, s1: float, s2: float, windows: Tuple[int, int]):
    def build() -> VerifyCase:
        from repro.netmodel.examples import canadian_two_class

        return VerifyCase.from_network(label, canadian_two_class(s1, s2, windows))

    return build


def _canadian4(label: str, rates: Tuple[float, ...], windows: Tuple[int, ...]):
    def build() -> VerifyCase:
        from repro.netmodel.examples import canadian_four_class

        return VerifyCase.from_network(label, canadian_four_class(*rates, windows))

    return build


def _tandem(label: str, hops: int, rate: float, window: int):
    def build() -> VerifyCase:
        from repro.netmodel.examples import tandem_network

        return VerifyCase.from_network(label, tandem_network(hops, rate, window=window))

    return build


def _arpanet(label: str, rates: Tuple[float, ...], windows: Tuple[int, ...]):
    def build() -> VerifyCase:
        from repro.netmodel.examples import arpanet_fragment

        return VerifyCase.from_network(label, arpanet_fragment(rates, windows))

    return build


_ANALYTIC = ("convolution", "mva-exact", "mva-heuristic", "schweitzer", "linearizer")

_GOLDEN_CASES: Tuple[GoldenCase, ...] = (
    GoldenCase(
        name="table47_light",
        description="2-class Canadian network, Table 4.7 light load (12.5, 12.5), windows (5, 5)",
        build=_canadian2("table47_light", 12.5, 12.5, (5, 5)),
        solvers=_ANALYTIC,
    ),
    GoldenCase(
        name="table47_moderate",
        description="2-class Canadian network, Table 4.7 moderate load (18, 18), windows (4, 4)",
        build=_canadian2("table47_moderate", 18.0, 18.0, (4, 4)),
        solvers=_ANALYTIC,
    ),
    GoldenCase(
        name="table47_heavy",
        description="2-class Canadian network, Table 4.7 heavy load (50, 50), windows (2, 2)",
        build=_canadian2("table47_heavy", 50.0, 50.0, (2, 2)),
        solvers=_ANALYTIC,
    ),
    GoldenCase(
        name="table48_skewed",
        description="2-class Canadian network, Table 4.8 skewed load (5, 20), windows (4, 4)",
        build=_canadian2("table48_skewed", 5.0, 20.0, (4, 4)),
        solvers=_ANALYTIC,
    ),
    GoldenCase(
        name="fig49_large_window",
        description="2-class Canadian network, Fig. 4.9 large-window curve at (25, 25), windows (7, 7)",
        build=_canadian2("fig49_large_window", 25.0, 25.0, (7, 7)),
        solvers=_ANALYTIC,
    ),
    GoldenCase(
        name="table412_row1",
        description="4-class Canadian network, Table 4.12 row 1: rates (6, 6, 6, 12), optimal windows (1, 1, 1, 4)",
        build=_canadian4("table412_row1", (6.0, 6.0, 6.0, 12.0), (1, 1, 1, 4)),
        solvers=_ANALYTIC,
    ),
    GoldenCase(
        name="tandem4_kleinrock",
        description="Kleinrock 4-hop tandem at 20 msg/s, window 3 (single chain: full exact stack)",
        build=_tandem("tandem4_kleinrock", 4, 20.0, 3),
        solvers=_ANALYTIC + ("gordon-newell", "buzen", "ctmc"),
    ),
    GoldenCase(
        name="arpanet_default",
        description="ARPANET 8-node fragment, default rates (8, 8, 6, 6), windows (2, 2, 2, 2)",
        build=_arpanet("arpanet_default", (8.0, 8.0, 6.0, 6.0), (2, 2, 2, 2)),
        solvers=_ANALYTIC,
    ),
)


def golden_cases() -> Tuple[GoldenCase, ...]:
    """All pinned thesis cases, in fixture order."""
    return _GOLDEN_CASES


def golden_case_names() -> Tuple[str, ...]:
    """Names of all pinned cases (the fixture file stems)."""
    return tuple(case.name for case in _GOLDEN_CASES)


def default_golden_dir() -> Path:
    """``tests/golden`` of the working tree this module lives in."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def fixture_path(directory: Path, name: str) -> Path:
    """Path of the JSON fixture for case ``name``."""
    return Path(directory) / f"{name}.json"


def _case_by_name(name: str) -> GoldenCase:
    for case in _GOLDEN_CASES:
        if case.name == name:
            return case
    raise KeyError(f"unknown golden case {name!r}")


def compute_fixture(case: GoldenCase) -> Dict[str, object]:
    """Run every pinned solver on the case and build the fixture payload."""
    verify_case = case.build()
    network = verify_case.network
    solvers: Dict[str, Dict[str, object]] = {}
    for solver_name in case.solvers:
        output = get_solver(solver_name).solve(verify_case)
        delay = output.mean_network_delay
        throughput = float(output.throughputs.sum())
        solvers[solver_name] = {
            "throughputs": [float(x) for x in output.throughputs],
            "chain_delays": [float(x) for x in output.chain_delays],
            "mean_network_delay": float(delay),
            "network_throughput": throughput,
            "power": throughput / delay if delay > 0 else 0.0,
        }
    return {
        "case": case.name,
        "description": case.description,
        "chains": list(network.chain_names),
        "windows": [int(p) for p in network.populations],
        "solvers": solvers,
    }


def record_fixtures(
    directory: Optional[Path] = None,
    names: Optional[Sequence[str]] = None,
) -> List[Path]:
    """Write (or rewrite) the JSON fixtures; returns the paths written."""
    directory = Path(directory) if directory is not None else default_golden_dir()
    directory.mkdir(parents=True, exist_ok=True)
    chosen = names if names is not None else golden_case_names()
    written: List[Path] = []
    for name in chosen:
        case = _case_by_name(name)
        payload = compute_fixture(case)
        path = fixture_path(directory, name)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        written.append(path)
    return written


def load_fixture(directory: Path, name: str) -> Dict[str, object]:
    """Load one stored fixture (raises ``FileNotFoundError`` if missing)."""
    return json.loads(fixture_path(directory, name).read_text())


def _compare_values(
    metric: str, stored: object, computed: object, rtol: float, mismatches: List[str]
) -> None:
    stored_arr = np.atleast_1d(np.asarray(stored, dtype=float))
    computed_arr = np.atleast_1d(np.asarray(computed, dtype=float))
    if stored_arr.shape != computed_arr.shape:
        mismatches.append(
            f"{metric}: shape {computed_arr.shape} != stored {stored_arr.shape}"
        )
        return
    denom = np.maximum(np.abs(stored_arr), 1e-12)
    errors = np.abs(computed_arr - stored_arr) / denom
    worst = int(np.argmax(errors))
    if errors[worst] > rtol:
        mismatches.append(
            f"{metric}[{worst}]: computed {computed_arr[worst]!r} vs stored "
            f"{stored_arr[worst]!r} (rel err {errors[worst]:.3g} > {rtol:g})"
        )


def compare_fixture(
    case: GoldenCase,
    stored: Dict[str, object],
    rtol: float = GOLDEN_RTOL,
) -> List[str]:
    """Re-run the case's solvers and diff against a stored fixture.

    Returns a list of human-readable mismatch descriptions (empty when the
    replay matches).
    """
    computed = compute_fixture(case)
    mismatches: List[str] = []
    stored_solvers = stored.get("solvers", {})
    for solver_name, computed_metrics in computed["solvers"].items():
        stored_metrics = stored_solvers.get(solver_name)
        if stored_metrics is None:
            mismatches.append(f"{solver_name}: missing from stored fixture")
            continue
        for metric, value in computed_metrics.items():
            if metric not in stored_metrics:
                mismatches.append(f"{solver_name}.{metric}: missing from stored fixture")
                continue
            _compare_values(
                f"{solver_name}.{metric}", stored_metrics[metric], value, rtol, mismatches
            )
    if list(stored.get("windows", [])) != list(computed["windows"]):
        mismatches.append(
            f"windows: computed {computed['windows']} vs stored {stored.get('windows')}"
        )
    return mismatches


def verify_fixtures(
    directory: Optional[Path] = None,
    names: Optional[Sequence[str]] = None,
    rtol: float = GOLDEN_RTOL,
) -> Dict[str, List[str]]:
    """Replay every pinned case against its stored fixture.

    Returns ``{case name: [mismatch descriptions]}``; a missing fixture
    file is reported as a single ``"fixture missing"`` entry.
    """
    directory = Path(directory) if directory is not None else default_golden_dir()
    chosen = names if names is not None else golden_case_names()
    results: Dict[str, List[str]] = {}
    for name in chosen:
        case = _case_by_name(name)
        try:
            stored = load_fixture(directory, name)
        except FileNotFoundError:
            results[name] = [
                f"fixture missing: {fixture_path(directory, name)} "
                "(regenerate with `windim verify --record-golden`)"
            ]
            continue
        results[name] = compare_fixture(case, stored, rtol)
    return results
