"""Seeded random-network fuzzer for the differential oracle.

Draws small closed multichain networks from the generators in
:mod:`repro.netmodel.generator`, explicitly bounded so that the exact
solvers stay tractable: windows are small, the population lattice is
capped, and the CTMC state-space estimate is consulted so at least the
recursive exact solvers apply to every instance.  Everything is driven by
``numpy.random.SeedSequence`` spawning, so a master seed reproduces the
identical case list on any machine — a discrepancy report's ``seed`` and
``index`` are enough to replay one failing instance.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exact.states import lattice_size
from repro.netmodel.builder import build_closed_network
from repro.netmodel.generator import random_mesh_topology, random_traffic_classes
from repro.verify.oracle import VerifyCase

__all__ = [
    "FuzzConfig",
    "case_seed",
    "generate_case",
    "generate_cases",
    "generate_named_cases",
]


@dataclass(frozen=True)
class FuzzConfig:
    """Bounds on the random instances the fuzzer draws.

    The defaults keep every instance inside the comfort zone of the exact
    recursive solvers (lattice of at most ``max_lattice`` population
    vectors) while still exercising half-duplex channel sharing, multihop
    routes and unbalanced windows.
    """

    min_nodes: int = 3
    max_nodes: int = 6
    min_classes: int = 1
    max_classes: int = 3
    max_extra_edges: int = 3
    max_window: int = 4
    max_lattice: int = 400
    rate_range: Tuple[float, float] = (5.0, 25.0)
    capacity_choices: Tuple[float, ...] = (25_000.0, 50_000.0)

    def __post_init__(self) -> None:
        if self.min_nodes < 2 or self.max_nodes < self.min_nodes:
            raise ValueError("need 2 <= min_nodes <= max_nodes")
        if self.min_classes < 1 or self.max_classes < self.min_classes:
            raise ValueError("need 1 <= min_classes <= max_classes")
        if self.max_window < 1:
            raise ValueError("max_window must be >= 1")
        if self.max_lattice < 2:
            raise ValueError("max_lattice must be >= 2")


def _draw_windows(
    rng: np.random.Generator, num_classes: int, config: FuzzConfig
) -> List[int]:
    """Random windows whose population lattice respects ``max_lattice``."""
    windows = [int(rng.integers(1, config.max_window + 1)) for _ in range(num_classes)]
    # Shrink the largest window until the lattice is tractable; with the
    # default bounds this loop almost never runs, but it keeps the fuzzer
    # safe under user-supplied configs.
    while lattice_size(windows) > config.max_lattice:
        windows[windows.index(max(windows))] -= 1
        if max(windows) <= 1:
            break
    return windows


def generate_case(
    seed_sequence: np.random.SeedSequence,
    label: str,
    config: Optional[FuzzConfig] = None,
) -> VerifyCase:
    """Draw one random verify case from a spawned seed sequence."""
    config = config or FuzzConfig()
    rng = np.random.default_rng(seed_sequence)
    num_nodes = int(rng.integers(config.min_nodes, config.max_nodes + 1))
    max_classes = min(config.max_classes, num_nodes - 1)
    num_classes = int(
        rng.integers(config.min_classes, max(config.min_classes, max_classes) + 1)
    )
    extra_edges = int(rng.integers(0, config.max_extra_edges + 1))
    topology = random_mesh_topology(
        num_nodes,
        extra_edges=extra_edges,
        capacity_choices=config.capacity_choices,
        seed=rng,
    )
    classes = random_traffic_classes(
        topology,
        num_classes,
        rate_range=config.rate_range,
        seed=rng,
    )
    windows = _draw_windows(rng, num_classes, config)
    network = build_closed_network(topology, classes, windows)
    return VerifyCase(
        label=label,
        network=network,
        topology=topology,
        classes=tuple(classes),
    )


def generate_cases(
    seed: int,
    count: int,
    config: Optional[FuzzConfig] = None,
) -> Iterator[VerifyCase]:
    """Yield ``count`` reproducible random cases for master ``seed``.

    Case ``i`` depends only on ``(seed, i)`` (via ``SeedSequence.spawn``),
    so a single failing instance from a large sweep can be regenerated in
    isolation.

    Note that the derivation is *positional*: inserting a case in the
    middle of a sweep shifts the instance behind every later index.  Test
    walls that parametrise over individual cases should prefer
    :func:`generate_named_cases`, whose instances are pinned to stable
    case names instead of list positions.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    children = np.random.SeedSequence(seed).spawn(count)
    for index, child in enumerate(children):
        yield generate_case(child, f"fuzz-{index:03d}[seed={seed}]", config)


def case_seed(master_seed: int, name: str) -> np.random.SeedSequence:
    """A ``SeedSequence`` derived from ``(master_seed, hash(name))``.

    The name enters through the first four 32-bit words of its SHA-256
    digest (as the spawn key), so the instance behind a named case is a
    pure function of the master seed and the case *name* — reordering,
    inserting or deleting other cases in a suite cannot silently change
    which network a given test name exercises, which is what happened
    when per-case seeds were derived from list position.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    words = tuple(
        int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)
    )
    return np.random.SeedSequence(entropy=master_seed, spawn_key=words)


def generate_named_cases(
    seed: int,
    names: Sequence[str],
    config: Optional[FuzzConfig] = None,
) -> Iterator[VerifyCase]:
    """Yield one reproducible case per name, pinned by :func:`case_seed`.

    Unlike :func:`generate_cases`, each instance depends only on
    ``(seed, name)`` — never on the position of the name in ``names`` —
    so suites can grow, shrink, or reorder without perturbing existing
    cases.  Duplicate names are rejected: they would silently test the
    identical network twice.
    """
    if len(set(names)) != len(names):
        raise ValueError("case names must be unique")
    for name in names:
        yield generate_case(case_seed(seed, name), f"{name}[seed={seed}]", config)
