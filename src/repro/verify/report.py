"""Structured reports produced by the differential checker.

Every cross-solver comparison yields a :class:`PairResult` (one solver pair
on one network instance); pair results roll up into per-case
:class:`CaseReport` records and finally a :class:`DifferentialReport`, which
is what ``windim verify`` prints and what the fuzz tests assert on.  All
records serialise to plain dictionaries (:meth:`DifferentialReport.to_dict`)
so CI can archive discrepancy reports as JSON artefacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["Discrepancy", "PairResult", "CaseReport", "DifferentialReport"]


@dataclass(frozen=True)
class Discrepancy:
    """One metric on one solver pair exceeding its tolerance.

    Attributes
    ----------
    case:
        Label of the network instance (e.g. ``"fuzz-03"``).
    reference / candidate:
        Solver names; the reference is the higher-precedence (more exact)
        side of the pair.
    metric:
        Which measure disagreed (e.g. ``"throughput[class2]"``).
    reference_value / candidate_value:
        The two numbers.
    error:
        The error as measured by the pair's policy (relative error for
        analytic pairs, normalised CI distance for simulation pairs).
    tolerance:
        The bound ``error`` was checked against.
    """

    case: str
    reference: str
    candidate: str
    metric: str
    reference_value: float
    candidate_value: float
    error: float
    tolerance: float

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.case}: {self.candidate} vs {self.reference} on "
            f"{self.metric}: {self.candidate_value:.6g} vs "
            f"{self.reference_value:.6g} (error {self.error:.3g} > "
            f"tol {self.tolerance:.3g})"
        )

    def to_dict(self) -> Dict[str, object]:
        """Plain-dictionary form for JSON serialisation."""
        return {
            "case": self.case,
            "reference": self.reference,
            "candidate": self.candidate,
            "metric": self.metric,
            "reference_value": self.reference_value,
            "candidate_value": self.candidate_value,
            "error": self.error,
            "tolerance": self.tolerance,
        }


@dataclass(frozen=True)
class PairResult:
    """Outcome of checking one solver pair on one network instance.

    ``max_error`` is the worst error over all compared metrics (also kept
    when the pair passes, so tolerance bands can be calibrated from green
    runs).
    """

    case: str
    reference: str
    candidate: str
    policy: str
    max_error: float
    tolerance: float
    discrepancies: Tuple[Discrepancy, ...] = ()

    @property
    def ok(self) -> bool:
        """True when every metric stayed within tolerance."""
        return not self.discrepancies

    def to_dict(self) -> Dict[str, object]:
        """Plain-dictionary form for JSON serialisation."""
        return {
            "case": self.case,
            "reference": self.reference,
            "candidate": self.candidate,
            "policy": self.policy,
            "max_error": self.max_error,
            "tolerance": self.tolerance,
            "ok": self.ok,
            "discrepancies": [d.to_dict() for d in self.discrepancies],
        }


@dataclass(frozen=True)
class CaseReport:
    """All pair results for one network instance.

    ``skipped`` records solvers that declined the instance and why (e.g.
    the CTMC on a state space that is too large) — the fuzz tests assert
    that exact solvers are exercised often enough to mean something.
    """

    case: str
    solvers: Tuple[str, ...]
    skipped: Tuple[Tuple[str, str], ...]
    pairs: Tuple[PairResult, ...]

    @property
    def ok(self) -> bool:
        """True when every pair on this case passed."""
        return all(p.ok for p in self.pairs)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dictionary form for JSON serialisation."""
        return {
            "case": self.case,
            "solvers": list(self.solvers),
            "skipped": [list(s) for s in self.skipped],
            "pairs": [p.to_dict() for p in self.pairs],
        }


@dataclass(frozen=True)
class DifferentialReport:
    """Roll-up over a whole differential-verification run."""

    cases: Tuple[CaseReport, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        """True when no pair on any case exceeded its tolerance."""
        return all(c.ok for c in self.cases)

    @property
    def num_cases(self) -> int:
        """Number of network instances checked."""
        return len(self.cases)

    @property
    def num_pairs(self) -> int:
        """Number of solver-pair comparisons performed."""
        return sum(len(c.pairs) for c in self.cases)

    @property
    def discrepancies(self) -> List[Discrepancy]:
        """All discrepancies across all cases, flattened."""
        found: List[Discrepancy] = []
        for case in self.cases:
            for pair in case.pairs:
                found.extend(pair.discrepancies)
        return found

    def worst_pairs(self, limit: int = 5) -> List[PairResult]:
        """The ``limit`` pairs with the largest error/tolerance ratio."""
        ranked = sorted(
            (p for c in self.cases for p in c.pairs),
            key=lambda p: p.max_error / p.tolerance if p.tolerance > 0 else 0.0,
            reverse=True,
        )
        return ranked[:limit]

    def to_dict(self) -> Dict[str, object]:
        """Plain-dictionary form for JSON serialisation."""
        return {
            "ok": self.ok,
            "num_cases": self.num_cases,
            "num_pairs": self.num_pairs,
            "num_discrepancies": len(self.discrepancies),
            "cases": [c.to_dict() for c in self.cases],
        }

    def to_json(self, indent: int = 2) -> str:
        """JSON document for archiving as a CI artefact."""
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        """Multi-line human-readable report (what ``windim verify`` prints)."""
        lines = [
            f"differential verification: {self.num_cases} cases, "
            f"{self.num_pairs} solver pairs, "
            f"{len(self.discrepancies)} discrepancies"
        ]
        for case in self.cases:
            status = "ok" if case.ok else "FAIL"
            solvers = ", ".join(case.solvers)
            lines.append(f"  [{status}] {case.case}: {solvers}")
            for solver, reason in case.skipped:
                lines.append(f"         skipped {solver}: {reason}")
            for pair in case.pairs:
                if not pair.ok:
                    for disc in pair.discrepancies:
                        lines.append(f"    !! {disc.summary()}")
        if self.ok:
            lines.append("all solver pairs agree within tolerance")
        else:
            lines.append("DISCREPANCIES FOUND - see lines marked !!")
        return "\n".join(lines)
