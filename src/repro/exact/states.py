"""State-space enumeration helpers for the exact solvers.

Exact product-form algorithms walk lattices of population vectors
(convolution, exact MVA) or full customer-placement state spaces (the
global-balance solver).  These generators centralise that combinatorics.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Sequence, Tuple

__all__ = [
    "population_vectors",
    "population_vectors_by_total",
    "compositions",
    "lattice_size",
]


def lattice_size(limits: Sequence[int]) -> int:
    """Number of population vectors ``0 <= d <= limits`` componentwise.

    This is ``prod_r (E_r + 1)`` — the operation count of the exact
    solvers that the thesis heuristic avoids (§4.2).
    """
    size = 1
    for limit in limits:
        if limit < 0:
            raise ValueError(f"population limits must be >= 0, got {limit}")
        size *= limit + 1
    return size


def population_vectors(limits: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    """All integer vectors ``0 <= d <= limits``, in mixed-radix order."""
    ranges = [range(limit + 1) for limit in limits]
    for vector in itertools.product(*ranges):
        yield vector


def population_vectors_by_total(limits: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    """All vectors ``0 <= d <= limits`` ordered by increasing total.

    Exact MVA must process vectors in this order so that every predecessor
    ``d - u_r`` has been solved before ``d``.
    """
    limits = list(limits)
    grand_total = sum(limits)
    buckets: List[List[Tuple[int, ...]]] = [[] for _ in range(grand_total + 1)]
    for vector in population_vectors(limits):
        buckets[sum(vector)].append(vector)
    for bucket in buckets:
        for vector in bucket:
            yield vector


def compositions(total: int, parts: int) -> Iterator[Tuple[int, ...]]:
    """All non-negative integer tuples of length ``parts`` summing to ``total``.

    Used to enumerate the placements of a chain's customers over its route
    in the global-balance solver (thesis §3.3.3 feasible state sets).
    """
    if parts < 0:
        raise ValueError("parts must be >= 0")
    if parts == 0:
        if total == 0:
            yield ()
        return
    if parts == 1:
        yield (total,)
        return
    for head in range(total + 1):
        for tail in compositions(total - head, parts - 1):
            yield (head,) + tail
