"""Mixed open/closed multichain networks (thesis §3.3.3).

For product-form networks, open chains "shift the argument of the capacity
function" (Table 3.9 discussion): at a fixed-rate station with open-chain
utilisation ``rho0_n = sum_open rho_nr``, the closed chains see the station
as a fixed-rate station with demands inflated by ``1/(1 - rho0_n)``.  The
closed subnetwork can then be solved by any closed-network algorithm, and
the open-chain measures follow from M/M/1-like formulas conditioned on the
closed-chain state.

This module performs exactly that reduction:

1. Validate stability of the open part (``rho0_n < 1`` — a mixed network is
   stable iff it is stable with the closed populations set to zero).
2. Inflate the closed demands and delegate to the chosen closed solver.
3. Report open-chain mean queue lengths
   ``N_nr = rho_nr (1 + N_n^closed) / (1 - rho0_n)``, the standard mixed
   product-form result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError, SolverError, StabilityError
from repro.queueing.chain import ClosedChain, OpenChain
from repro.queueing.network import ClosedNetwork
from repro.queueing.station import Discipline, Station
from repro.solution import NetworkSolution

__all__ = ["MixedNetworkResult", "solve_mixed"]


@dataclass(frozen=True)
class MixedNetworkResult:
    """Solution of a mixed network.

    Attributes
    ----------
    closed:
        Solution of the (inflated) closed subnetwork; its queue lengths and
        throughputs are the exact closed-chain measures of the mixed model.
    open_queue_lengths:
        ``(num_open_chains, L)`` mean queue lengths of the open chains.
    open_utilizations:
        ``(L,)`` total open-chain utilisation ``rho0_n`` per station.
    """

    closed: NetworkSolution
    open_chains: Tuple[OpenChain, ...]
    open_queue_lengths: np.ndarray
    open_utilizations: np.ndarray

    def open_chain_delay(self, chain: int) -> float:
        """Mean end-to-end sojourn time of open chain ``chain`` (Little)."""
        rate = self.open_chains[chain].arrival_rate
        if rate <= 0:
            return 0.0
        return float(self.open_queue_lengths[chain].sum() / rate)


def solve_mixed(
    stations: Sequence[Station],
    closed_chains: Sequence[ClosedChain],
    open_chains: Sequence[OpenChain],
    closed_solver: Optional[Callable[[ClosedNetwork], NetworkSolution]] = None,
) -> MixedNetworkResult:
    """Solve a mixed multichain product-form network.

    Parameters
    ----------
    stations:
        All stations (shared by open and closed chains).
    closed_chains / open_chains:
        The chain populations; open chains carry Poisson arrival rates.
    closed_solver:
        Solver for the reduced closed network; defaults to exact MVA.

    Raises
    ------
    StabilityError
        If the open chains alone saturate some station.
    """
    if closed_solver is None:
        from repro.exact.mva_exact import solve_mva_exact

        closed_solver = solve_mva_exact
    if not closed_chains:
        raise ModelError("solve_mixed needs at least one closed chain")

    station_index = {s.name: i for i, s in enumerate(stations)}
    num_stations = len(stations)

    # Open-chain utilisation per station.
    rho_open = np.zeros((len(open_chains), num_stations))
    for k, chain in enumerate(open_chains):
        for visited, service in zip(chain.visits, chain.service_times):
            if visited not in station_index:
                raise ModelError(
                    f"open chain {chain.name!r} visits unknown station {visited!r}"
                )
            rho_open[k, station_index[visited]] += chain.arrival_rate * service
    rho0 = rho_open.sum(axis=0)
    for i, station in enumerate(stations):
        if station.discipline is Discipline.IS:
            continue
        if rho0[i] >= 1.0:
            raise StabilityError(
                f"station {station.name!r} saturated by open chains "
                f"(rho0 = {rho0[i]:.3f} >= 1)"
            )

    # Closed chains see inflated demands at shared queueing stations.
    inflated_chains = []
    for chain in closed_chains:
        new_services = []
        for visited, service in zip(chain.visits, chain.service_times):
            i = station_index[visited]
            if stations[i].discipline is Discipline.IS:
                new_services.append(service)
            else:
                new_services.append(service / (1.0 - rho0[i]))
        inflated_chains.append(
            ClosedChain(
                name=chain.name,
                visits=chain.visits,
                service_times=tuple(new_services),
                population=chain.population,
                source_station=chain.source_station,
            )
        )

    closed_network = ClosedNetwork.build(
        stations, inflated_chains, strict_fcfs=False
    )
    closed_solution = closed_solver(closed_network)

    # Open-chain queue lengths, conditioned on the closed-chain load.
    closed_totals = closed_solution.queue_lengths.sum(axis=0)
    open_queue_lengths = np.zeros_like(rho_open)
    for k, chain in enumerate(open_chains):
        for i in range(num_stations):
            if rho_open[k, i] <= 0:
                continue
            if stations[i].discipline is Discipline.IS:
                open_queue_lengths[k, i] = rho_open[k, i]
            else:
                open_queue_lengths[k, i] = (
                    rho_open[k, i] * (1.0 + closed_totals[i]) / (1.0 - rho0[i])
                )

    return MixedNetworkResult(
        closed=closed_solution,
        open_chains=tuple(open_chains),
        open_queue_lengths=open_queue_lengths,
        open_utilizations=rho0,
    )
