"""Buzen's convolution algorithm for single-chain closed networks.

Computes the normalisation constants ``G(0..D)`` of a Gordon–Newell network
(thesis §3.3.3, [25]) by convolving station capacity-function coefficients:

    G = c_1 * c_2 * ... * c_N      (eq. 3.28, single-chain case)

For a fixed-rate station the in-place recurrence
``g(k) = g_prev(k) + rho * g(k-1)`` applies (eq. 3.30); general stations
(multi-server, queue-dependent, IS) convolve their full coefficient vector.
From the ``G`` sequence all standard measures follow:

    throughput      lambda(D)   = G(D-1) / G(D)
    utilisation     U_n(D)      = rho_n G(D-1)/G(D)               (fixed rate)
    queue length    N_n(D)      = sum_{k=1..D} rho_n^k G(D-k)/G(D) (fixed rate)
    marginal law    P(h_n = k)  = rho_n^k (G(D-k) - rho_n G(D-k-1))/G(D)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ModelError, SolverError
from repro.queueing.capacity import capacity_coefficients
from repro.queueing.station import Station

__all__ = ["BuzenResult", "buzen", "buzen_stations"]


@dataclass(frozen=True)
class BuzenResult:
    """Normalisation constants and derived measures for one closed chain.

    Attributes
    ----------
    demands:
        ``(L,)`` relative service demands as given by the caller.
    constants:
        ``(D+1,)`` normalisation constants ``G'(0..D)`` of the *internally
        scaled* problem with demands ``demands / scale`` (``G'(k) =
        G(k) / scale^k``).
    fixed_rate:
        ``(L,)`` bool; True where the closed forms for fixed-rate stations
        apply.
    scale:
        Demand rescaling factor applied internally to dodge floating-point
        overflow of the constants (1.0 when none was needed).  All derived
        measures already undo it: queue lengths, utilisations and marginal
        pmfs are scale-invariant, and :meth:`throughput` divides the
        scaled ratio back down.
    """

    demands: np.ndarray
    constants: np.ndarray
    fixed_rate: np.ndarray
    scale: float = 1.0

    @property
    def population(self) -> int:
        """The largest population solved for."""
        return self.constants.shape[0] - 1

    def throughput(self, population: Optional[int] = None) -> float:
        """Chain throughput ``lambda(D) = G(D-1)/G(D)``.

        With internal rescaling, ``G'(D-1)/G'(D) = scale * lambda(D)``,
        hence the division by :attr:`scale`.
        """
        d = self.population if population is None else population
        if d == 0:
            return 0.0
        return float(self.constants[d - 1] / self.constants[d]) / self.scale

    def utilization(self, station: int, population: Optional[int] = None) -> float:
        """Utilisation of a fixed-rate station."""
        self._require_fixed_rate(station)
        return float(self.demands[station] * self.throughput(population))

    def mean_queue_length(self, station: int, population: Optional[int] = None) -> float:
        """Mean queue length of a fixed-rate station.

        ``N_n(D) = sum_{k=1..D} rho_n^k G(D-k) / G(D)``.
        """
        self._require_fixed_rate(station)
        d = self.population if population is None else population
        # The stored constants belong to the scaled problem, so the scaled
        # demand must be used with them (the ratio is scale-invariant).
        rho = self.demands[station] / self.scale
        powers = rho ** np.arange(1, d + 1)
        return float(np.dot(powers, self.constants[d - 1 :: -1][:d]) / self.constants[d])

    def queue_length_distribution(
        self, station: int, population: Optional[int] = None
    ) -> np.ndarray:
        """Marginal queue-length pmf ``P(h_n = k)`` of a fixed-rate station."""
        self._require_fixed_rate(station)
        d = self.population if population is None else population
        rho = self.demands[station] / self.scale
        pmf = np.empty(d + 1)
        for k in range(d + 1):
            tail = self.constants[d - k]
            if k < d:
                tail = tail - rho * self.constants[d - k - 1]
            pmf[k] = (rho**k) * tail / self.constants[d]
        # Guard against tiny negative values from cancellation.
        pmf = np.clip(pmf, 0.0, None)
        return pmf / pmf.sum()

    def _require_fixed_rate(self, station: int) -> None:
        if not self.fixed_rate[station]:
            raise SolverError(
                f"station {station} is not fixed-rate; closed-form per-station "
                "measures are only provided for fixed-rate stations"
            )


def buzen(
    demands: Sequence[float],
    population: int,
    coefficient_vectors: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> BuzenResult:
    """Run Buzen's algorithm.

    Parameters
    ----------
    demands:
        Relative service demand ``rho_n`` of each station.
    population:
        Chain population ``D``.
    coefficient_vectors:
        Optional per-station capacity coefficients ``a_n(0..D)``; ``None``
        entries (or omitting the argument entirely) mean fixed-rate.

    Notes
    -----
    If the raw constants overflow (or underflow to zero) in floating
    point, the computation is automatically retried once with demands
    rescaled by their maximum — the same normalisation
    :func:`repro.exact.aggregation.flow_equivalent_rates` applies up
    front.  All :class:`BuzenResult` measures transparently undo the
    rescaling (see :attr:`BuzenResult.scale`), so callers never observe
    it.  Only if the *rescaled* run still degenerates is
    :class:`~repro.errors.SolverError` raised.
    """
    rho = np.asarray(demands, dtype=float)
    if rho.ndim != 1:
        raise ModelError("demands must be one-dimensional")
    if np.any(rho < 0):
        raise ModelError("demands must be non-negative")
    if population < 0:
        raise ModelError("population must be >= 0")

    num_stations = rho.shape[0]
    if coefficient_vectors is None:
        coefficient_vectors = [None] * num_stations
    if len(coefficient_vectors) != num_stations:
        raise ModelError("coefficient_vectors length must match demands")

    constants, fixed_rate = _convolve_constants(
        rho, population, coefficient_vectors
    )
    if _constants_degenerate(constants, population):
        peak = float(rho.max()) if rho.size else 0.0
        if peak > 0 and np.isfinite(peak) and peak != 1.0:
            scaled_constants, fixed_rate = _convolve_constants(
                rho / peak, population, coefficient_vectors
            )
            if not _constants_degenerate(scaled_constants, population):
                return BuzenResult(
                    demands=rho,
                    constants=scaled_constants,
                    fixed_rate=fixed_rate,
                    scale=peak,
                )
        raise SolverError(
            "normalisation constants overflowed or vanished even after "
            "rescaling demands by their maximum; demands degenerate"
        )
    return BuzenResult(demands=rho, constants=constants, fixed_rate=fixed_rate)


def _convolve_constants(
    rho: np.ndarray,
    population: int,
    coefficient_vectors: Sequence[Optional[np.ndarray]],
) -> "tuple[np.ndarray, np.ndarray]":
    """One convolution pass; returns (constants, fixed_rate mask).

    Overflow is expected on the probing pass (it triggers the rescaled
    retry), so numpy's overflow warnings are silenced here; the caller
    judges the result via :func:`_constants_degenerate` instead.
    """
    num_stations = rho.shape[0]
    constants = np.zeros(population + 1)
    constants[0] = 1.0
    fixed_rate = np.zeros(num_stations, dtype=bool)
    with np.errstate(over="ignore", invalid="ignore"):
        for n in range(num_stations):
            coeffs = coefficient_vectors[n]
            if coeffs is None:
                fixed_rate[n] = True
                # In-place fixed-rate recurrence g(k) += rho * g(k-1).
                for k in range(1, population + 1):
                    constants[k] = constants[k] + rho[n] * constants[k - 1]
            else:
                coeffs = np.asarray(coeffs, dtype=float)
                if coeffs.shape[0] < population + 1:
                    raise ModelError(
                        f"station {n}: need {population + 1} capacity "
                        f"coefficients, got {coeffs.shape[0]}"
                    )
                station_terms = (
                    coeffs[: population + 1] * rho[n] ** np.arange(population + 1)
                )
                constants = np.convolve(constants, station_terms)[: population + 1]
    return constants, fixed_rate


def _constants_degenerate(constants: np.ndarray, population: int) -> bool:
    """True when the constants overflowed or the top one vanished."""
    return not np.all(np.isfinite(constants)) or constants[population] <= 0


def buzen_stations(
    demands: Sequence[float], population: int, stations: Sequence[Station]
) -> BuzenResult:
    """Buzen's algorithm with coefficients derived from :class:`Station` s."""
    vectors = []
    for station in stations:
        if (
            station.servers == 1
            and station.rate_multipliers is None
            and not station.is_delay
        ):
            vectors.append(None)
        else:
            vectors.append(capacity_coefficients(station, population))
    return buzen(demands, population, vectors)
