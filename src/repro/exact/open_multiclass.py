"""Multiclass open product-form networks (thesis §3.3.2, eqs. 3.3–3.12).

The generalisation of Jackson's theorem to ``R`` customer classes: with
class-``r`` Poisson streams of rate ``lambda_r`` over fixed routes, each
fixed-rate station ``n`` sees per-class utilisations
``rho_nr = lambda_r * demand_nr`` and behaves like an independent
multiclass M/M/1:

    N_nr = rho_nr / (1 - rho_n),    rho_n = sum_r rho_nr

(the p.g.f. of eq. 3.12 evaluated at the linear workload combination of
eq. 3.11).  IS stations give ``N_nr = rho_nr`` (Poisson law, Table 3.7).

This is the *uncontrolled* view of a window-flow-controlled network — the
model the windows protect against (its delays diverge as any ``rho_n``
approaches 1, which is precisely Fig. 2.1's congestion wall).  The
functions below also return per-class end-to-end delays so examples can
contrast open (no-control) and closed (windowed) predictions directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ModelError, StabilityError
from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficClass
from repro.queueing.station import Discipline, Station

__all__ = ["OpenMulticlassResult", "solve_open_multiclass", "open_view_of_network"]


@dataclass(frozen=True)
class OpenMulticlassResult:
    """Steady state of a multiclass open product-form network.

    Attributes
    ----------
    station_names:
        Station labels, index-aligned with the arrays below.
    utilizations:
        ``(L,)`` total utilisation ``rho_n`` per station.
    queue_lengths:
        ``(R, L)`` mean class-``r`` customers at station ``n``.
    class_delays:
        ``(R,)`` mean end-to-end sojourn time per class (Little).
    arrival_rates:
        ``(R,)`` class arrival rates.
    """

    station_names: Tuple[str, ...]
    utilizations: np.ndarray
    queue_lengths: np.ndarray
    class_delays: np.ndarray
    arrival_rates: np.ndarray

    @property
    def network_throughput(self) -> float:
        """Total carried rate (equals total offered rate when stable)."""
        return float(self.arrival_rates.sum())

    @property
    def mean_network_delay(self) -> float:
        """Throughput-weighted mean end-to-end delay."""
        total = self.network_throughput
        if total <= 0:
            return 0.0
        return float(np.dot(self.arrival_rates, self.class_delays) / total)

    @property
    def power(self) -> float:
        """Open-network power ``lambda / T``."""
        delay = self.mean_network_delay
        if delay <= 0:
            return 0.0
        return self.network_throughput / delay


def solve_open_multiclass(
    station_names: Sequence[str],
    stations: Sequence[Station],
    demands: np.ndarray,
    arrival_rates: Sequence[float],
) -> OpenMulticlassResult:
    """Solve a multiclass open network over fixed routes.

    Parameters
    ----------
    station_names / stations:
        The stations (fixed-rate single-server or IS).
    demands:
        ``(R, L)`` — total mean service demand of one class-``r`` customer
        at station ``n`` over its route (zero off-route).
    arrival_rates:
        ``(R,)`` class Poisson rates.

    Raises
    ------
    StabilityError
        If any queueing station has ``rho_n >= 1`` (thesis §3.2.5).
    """
    demand_arr = np.asarray(demands, dtype=float)
    rates = np.asarray(arrival_rates, dtype=float)
    if demand_arr.ndim != 2:
        raise ModelError("demands must be a (classes, stations) matrix")
    if rates.shape != (demand_arr.shape[0],):
        raise ModelError("arrival_rates length must match the demand rows")
    if len(stations) != demand_arr.shape[1]:
        raise ModelError("stations length must match the demand columns")
    if np.any(rates <= 0):
        raise ModelError("class arrival rates must be positive")
    if np.any(demand_arr < 0):
        raise ModelError("demands must be non-negative")

    rho = rates[:, None] * demand_arr  # (R, L)
    rho_total = rho.sum(axis=0)
    delay_mask = np.asarray(
        [s.discipline is Discipline.IS for s in stations], dtype=bool
    )
    for n, station in enumerate(stations):
        if delay_mask[n]:
            continue
        if station.servers != 1 or station.rate_multipliers is not None:
            raise ModelError(
                "solve_open_multiclass supports fixed-rate single-server "
                "and IS stations"
            )
        if rho_total[n] >= 1.0:
            raise StabilityError(
                f"station {station_names[n]!r} unstable: rho = {rho_total[n]:.3f}"
            )

    queue_lengths = np.where(
        delay_mask[None, :], rho, rho / (1.0 - rho_total[None, :])
    )
    class_delays = np.zeros(rates.shape[0])
    for r in range(rates.shape[0]):
        class_delays[r] = queue_lengths[r].sum() / rates[r]

    return OpenMulticlassResult(
        station_names=tuple(station_names),
        utilizations=rho_total,
        queue_lengths=queue_lengths,
        class_delays=class_delays,
        arrival_rates=rates,
    )


def open_view_of_network(
    topology: Topology, classes: Sequence[TrafficClass]
) -> OpenMulticlassResult:
    """The no-flow-control (open) prediction for a message-switched network.

    Builds the same channel queues as
    :func:`repro.netmodel.builder.build_closed_network` but *without*
    windows or source queues, and solves the multiclass open model —
    the uncontrolled baseline against which windowed operation is judged.
    """
    if not classes:
        raise ModelError("need at least one traffic class")
    station_names: list = []
    index = {}
    rows = []
    for traffic_class in classes:
        channels = topology.path_channels(traffic_class.path)
        row = {}
        for (from_node, to_node), channel in zip(
            zip(traffic_class.path, traffic_class.path[1:]), channels
        ):
            queue = channel.queue_name(from_node, to_node)
            if queue not in index:
                index[queue] = len(station_names)
                station_names.append(queue)
            row[queue] = row.get(queue, 0.0) + channel.service_time(
                traffic_class.mean_message_bits
            )
        rows.append(row)

    demands = np.zeros((len(classes), len(station_names)))
    for r, row in enumerate(rows):
        for queue, demand in row.items():
            demands[r, index[queue]] = demand
    stations = [Station.fcfs(name) for name in station_names]
    rates = [traffic_class.arrival_rate for traffic_class in classes]
    return solve_open_multiclass(station_names, stations, demands, rates)
