"""Gordon–Newell single-chain closed networks (thesis §3.3.3).

A thin solver wrapper: a :class:`~repro.queueing.network.ClosedNetwork`
with exactly one chain is solved exactly through Buzen's convolution
(:mod:`repro.exact.buzen`), producing the same
:class:`~repro.solution.NetworkSolution` record as every other solver.
This covers networks with fixed-rate, multi-server, queue-dependent and
infinite-server stations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SolverError
from repro.exact.buzen import buzen_stations
from repro.queueing.network import ClosedNetwork
from repro.queueing.station import Discipline
from repro.solution import NetworkSolution

__all__ = ["solve_gordon_newell"]


def solve_gordon_newell(network: ClosedNetwork) -> NetworkSolution:
    """Exactly solve a single-chain closed network.

    Raises
    ------
    SolverError
        If the network has more than one chain (use convolution or exact
        MVA instead).
    """
    if network.num_chains != 1:
        raise SolverError(
            f"Gordon–Newell solver requires exactly one chain, got {network.num_chains}"
        )
    population = int(network.populations[0])
    demands = network.demands[0]
    # Rescale to protect against overflow at large populations.
    peak = demands.max()
    scale = peak if peak > 0 else 1.0
    result = buzen_stations(demands / scale, population, network.stations)

    throughput = result.throughput() / scale
    num_stations = network.num_stations
    queue_lengths = np.zeros((1, num_stations))
    for n, station in enumerate(network.stations):
        if station.discipline is Discipline.IS:
            # Delay station: N = demand * throughput (no queueing).
            queue_lengths[0, n] = demands[n] * throughput
        elif (
            station.servers == 1
            and station.rate_multipliers is None
        ):
            queue_lengths[0, n] = result.mean_queue_length(n)
        else:
            queue_lengths[0, n] = _general_station_queue_length(
                result, network, n, population, scale
            )

    waiting = np.zeros_like(queue_lengths)
    if throughput > 0:
        waiting[0] = queue_lengths[0] / throughput

    return NetworkSolution(
        network=network,
        throughputs=np.asarray([throughput]),
        queue_lengths=queue_lengths,
        waiting_times=waiting,
        method="gordon-newell",
        iterations=0,
        converged=True,
        extras={"normalization_constant": float(result.constants[population])},
    )


def _general_station_queue_length(
    result, network: ClosedNetwork, station: int, population: int, scale: float
) -> float:
    """Mean queue length at a general station via the complement network.

    ``P(h_n = k) = a_n(k) rho_n^k g_(n-)(D - k) / G(D)`` where ``g_(n-)``
    is the normalisation sequence of the network with station ``n``
    removed (thesis §3.3.3 (iii)).
    """
    from repro.exact.buzen import buzen_stations as _buzen

    others = [s for i, s in enumerate(network.stations) if i != station]
    other_demands = np.delete(network.demands[0], station) / scale
    complement = _buzen(other_demands, population, others)

    from repro.queueing.capacity import capacity_coefficients

    coeffs = capacity_coefficients(network.stations[station], population)
    rho = network.demands[0, station] / scale
    total = 0.0
    g_target = result.constants[population]
    for k in range(population + 1):
        prob = coeffs[k] * (rho**k) * complement.constants[population - k] / g_target
        total += k * prob
    return total
