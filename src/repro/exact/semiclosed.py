"""Semiclosed chains (thesis §3.3.3, the Georganas extension).

A chain is *semiclosed* with parameters ``H- <= h <= H+`` when:

* at ``h = H-`` a departing customer is immediately replaced,
* for ``H- < h < H+`` customers arrive as a Poisson stream of rate
  ``lambda``,
* at ``h = H+`` arrivals stop.

This generalises both the closed chain (``H- = H+``) and a window-limited
open chain (``H- = 0``, ``H+ = window``): the latter is exactly the
end-to-end flow-control model with an *open* source instead of the
reentrant source queue, so the semiclosed solver provides an independent
product-form treatment of window flow control.

For a single semiclosed chain over product-form stations, the total
population is a birth-death process whose conditional state given
``h = m`` is the closed network of population ``m``; the population
marginal is

    P(h = m) ∝ lambda^m g(m),     H- <= m <= H+

with ``g(m)`` the Buzen normalisation constants.  All measures follow by
conditioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ModelError
from repro.exact.buzen import buzen

__all__ = ["SemiclosedResult", "solve_semiclosed"]


@dataclass(frozen=True)
class SemiclosedResult:
    """Steady state of a single semiclosed chain.

    Attributes
    ----------
    population_pmf:
        ``P(h = m)`` for ``m = 0..H+`` (zero below ``H-``).
    acceptance_probability:
        ``P(h < H+)`` — the probability an arriving customer is admitted.
    effective_arrival_rate:
        ``lambda * P(h < H+)`` (equals the departure throughput at
        stationarity when ``H- = 0``).
    mean_population:
        ``E[h]``.
    mean_queue_lengths:
        ``(L,)`` per-station stationary means.
    throughput:
        Stationary service completion rate of the chain through its
        reference cycle.
    """

    population_pmf: np.ndarray
    acceptance_probability: float
    effective_arrival_rate: float
    mean_population: float
    mean_queue_lengths: np.ndarray
    throughput: float

    @property
    def mean_delay(self) -> float:
        """Mean time in network by Little's law."""
        if self.throughput <= 0:
            return float("inf")
        return self.mean_population / self.throughput


def solve_semiclosed(
    demands: Sequence[float],
    arrival_rate: float,
    h_min: int,
    h_max: int,
) -> SemiclosedResult:
    """Solve a single semiclosed chain over fixed-rate stations.

    Parameters
    ----------
    demands:
        Per-station service demands of the chain (seconds per visit).
    arrival_rate:
        Poisson arrival rate ``lambda`` (active while ``h < H+``).
    h_min / h_max:
        The population bounds ``H- <= h <= H+``.

    Notes
    -----
    With ``h_min = 0`` this is the window-flow-controlled open chain: the
    window is ``h_max`` and blocked arrivals are lost/throttled (the
    acceptance probability quantifies the throttling).  With
    ``h_min = h_max`` it degenerates to the Gordon–Newell closed chain.
    """
    demand_arr = np.asarray(demands, dtype=float)
    if demand_arr.ndim != 1 or demand_arr.size == 0:
        raise ModelError("demands must be a non-empty vector")
    if np.any(demand_arr < 0) or demand_arr.max() <= 0:
        raise ModelError("demands must be non-negative with positive total")
    if arrival_rate <= 0:
        raise ModelError(f"arrival rate must be positive, got {arrival_rate}")
    if not 0 <= h_min <= h_max:
        raise ModelError(f"need 0 <= H- <= H+, got ({h_min}, {h_max})")
    if h_max == 0:
        raise ModelError("H+ = 0 leaves no feasible customers")

    # Buzen constants with demand scaling for numerical safety.
    scale = demand_arr.max()
    result = buzen(demand_arr / scale, h_max)
    constants = result.constants  # g'(m) with rho' = rho/scale

    # P(h = m) ∝ lambda^m g(m); in scaled terms g(m) = g'(m) scale^m, so
    # weight(m) = (lambda * scale)^m g'(m).
    weights = np.zeros(h_max + 1)
    factor = arrival_rate * scale
    for m in range(h_min, h_max + 1):
        weights[m] = factor**m * constants[m]
    mass = weights.sum()
    if mass <= 0 or not np.isfinite(mass):
        raise ModelError("population weights degenerate; rescale the inputs")
    pmf = weights / mass

    # Partial sums of a normalised pmf can overshoot 1.0 by ~1 ulp.
    acceptance = min(1.0, float(pmf[:h_max].sum()))
    mean_population = float(np.dot(np.arange(h_max + 1), pmf))

    # Condition per-station means and throughput on the population.
    num_stations = demand_arr.size
    mean_queues = np.zeros(num_stations)
    throughput = 0.0
    for m in range(h_min, h_max + 1):
        if pmf[m] == 0:
            continue
        lam_m = result.throughput(m) / scale
        throughput += pmf[m] * lam_m
        for n in range(num_stations):
            mean_queues[n] += pmf[m] * result.mean_queue_length(n, m)

    return SemiclosedResult(
        population_pmf=pmf,
        acceptance_probability=acceptance,
        effective_arrival_rate=arrival_rate * acceptance,
        mean_population=mean_population,
        mean_queue_lengths=mean_queues,
        throughput=float(throughput),
    )
