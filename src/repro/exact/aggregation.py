"""Norton aggregation (flow-equivalent server method).

Chandy–Herzog–Woo's theorem: in a product-form closed network, any
subnetwork can be replaced by a single *flow-equivalent* station whose
queue-dependent service rates equal the subnetwork's throughput with
``k`` customers circulating in it (computed by shorting the rest of the
network).  The reduced network is exactly equivalent for the remaining
stations' statistics.

This is the classical tool for analysing large networks hierarchically,
and it exercises the queue-dependent-station machinery of
:mod:`repro.queueing.capacity` and :mod:`repro.exact.buzen` end to end:
the single-chain tests verify that aggregating part of a cycle leaves the
chain throughput bit-for-bit unchanged.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ModelError, SolverError
from repro.exact.buzen import buzen_stations
from repro.queueing.chain import ClosedChain
from repro.queueing.network import ClosedNetwork
from repro.queueing.station import Station

__all__ = ["flow_equivalent_rates", "aggregate_single_chain"]


def flow_equivalent_rates(
    network: ClosedNetwork, stations: Sequence[str], max_population: int
) -> np.ndarray:
    """Throughput of the shorted subnetwork for populations ``1..max``.

    The subnetwork consisting of ``stations`` is isolated: customers
    leaving it re-enter immediately (the rest of the chain is shorted to
    zero service time).  ``rates[k-1]`` is its cycle throughput with ``k``
    circulating customers — the service rate the flow-equivalent station
    must exhibit with ``k`` customers present.

    Currently supports single-chain networks (the hierarchical multichain
    variant reduces to repeated single-chain applications).
    """
    if network.num_chains != 1:
        raise SolverError("flow-equivalent aggregation implemented for one chain")
    if max_population < 1:
        raise ModelError("max_population must be >= 1")
    wanted = set(stations)
    unknown = wanted - set(network.station_names)
    if unknown:
        raise ModelError(f"unknown stations in subnetwork: {sorted(unknown)}")
    indices = [network.station_id(name) for name in stations]
    demands = network.demands[0, indices]
    if demands.sum() <= 0:
        raise ModelError("subnetwork has zero total demand for the chain")
    station_objs = [network.stations[i] for i in indices]

    scale = demands.max()
    result = buzen_stations(demands / scale, max_population, station_objs)
    rates = np.array(
        [result.throughput(k) / scale for k in range(1, max_population + 1)]
    )
    return rates


def aggregate_single_chain(
    network: ClosedNetwork, stations: Sequence[str], aggregate_name: str = "fes"
) -> ClosedNetwork:
    """Replace ``stations`` of a single-chain network by one equivalent station.

    Returns a new network in which the listed stations are replaced by a
    queue-dependent station whose rate multipliers realise the
    flow-equivalent throughputs.  The remaining stations keep their
    demands; the new station gets unit demand with rate multipliers
    ``m(k) = rate(k) (in cycles/s) * 1 s`` — i.e. its service *time* at
    queue length ``k`` is ``1 / rate(k)``.

    The composite network's throughput and the kept stations' queue
    lengths equal the original's (Norton's theorem); the aggregation tests
    assert this against Buzen on both forms.
    """
    if network.num_chains != 1:
        raise SolverError("aggregation implemented for single-chain networks")
    chain = network.chains[0]
    population = int(network.populations[0])
    if population < 1:
        raise ModelError("aggregation needs a positive chain population")
    wanted = set(stations)
    if aggregate_name in set(network.station_names) - wanted:
        raise ModelError(f"aggregate name {aggregate_name!r} collides")
    if not wanted:
        raise ModelError("subnetwork must contain at least one station")

    rates = flow_equivalent_rates(network, sorted(wanted), population)
    # Queue-dependent station: unit work rate with multipliers m(k) such
    # that the service rate with k present is rates[k-1] per second.
    multipliers = tuple(float(r) for r in rates)
    fes = Station(
        name=aggregate_name,
        servers=1,
        rate_multipliers=multipliers,
    )

    kept_stations = [s for s in network.stations if s.name not in wanted]
    new_stations = kept_stations + [fes]

    # Rebuild the chain: kept visits in order, plus one visit to the FES
    # with unit demand (its capacity function encodes the real rates).
    new_visits = []
    new_services = []
    inserted = False
    for visited, service in zip(chain.visits, chain.service_times):
        if visited in wanted:
            if not inserted:
                new_visits.append(aggregate_name)
                new_services.append(1.0)
                inserted = True
            continue
        new_visits.append(visited)
        new_services.append(service)
    if not inserted:
        raise ModelError("chain never visits the aggregated subnetwork")

    source = chain.source_station
    if source in wanted:
        source = None
    new_chain = ClosedChain(
        name=chain.name,
        visits=tuple(new_visits),
        service_times=tuple(new_services),
        population=population,
        source_station=source,
    )
    return ClosedNetwork.build(new_stations, [new_chain])
