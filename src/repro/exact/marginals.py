"""Exact marginal queue-length distributions for multichain networks.

Thesis §3.3.3 (iii): quantities beyond means — marginal queue-size
distributions — require the complement normalisation constants
``g_(n-)``, the inverse of ``G_(n-)(z) = prod_{i != n} C_i(r_i . z)``.
For a fixed-rate station the complement array follows from the full array
by *deconvolution* of eq. (3.30):

    g_(n-)(i) = g(i) - sum_w rho_nw g_(n-)(i - u_w)

The marginal law of station ``n`` holding the per-chain composition
``m`` then reads (product form):

    P(h_n = m) = f_n(m) * g_(n-)(H - m) / g(H),
    f_n(m) = |m|! prod_w rho_nw^{m_w} / m_w!

and the total-count marginal ``P(|h_n| = k)`` sums this over ``|m| = k``.
These distributions connect window dimensioning to buffer provisioning:
§2.3 warns that windows exceeding nodal storage render the control
ineffective, and :mod:`repro.analysis.buffers` turns the tail
probabilities computed here into buffer recommendations.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.errors import SolverError
from repro.exact.convolution import normalization_constants
from repro.exact.states import population_vectors
from repro.queueing.network import ClosedNetwork
from repro.queueing.station import Discipline

__all__ = [
    "complement_constants",
    "station_composition_distribution",
    "station_queue_distribution",
]


def complement_constants(
    network: ClosedNetwork,
    station: int,
    g: Optional[np.ndarray] = None,
    scale: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Normalisation lattice of the network with ``station`` removed.

    Parameters
    ----------
    network:
        Closed multichain network (fixed-rate / IS stations).
    station:
        Index of the fixed-rate station to remove.
    g / scale:
        Optionally reuse a lattice from
        :func:`repro.exact.convolution.normalization_constants`.

    Returns
    -------
    (g_minus, scale):
        Complement lattice (same shape as ``g``) and the per-chain demand
        scaling used.
    """
    if network.stations[station].discipline is Discipline.IS:
        raise SolverError(
            "complement constants via deconvolution require a fixed-rate "
            "station; IS stations have no queueing distribution of interest"
        )
    if g is None or scale is None:
        g, scale = normalization_constants(network)
    scaled_demands = network.demands[:, station] / scale

    # Invert the fixed-rate recurrence g(i) = g_(n-)(i) + sum_w rho_w g(i-u_w):
    # the subtraction uses the *full* lattice at the predecessors.
    g_minus = np.zeros_like(g)
    it = np.nditer(g, flags=["multi_index"])
    for cell in it:
        index = it.multi_index
        value = float(cell)
        for w in range(network.num_chains):
            if index[w] > 0:
                predecessor = list(index)
                predecessor[w] -= 1
                value -= scaled_demands[w] * g[tuple(predecessor)]
        g_minus[index] = value
    if np.any(g_minus < -1e-6 * g.max()):
        raise SolverError(
            "deconvolution produced significantly negative complement "
            "constants; the lattice is numerically degenerate"
        )
    return np.clip(g_minus, 0.0, None), scale


def station_composition_distribution(
    network: ClosedNetwork, station: int
) -> dict:
    """Joint pmf of the per-chain customer counts at a fixed-rate station.

    Returns
    -------
    dict
        Mapping composition tuples ``m`` (one count per chain) to their
        stationary probability ``P(h_station = m)``.
    """
    g, scale = normalization_constants(network)
    g_minus, _ = complement_constants(network, station, g, scale)
    limits = tuple(int(p) for p in network.populations)
    target = limits
    g_target = g[target]
    scaled_demands = network.demands[:, station] / scale

    pmf = {}
    for m in population_vectors(limits):
        total = sum(m)
        weight = math.factorial(total)
        for w, count in enumerate(m):
            weight *= scaled_demands[w] ** count / math.factorial(count)
        remainder = tuple(h - k for h, k in zip(target, m))
        pmf[m] = weight * g_minus[remainder] / g_target
    # Guard: probabilities must sum to one.
    mass = sum(pmf.values())
    if not math.isclose(mass, 1.0, rel_tol=1e-6):
        raise SolverError(
            f"composition distribution mass {mass} != 1; numerical failure"
        )
    return {m: p / mass for m, p in pmf.items()}


def station_queue_distribution(
    network: ClosedNetwork, station: int
) -> np.ndarray:
    """Total-count marginal pmf ``P(|h_station| = k)`` of a fixed-rate station.

    The result has length ``total_population + 1``.
    """
    composition = station_composition_distribution(network, station)
    total = network.total_population()
    pmf = np.zeros(total + 1)
    for m, p in composition.items():
        pmf[sum(m)] += p
    return pmf
