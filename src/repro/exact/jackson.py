"""Open Jackson networks (thesis §3.3.2).

Each station of a stable open Markovian network behaves as an independent
M/M/m queue fed at the aggregate rate solving the traffic equations
(eq. 3.1); the joint queue-length law is the product of the marginals
(eq. 3.2).  This module solves the traffic equations, checks stability,
and reports the standard per-station and network measures.

The open model is what the WINDIM networks look like *before* the windows
close the chains; it also supplies the saturation analysis used to sanity
check simulator and MVA outputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError, StabilityError
from repro.queueing.routing import open_chain_arrival_rates

__all__ = ["OpenStationResult", "OpenNetworkResult", "solve_jackson"]


@dataclass(frozen=True)
class OpenStationResult:
    """Steady-state measures of one M/M/m station in an open network."""

    arrival_rate: float
    service_rate: float
    servers: int
    utilization: float
    mean_queue_length: float
    mean_sojourn_time: float

    @property
    def mean_waiting_time(self) -> float:
        """Mean time in queue excluding service."""
        return self.mean_sojourn_time - 1.0 / self.service_rate


@dataclass(frozen=True)
class OpenNetworkResult:
    """Network-wide measures of an open Jackson network."""

    stations: Tuple[OpenStationResult, ...]
    arrival_rates: np.ndarray
    total_external_rate: float

    @property
    def mean_customers(self) -> float:
        """Total mean number of customers in the network."""
        return sum(s.mean_queue_length for s in self.stations)

    @property
    def mean_network_delay(self) -> float:
        """Mean end-to-end sojourn time by Little's law."""
        if self.total_external_rate <= 0:
            return 0.0
        return self.mean_customers / self.total_external_rate


def _mmm_queue_length(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Mean number in system of an M/M/m queue (Erlang-C based)."""
    if servers < 1:
        raise ModelError("servers must be >= 1")
    offered = arrival_rate / service_rate
    rho = offered / servers
    if rho >= 1.0:
        raise StabilityError(
            f"M/M/{servers} queue unstable: utilisation {rho:.3f} >= 1"
        )
    if servers == 1:
        return rho / (1.0 - rho)
    # Erlang-C probability of queueing.
    terms = [offered**k / math.factorial(k) for k in range(servers)]
    tail = offered**servers / (math.factorial(servers) * (1.0 - rho))
    p_wait = tail / (sum(terms) + tail)
    return offered + p_wait * rho / (1.0 - rho)


def solve_jackson(
    routing: np.ndarray,
    external_rates: Sequence[float],
    service_rates: Sequence[float],
    servers: Optional[Sequence[int]] = None,
) -> OpenNetworkResult:
    """Solve an open Jackson network.

    Parameters
    ----------
    routing:
        ``(N, N)`` sub-stochastic routing matrix (rows may sum to < 1; the
        deficit is the departure probability).
    external_rates:
        Exogenous Poisson rate ``gamma_i`` at each station.
    service_rates:
        Per-server exponential service rate ``mu_i`` at each station.
    servers:
        Servers per station (default all 1).

    Raises
    ------
    StabilityError
        If any station's utilisation reaches 1 (thesis §3.2.5).
    """
    rates = open_chain_arrival_rates(routing, external_rates)
    mu = np.asarray(service_rates, dtype=float)
    if mu.shape != rates.shape:
        raise ModelError("service_rates length must match the routing matrix")
    if np.any(mu <= 0):
        raise ModelError("service rates must be positive")
    if servers is None:
        server_counts = [1] * rates.shape[0]
    else:
        server_counts = [int(m) for m in servers]
        if len(server_counts) != rates.shape[0]:
            raise ModelError("servers length must match the routing matrix")

    stations = []
    for i in range(rates.shape[0]):
        lam = float(rates[i])
        n_mean = _mmm_queue_length(lam, float(mu[i]), server_counts[i]) if lam > 0 else 0.0
        sojourn = n_mean / lam if lam > 0 else 0.0
        stations.append(
            OpenStationResult(
                arrival_rate=lam,
                service_rate=float(mu[i]),
                servers=server_counts[i],
                utilization=lam / (mu[i] * server_counts[i]),
                mean_queue_length=n_mean,
                mean_sojourn_time=sojourn,
            )
        )
    return OpenNetworkResult(
        stations=tuple(stations),
        arrival_rates=rates,
        total_external_rate=float(np.sum(external_rates)),
    )
