"""Exact solution methods for product-form queueing networks (Chapter 3).

* :func:`~repro.exact.ctmc.solve_ctmc` — brute-force global balance
  (ground truth for tiny networks).
* :func:`~repro.exact.buzen.buzen` — single-chain convolution constants.
* :func:`~repro.exact.gordon_newell.solve_gordon_newell` — single-chain
  closed networks.
* :func:`~repro.exact.convolution.solve_convolution` — multichain
  convolution (Reiser–Kobayashi).
* :func:`~repro.exact.mva_exact.solve_mva_exact` — exact multichain MVA.
* :func:`~repro.exact.jackson.solve_jackson` — open Jackson networks.
* :func:`~repro.exact.mixed.solve_mixed` — mixed open/closed networks.
"""

from repro.exact.aggregation import aggregate_single_chain, flow_equivalent_rates
from repro.exact.buzen import BuzenResult, buzen, buzen_stations
from repro.exact.convolution import normalization_constants, solve_convolution
from repro.exact.ctmc import solve_ctmc
from repro.exact.finite_buffer import FiniteQueueResult, solve_mmmk
from repro.exact.gordon_newell import solve_gordon_newell
from repro.exact.jackson import OpenNetworkResult, OpenStationResult, solve_jackson
from repro.exact.marginals import (
    complement_constants,
    station_composition_distribution,
    station_queue_distribution,
)
from repro.exact.mixed import MixedNetworkResult, solve_mixed
from repro.exact.mva_exact import solve_mva_exact
from repro.exact.open_multiclass import (
    OpenMulticlassResult,
    open_view_of_network,
    solve_open_multiclass,
)
from repro.exact.semiclosed import SemiclosedResult, solve_semiclosed
from repro.exact.states import (
    compositions,
    lattice_size,
    population_vectors,
    population_vectors_by_total,
)

__all__ = [
    "aggregate_single_chain",
    "flow_equivalent_rates",
    "buzen",
    "buzen_stations",
    "BuzenResult",
    "solve_convolution",
    "normalization_constants",
    "solve_ctmc",
    "solve_mmmk",
    "FiniteQueueResult",
    "solve_gordon_newell",
    "solve_jackson",
    "OpenNetworkResult",
    "OpenStationResult",
    "solve_mixed",
    "MixedNetworkResult",
    "solve_mva_exact",
    "solve_semiclosed",
    "SemiclosedResult",
    "solve_open_multiclass",
    "open_view_of_network",
    "OpenMulticlassResult",
    "complement_constants",
    "station_composition_distribution",
    "station_queue_distribution",
    "compositions",
    "lattice_size",
    "population_vectors",
    "population_vectors_by_total",
]
