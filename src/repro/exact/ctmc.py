"""Brute-force global-balance (CTMC) solver for small closed networks.

The ground truth of this reproduction: build the continuous-time Markov
chain of a closed multichain network explicitly, solve the balance
equations ``pi Q = 0`` (thesis §3.3.1), and read off throughputs and mean
queue lengths.  Exponential service, fixed-rate FCFS single-server and
infinite-server stations.

The state records, for every chain, how many of its customers sit at each
*position* along its cyclic route.  For FCFS stations shared by several
chains the per-visit service times must be equal (the product-form
requirement, enforced by :class:`~repro.queueing.network.ClosedNetwork`);
the class completing service is then distributed proportionally to class
counts, which yields the exact stationary queue-length law of the FCFS
system.

State spaces explode combinatorially — the solver refuses networks beyond
``MAX_STATES`` states and exists purely to validate the product-form
algorithms on tiny instances.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ModelError, SolverError
from repro.exact.states import compositions
from repro.queueing.network import ClosedNetwork
from repro.queueing.station import Discipline
from repro.solution import NetworkSolution

__all__ = ["solve_ctmc"]

MAX_STATES = 200_000

State = Tuple[Tuple[int, ...], ...]


def _enumerate_states(route_lengths: List[int], populations: List[int]) -> List[State]:
    # Guard on the closed-form count BEFORE materialising anything: the
    # number of placements of D customers over p positions is
    # C(D + p - 1, p - 1), which explodes combinatorially.
    total = 1
    for r in range(len(populations)):
        count = math.comb(
            populations[r] + route_lengths[r] - 1, route_lengths[r] - 1
        )
        total *= count
        if total > MAX_STATES:
            raise SolverError(
                f"CTMC state space exceeds {MAX_STATES} states; "
                "this solver is for validation on tiny networks only"
            )
    per_chain = [
        list(compositions(populations[r], route_lengths[r]))
        for r in range(len(populations))
    ]
    return [tuple(combo) for combo in itertools.product(*per_chain)]


def solve_ctmc(network: ClosedNetwork) -> NetworkSolution:
    """Solve a small closed multichain network by global balance.

    Requirements: fixed-rate single-server FCFS (or IS) stations, and each
    chain's route must not revisit a station (counts per position would
    otherwise be ambiguous).

    Returns
    -------
    NetworkSolution
        With ``method="ctmc"``.
    """
    if not network.is_fixed_rate():
        raise SolverError("CTMC solver supports fixed-rate and IS stations only")

    routes: List[List[int]] = []
    services: List[List[float]] = []
    for chain in network.chains:
        station_ids = [network.station_id(v) for v in chain.visits]
        if len(set(station_ids)) != len(station_ids):
            raise SolverError(
                f"chain {chain.name!r} revisits a station; the CTMC state "
                "encoding requires distinct stations per route"
            )
        routes.append(station_ids)
        services.append(list(chain.service_times))

    populations = [int(p) for p in network.populations]
    route_lengths = [len(r) for r in routes]
    states = _enumerate_states(route_lengths, populations)
    index: Dict[State, int] = {s: i for i, s in enumerate(states)}
    num_states = len(states)
    num_chains = network.num_chains
    num_stations = network.num_stations
    delay_mask = [s.discipline is Discipline.IS for s in network.stations]

    generator = np.zeros((num_states, num_states))
    # completion_rate[s_idx][r] at reference position 0: used for throughput.
    completion_at_ref = np.zeros((num_states, num_chains))

    for s_idx, state in enumerate(states):
        station_totals = np.zeros(num_stations)
        for r in range(num_chains):
            for p, count in enumerate(state[r]):
                station_totals[routes[r][p]] += count
        for r in range(num_chains):
            for p, count in enumerate(state[r]):
                if count == 0:
                    continue
                station = routes[r][p]
                if delay_mask[station]:
                    rate = count / services[r][p]
                else:
                    # Single fixed-rate server: total completion rate is
                    # 1/service, split over classes by their share in queue.
                    rate = (count / station_totals[station]) / services[r][p]
                next_p = (p + 1) % route_lengths[r]
                new_chain = list(state[r])
                new_chain[p] -= 1
                new_chain[next_p] += 1
                new_state = tuple(
                    tuple(new_chain) if rr == r else state[rr]
                    for rr in range(num_chains)
                )
                t_idx = index[new_state]
                generator[s_idx, t_idx] += rate
                generator[s_idx, s_idx] -= rate
                if p == 0:
                    completion_at_ref[s_idx, r] += rate

    # Solve pi Q = 0 with sum(pi) = 1 by replacing one column.
    system = generator.T.copy()
    system[0, :] = 1.0
    rhs = np.zeros(num_states)
    rhs[0] = 1.0
    try:
        pi = np.linalg.solve(system, rhs)
    except np.linalg.LinAlgError as exc:
        raise SolverError("global balance equations are singular") from exc
    if np.any(pi < -1e-9):
        raise SolverError("stationary distribution has negative entries")
    pi = np.clip(pi, 0.0, None)
    pi = pi / pi.sum()

    throughputs = pi @ completion_at_ref
    queue_lengths = np.zeros((num_chains, num_stations))
    for s_idx, state in enumerate(states):
        weight = pi[s_idx]
        if weight == 0:
            continue
        for r in range(num_chains):
            for p, count in enumerate(state[r]):
                if count:
                    queue_lengths[r, routes[r][p]] += weight * count

    waiting = np.zeros_like(queue_lengths)
    for r in range(num_chains):
        if throughputs[r] > 0:
            waiting[r] = queue_lengths[r] / throughputs[r]

    return NetworkSolution(
        network=network,
        throughputs=np.asarray(throughputs, dtype=float),
        queue_lengths=queue_lengths,
        waiting_times=waiting,
        method="ctmc",
        iterations=0,
        converged=True,
        extras={"num_states": float(num_states)},
    )
