"""Exact Mean Value Analysis for closed multichain networks.

The exact multichain recursion (thesis eqs. 4.5–4.7):

    t_ir(D) = G_ir * (1 + sum_j N_ij(D - u_r))     (queueing stations)
    t_ir(D) = G_ir                                  (delay stations)
    lambda_r(D) = D_r / sum_i t_ir(D)
    N_ir(D) = lambda_r(D) * t_ir(D)

evaluated over *every* population vector ``0 <= d <= D`` in order of
increasing total population.  The operation count is
``O(R L prod_r (D_r + 1))`` — the intractability that motivates the
heuristic of §4.2 — but for the small windows of the thesis examples it is
perfectly feasible and serves as the reproduction's exact reference.

Two kernels implement the walk (see :mod:`repro.backend`):

``"scalar"``
    The reference: one population vector at a time, one chain at a time.
``"vectorized"`` (default)
    Level-batched: all vectors of one total population are gathered into
    dense ``(V, R, L)`` arrays and processed with a handful of batched
    NumPy operations (chunked so memory stays bounded).  Per (vector,
    chain) the floating-point operations match the scalar walk exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backend import is_dense, resolve_backend
from repro.errors import ModelError, SolverError
from repro.exact.states import lattice_size, population_vectors, population_vectors_by_total
from repro.queueing.network import ClosedNetwork
from repro.solution import NetworkSolution

__all__ = ["solve_mva_exact"]

#: Refuse lattices beyond this many population vectors — the caller almost
#: certainly wanted the heuristic instead.
MAX_LATTICE_SIZE = 5_000_000

#: Vectors per batch in the level-batched kernel; bounds peak memory at
#: roughly ``CHUNK * R * L`` floats per intermediate array.
_LEVEL_CHUNK = 8192


def solve_mva_exact(
    network: ClosedNetwork,
    backend: Optional[str] = None,
    lattice_cache: Optional["LatticeCache"] = None,
) -> NetworkSolution:
    """Solve a closed multichain network by exact MVA.

    Only fixed-rate single-server and infinite-server stations are
    supported (``network.is_fixed_rate()``), which covers the entire model
    class used in the thesis.

    Parameters
    ----------
    network:
        The closed network to solve.
    backend:
        ``"vectorized"`` (default) walks the population lattice one
        total-population level at a time on dense arrays; ``"scalar"``
        is the per-vector reference walk.  Both produce the same numbers
        to machine precision.
    lattice_cache:
        Optional :class:`~repro.exact.lattice_cache.LatticeCache`.  The
        vectorized kernel loads previously computed per-vector station
        totals from it and only recomputes missing lattice rows, making
        repeated solves on overlapping lattices (``E`` then ``E + e_r``)
        incremental; reuse is bit-exact.  The scalar reference kernel
        ignores it.

    Returns
    -------
    NetworkSolution
        With ``method="mva-exact"``.

    Raises
    ------
    SolverError
        If the population lattice exceeds ``MAX_LATTICE_SIZE`` vectors or
        the network has unsupported station types.
    """
    if not network.is_fixed_rate():
        raise SolverError(
            "exact MVA supports fixed-rate single-server and IS stations only"
        )
    limits = [int(p) for p in network.populations]
    size = lattice_size(limits)
    if size > MAX_LATTICE_SIZE:
        raise SolverError(
            f"population lattice has {size} vectors (> {MAX_LATTICE_SIZE}); "
            "use the MVA heuristic for problems of this size"
        )
    # "compiled" shares the dense path (see repro.mva.compiled).
    if is_dense(resolve_backend(backend)):
        return _solve_vectorized(network, limits, size, lattice_cache)
    return _solve_scalar(network, limits, size)


def _solve_scalar(
    network: ClosedNetwork, limits: List[int], size: int
) -> NetworkSolution:
    """Reference walk: one population vector and one chain at a time."""
    demands = network.demands
    num_chains, num_stations = demands.shape
    delay_mask = np.asarray([s.is_delay for s in network.stations], dtype=bool)
    visit_mask = network.visit_counts > 0

    # queue_totals maps a population vector to its (L,) total mean queue
    # length vector.  Only the previous total-population level is needed
    # to process the current one, so older levels are dropped as the walk
    # proceeds — memory is O(width of one level), not O(lattice).
    previous_level: Dict[Tuple[int, ...], np.ndarray] = {
        tuple([0] * num_chains): np.zeros(num_stations)
    }
    current_level: Dict[Tuple[int, ...], np.ndarray] = {}
    current_total = 0

    target = tuple(limits)
    final_wait = np.zeros((num_chains, num_stations))
    final_throughput = np.zeros(num_chains)
    final_queue = np.zeros((num_chains, num_stations))

    for vector in population_vectors_by_total(limits):
        total = sum(vector)
        if total == 0:
            continue
        if total != current_total:
            if current_total != 0:
                previous_level = current_level
            current_level = {}
            current_total = total
        waits = np.zeros((num_chains, num_stations))
        throughputs = np.zeros(num_chains)
        per_chain_queue = np.zeros((num_chains, num_stations))
        for r in range(num_chains):
            if vector[r] == 0:
                continue
            predecessor = list(vector)
            predecessor[r] -= 1
            seen = previous_level[tuple(predecessor)]
            wait_r = np.where(delay_mask, demands[r], demands[r] * (1.0 + seen))
            wait_r = np.where(visit_mask[r], wait_r, 0.0)
            cycle_time = wait_r.sum()
            if cycle_time <= 0:
                raise ModelError(
                    f"chain {network.chains[r].name!r} has zero total demand"
                )
            lam = vector[r] / cycle_time
            waits[r] = wait_r
            throughputs[r] = lam
            per_chain_queue[r] = lam * wait_r
        current_level[vector] = per_chain_queue.sum(axis=0)
        if vector == target:
            final_wait = waits
            final_throughput = throughputs
            final_queue = per_chain_queue

    return NetworkSolution(
        network=network,
        throughputs=final_throughput,
        queue_lengths=final_queue,
        waiting_times=final_wait,
        method="mva-exact",
        iterations=0,
        converged=True,
        extras={"lattice_size": float(size)},
    )


def _levels(limits: List[int]) -> List[List[Tuple[int, ...]]]:
    """Population vectors bucketed by total population (ascending)."""
    buckets: List[List[Tuple[int, ...]]] = [[] for _ in range(sum(limits) + 1)]
    for vector in population_vectors(limits):
        buckets[sum(vector)].append(vector)
    return buckets


def _solve_vectorized(
    network: ClosedNetwork,
    limits: List[int],
    size: int,
    lattice_cache=None,
) -> NetworkSolution:
    """Level-batched walk on dense ``(V, R, L)`` arrays.

    With a ``lattice_cache``, previously computed per-vector totals are
    loaded verbatim and only the missing rows of each level go through
    the batched recursion.  The per-(vector, chain) floating-point
    operations are elementwise, so computing a subset of a level in
    smaller batches produces bit-identical rows — reuse never changes
    the solution.  The target vector is always computed fresh (its
    waits/rates *are* the solution).
    """
    demands = network.demands
    num_chains, num_stations = demands.shape
    delay_mask = np.asarray([s.is_delay for s in network.stations], dtype=bool)
    visit_mask = network.visit_counts > 0
    if lattice_cache is not None:
        lattice_cache.bind(network)

    target = tuple(limits)
    final_wait = np.zeros((num_chains, num_stations))
    final_throughput = np.zeros(num_chains)
    final_queue = np.zeros((num_chains, num_stations))

    # Totals of the previous level as one dense array plus a vector->row
    # index; only two adjacent levels are ever alive.
    prev_rows: Dict[Tuple[int, ...], int] = {tuple([0] * num_chains): 0}
    prev_totals = np.zeros((1, num_stations))

    for level in _levels(limits)[1:]:
        num_vectors = len(level)
        level_rows = {vector: v for v, vector in enumerate(level)}
        totals = np.empty((num_vectors, num_stations))

        # Split the level into cache hits (loaded verbatim) and rows that
        # must be computed.  A fully cached level skips the predecessor
        # indexing and the batched math entirely.
        if lattice_cache is None:
            compute = list(range(num_vectors))
        else:
            compute = []
            for v, vector in enumerate(level):
                cached = None if vector == target else lattice_cache.get(vector)
                if cached is None:
                    compute.append(v)
                else:
                    totals[v] = cached

        if compute:
            vectors = np.asarray([level[v] for v in compute], dtype=np.int64)
            compute_arr = np.asarray(compute, dtype=np.int64)
            # Row of each predecessor d - u_r in the previous level's array.
            pred_rows = np.zeros((len(compute), num_chains), dtype=np.int64)
            for m, v in enumerate(compute):
                vector = level[v]
                row = pred_rows[m]
                for r in range(num_chains):
                    if vector[r] > 0:
                        predecessor = list(vector)
                        predecessor[r] -= 1
                        row[r] = prev_rows[tuple(predecessor)]
            valid = vectors > 0  # (M, R)
            target_pos = compute_arr.searchsorted(level_rows[target]) if target in level_rows else -1
            if target_pos >= 0 and not (
                target_pos < len(compute) and compute[target_pos] == level_rows[target]
            ):
                target_pos = -1

            for start in range(0, len(compute), _LEVEL_CHUNK):
                stop = min(start + _LEVEL_CHUNK, len(compute))
                seen = prev_totals[pred_rows[start:stop]]  # (C, R, L)
                wait = np.where(
                    delay_mask[None, None, :],
                    demands[None, :, :],
                    demands[None, :, :] * (1.0 + seen),
                )
                wait = np.where(visit_mask[None, :, :], wait, 0.0)
                chunk_valid = valid[start:stop]
                cycle = wait.sum(axis=2)  # (C, R)
                if np.any(chunk_valid & (cycle <= 0)):
                    bad = int(np.argwhere(chunk_valid & (cycle <= 0))[0][1])
                    raise ModelError(
                        f"chain {network.chains[bad].name!r} has zero total demand"
                    )
                rate = np.where(
                    chunk_valid,
                    vectors[start:stop] / np.where(cycle > 0, cycle, 1.0),
                    0.0,
                )
                queue = rate[:, :, None] * wait  # (C, R, L)
                totals[compute_arr[start:stop]] = queue.sum(axis=1)
                if start <= target_pos < stop:
                    t = target_pos - start
                    final_wait = np.where(valid[target_pos][:, None], wait[t], 0.0)
                    final_throughput = rate[t]
                    final_queue = queue[t]

            if lattice_cache is not None:
                for v in compute:
                    lattice_cache.put(level[v], totals[v].copy())
        prev_rows = level_rows
        prev_totals = totals

    return NetworkSolution(
        network=network,
        throughputs=final_throughput,
        queue_lengths=final_queue,
        waiting_times=final_wait,
        method="mva-exact",
        iterations=0,
        converged=True,
        extras={"lattice_size": float(size)},
    )
