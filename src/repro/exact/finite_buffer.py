"""Finite-buffer single queues: M/M/1/K and M/M/m/K.

The local flow control of §2.2.2 caps node storage at ``K_i``; the exact
analysis of *networks* of such queues is intractable (thesis Ch. 5: "the
exact modelling of the local flow control scheme is hitherto
unsuccessful"), but the single finite-buffer queue has elementary closed
forms used throughout as baselines:

    p(k) = p(0) a^k / prod_{j<=k} min(j, m),  k = 0..K
    blocking = p(K)  (PASTA), carried = lambda (1 - p(K))

For ``m = 1`` this is the classic M/M/1/K geometric truncation.  The
tests also cross-validate against :mod:`repro.exact.semiclosed`: an
M/M/1/K is exactly a single-station semiclosed chain with ``H+ = K``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError

__all__ = ["FiniteQueueResult", "solve_mmmk"]


@dataclass(frozen=True)
class FiniteQueueResult:
    """Steady state of an M/M/m/K queue.

    Attributes
    ----------
    distribution:
        ``p(0..K)`` — the stationary number-in-system pmf.
    blocking_probability:
        ``p(K)`` — fraction of arrivals lost (PASTA).
    carried_rate:
        ``lambda (1 - p(K))`` — accepted throughput.
    mean_customers:
        ``E[k]``.
    mean_sojourn_time:
        Mean time in system of *accepted* customers (Little on the
        carried rate).
    """

    distribution: np.ndarray
    blocking_probability: float
    carried_rate: float
    mean_customers: float
    mean_sojourn_time: float

    @property
    def buffer_size(self) -> int:
        """The system capacity ``K``."""
        return self.distribution.shape[0] - 1


def solve_mmmk(
    arrival_rate: float, service_rate: float, capacity: int, servers: int = 1
) -> FiniteQueueResult:
    """Solve an M/M/m/K queue exactly.

    Parameters
    ----------
    arrival_rate / service_rate:
        Poisson arrivals ``lambda``; per-server exponential rate ``mu``.
    capacity:
        Total system capacity ``K`` (queue + in service), ``K >= servers``.
    servers:
        Number of identical servers ``m``.
    """
    if arrival_rate <= 0:
        raise ModelError(f"arrival rate must be positive, got {arrival_rate}")
    if service_rate <= 0:
        raise ModelError(f"service rate must be positive, got {service_rate}")
    if servers < 1:
        raise ModelError(f"servers must be >= 1, got {servers}")
    if capacity < servers:
        raise ModelError(
            f"capacity ({capacity}) must be >= servers ({servers})"
        )

    offered = arrival_rate / service_rate
    weights = np.empty(capacity + 1)
    weights[0] = 1.0
    for k in range(1, capacity + 1):
        weights[k] = weights[k - 1] * offered / min(k, servers)
    distribution = weights / weights.sum()

    blocking = float(distribution[capacity])
    carried = arrival_rate * (1.0 - blocking)
    mean_customers = float(np.dot(np.arange(capacity + 1), distribution))
    sojourn = mean_customers / carried if carried > 0 else float("inf")
    return FiniteQueueResult(
        distribution=distribution,
        blocking_probability=blocking,
        carried_rate=carried,
        mean_customers=mean_customers,
        mean_sojourn_time=sojourn,
    )
