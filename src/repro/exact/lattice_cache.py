"""Sub-lattice memoisation for the exact multichain MVA walk.

The exact recursion's per-vector state — the ``(L,)`` vector of total
mean queue lengths ``N_i(d)`` — depends only on the population vector
``d`` and the network, **not** on the target population the walk was
started for.  The lattice of a target ``E`` is therefore a *prefix* of
the lattice of ``E + e_r``: every vector ``d <= E`` reappears with the
same totals, and the only genuinely new work for the grown target is the
face ``{d : d_r = E_r + 1}``.

:class:`LatticeCache` exploits this across calls: it maps population
vectors to their station totals and is consulted by the vectorized
kernel of :func:`repro.exact.mva_exact.solve_mva_exact` before each
level is computed.  Cached rows are loaded verbatim (they were produced
by the identical floating-point recursion on the same network, so reuse
is bit-exact); only missing rows are recomputed.  A WINDIM pattern
search asking for ``E``, ``E ± step·e_r``, … therefore pays for each
sub-lattice once instead of once per evaluation.

The cache binds itself to the first network it sees (a byte-level token
over demands, visit counts, and station types) and silently resets when
handed a different one — a stale cache can never poison another
instance's totals.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.queueing.network import ClosedNetwork

__all__ = ["LatticeCache"]

#: Default cap on stored population vectors (~200k vectors x L floats).
DEFAULT_MAX_VECTORS = 200_000


def _network_token(network: ClosedNetwork) -> Tuple:
    """Byte-level identity of everything the recursion's totals depend on."""
    return (
        network.demands.shape,
        network.demands.tobytes(),
        network.visit_counts.tobytes(),
        tuple(s.is_delay for s in network.stations),
    )


class LatticeCache:
    """Population-vector -> station-totals store for exact MVA.

    Parameters
    ----------
    max_vectors:
        Soft cap on the number of stored vectors.  Once reached, new
        totals are no longer inserted (existing entries keep serving
        hits); correctness never depends on an insert succeeding.
    """

    def __init__(self, max_vectors: int = DEFAULT_MAX_VECTORS) -> None:
        self.max_vectors = int(max_vectors)
        self._token: Optional[Tuple] = None
        self._totals: Dict[Tuple[int, ...], np.ndarray] = {}
        self.hits = 0
        self.computed = 0
        self.resets = 0

    def __len__(self) -> int:
        return len(self._totals)

    def bind(self, network: ClosedNetwork) -> None:
        """Attach to ``network``, resetting if it differs from the last one."""
        token = _network_token(network)
        if self._token is not None and self._token != token:
            self._totals.clear()
            self.resets += 1
        self._token = token

    def get(self, vector: Tuple[int, ...]) -> Optional[np.ndarray]:
        row = self._totals.get(vector)
        if row is not None:
            self.hits += 1
        return row

    def put(self, vector: Tuple[int, ...], totals: np.ndarray) -> None:
        self.computed += 1
        if len(self._totals) < self.max_vectors:
            self._totals[vector] = totals

    def stats(self) -> Dict[str, int]:
        return {
            "vectors": len(self._totals),
            "hits": self.hits,
            "computed": self.computed,
            "resets": self.resets,
        }
