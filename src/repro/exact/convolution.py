"""Multichain convolution algorithm (Reiser–Kobayashi; thesis §3.3.3).

Computes the normalisation constant array ``g(h)`` over the population
lattice ``0 <= h <= H`` by convolving station inverse capacity functions
(eq. 3.28):

* fixed-rate station ``n`` — in-place recurrence (eq. 3.30):
  ``g_n(i) = g_{n-1}(i) + sum_w rho_nw g_n(i - u_w)``
* infinite-server station ``n`` — full convolution with
  ``c_n(i) = prod_w rho_nw^{i_w} / i_w!`` (eq. 3.32 family).

From ``g`` the chain throughputs follow (eq. 3.34, visit-ratio form):

    lambda_w(H) = g(H - u_w) / g(H)

and fixed-rate per-chain mean queue lengths from eq. (3.36):

    N_nw(H) = rho_nw * g_(n+)(H - u_w) / g(H)

with ``g_(n+) = g * c_n`` (station ``n`` counted twice).  Demands are
rescaled internally per chain to keep ``g`` in floating-point range; the
scaling cancels out of every reported measure.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ModelError, SolverError
from repro.exact.states import lattice_size
from repro.queueing.network import ClosedNetwork
from repro.queueing.station import Discipline
from repro.solution import NetworkSolution

__all__ = ["solve_convolution", "normalization_constants"]

MAX_LATTICE_SIZE = 2_000_000


def _factorial_coefficients(limits: Tuple[int, ...]) -> np.ndarray:
    """Array ``F[i] = prod_w 1/i_w!`` over the lattice."""
    grids = np.indices([l + 1 for l in limits])
    result = np.ones([l + 1 for l in limits])
    for axis_index in range(len(limits)):
        axis_vals = grids[axis_index]
        # factorial via cumulative product along one axis
        fact = np.ones(limits[axis_index] + 1)
        for k in range(1, limits[axis_index] + 1):
            fact[k] = fact[k - 1] * k
        result /= fact[axis_vals]
    return result


def _is_coefficients(demand_row: np.ndarray, limits: Tuple[int, ...]) -> np.ndarray:
    """Inverse capacity function of an IS station over the lattice."""
    coeffs = _factorial_coefficients(limits)
    for w, rho in enumerate(demand_row):
        axis_powers = rho ** np.arange(limits[w] + 1)
        shape = [1] * len(limits)
        shape[w] = -1
        coeffs = coeffs * axis_powers.reshape(shape)
    return coeffs


def _lattice_convolve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Truncated multidimensional convolution on the population lattice."""
    result = np.zeros_like(a)
    it = np.nditer(b, flags=["multi_index"])
    for value in it:
        scalar = float(value)
        if scalar == 0.0:
            continue
        index = it.multi_index
        src = a[tuple(slice(0, a.shape[k] - index[k]) for k in range(a.ndim))]
        dst = tuple(slice(index[k], a.shape[k]) for k in range(a.ndim))
        result[dst] += scalar * src
    return result


def normalization_constants(
    network: ClosedNetwork, scale: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Normalisation-constant lattice ``g`` with per-chain demand scaling.

    Returns
    -------
    (g, scale):
        ``g`` has shape ``tuple(H_w + 1)``; demands were divided by
        ``scale[w]`` per chain, so a throughput computed from ``g`` must be
        divided by ``scale[w]`` to be physical (queue lengths need no
        correction).
    """
    if not network.is_fixed_rate():
        raise SolverError(
            "convolution supports fixed-rate single-server and IS stations only"
        )
    limits = tuple(int(p) for p in network.populations)
    if lattice_size(limits) > MAX_LATTICE_SIZE:
        raise SolverError(
            f"population lattice too large ({lattice_size(limits)} points) "
            "for the convolution algorithm"
        )
    demands = network.demands
    if scale is None:
        scale = np.ones(network.num_chains)
        for w in range(network.num_chains):
            peak = demands[w].max()
            if peak > 0:
                scale[w] = peak
    scaled = demands / scale[:, None]

    g = np.zeros([l + 1 for l in limits])
    g[(0,) * len(limits)] = 1.0
    for n, station in enumerate(network.stations):
        if station.discipline is Discipline.IS:
            coeffs = _is_coefficients(scaled[:, n], limits)
            g = _lattice_convolve(g, coeffs)
        else:
            # In-place fixed-rate recurrence, ascending along every axis.
            it = np.nditer(g, flags=["multi_index"], op_flags=["readwrite"])
            for cell in it:
                index = it.multi_index
                total = float(cell)
                for w in range(network.num_chains):
                    if index[w] > 0:
                        predecessor = list(index)
                        predecessor[w] -= 1
                        total += scaled[w, n] * g[tuple(predecessor)]
                cell[...] = total
    if not np.all(np.isfinite(g)):
        raise SolverError("normalisation constants overflowed despite scaling")
    return g, scale


def solve_convolution(network: ClosedNetwork) -> NetworkSolution:
    """Solve a closed multichain network by the convolution algorithm.

    Returns
    -------
    NetworkSolution
        With ``method="convolution"``.  The (scaled) normalisation constant
        is reported in ``extras["normalization_constant"]``.
    """
    g, scale = normalization_constants(network)
    limits = tuple(int(p) for p in network.populations)
    target = limits
    g_target = g[target]
    if g_target <= 0:
        raise SolverError("normalisation constant vanished at target population")

    num_chains, num_stations = network.demands.shape
    throughputs = np.zeros(num_chains)
    for w in range(num_chains):
        if limits[w] == 0:
            continue
        predecessor = list(target)
        predecessor[w] -= 1
        throughputs[w] = (g[tuple(predecessor)] / g_target) / scale[w]

    scaled = network.demands / scale[:, None]
    delay_mask = np.asarray([s.is_delay for s in network.stations], dtype=bool)
    queue_lengths = np.zeros((num_chains, num_stations))
    for n, station in enumerate(network.stations):
        if delay_mask[n]:
            # eq. 3.37: N_nw = rho_nw * lambda_w (physical units cancel).
            for w in range(num_chains):
                queue_lengths[w, n] = network.demands[w, n] * throughputs[w]
            continue
        # g_(n+) = g convolved with station n's fixed-rate coefficients.
        g_plus = g.copy()
        it = np.nditer(g_plus, flags=["multi_index"], op_flags=["readwrite"])
        for cell in it:
            index = it.multi_index
            total = float(cell)
            for w in range(num_chains):
                if index[w] > 0:
                    predecessor = list(index)
                    predecessor[w] -= 1
                    total += scaled[w, n] * g_plus[tuple(predecessor)]
            cell[...] = total
        for w in range(num_chains):
            if limits[w] == 0:
                continue
            predecessor = list(target)
            predecessor[w] -= 1
            queue_lengths[w, n] = scaled[w, n] * g_plus[tuple(predecessor)] / g_target

    # Per-cycle waiting times by Little's law at each queue.
    waiting = np.zeros_like(queue_lengths)
    for w in range(num_chains):
        if throughputs[w] > 0:
            waiting[w] = queue_lengths[w] / throughputs[w]

    return NetworkSolution(
        network=network,
        throughputs=throughputs,
        queue_lengths=queue_lengths,
        waiting_times=waiting,
        method="convolution",
        iterations=0,
        converged=True,
        extras={"normalization_constant": float(g_target)},
    )
