"""Persistent worker pool for WINDIM objective evaluations.

:class:`PersistentEvalPool` replaces the per-batch
``ProcessPoolExecutor`` fan-out of PR 3 with a long-lived fleet: workers
are spawned **once** per ``windim``/``windim_multistart``/campaign run,
receive the network model and solver configuration exactly once through
a :class:`~repro.parallel.shm.ModelArena` (zero-copy for the dense
numeric payload), and from then on accept only
``(eval_id, window_vector, seed_slot)`` micro-tasks a few hundred bytes
each.  Completions stream back out of order over per-worker result
pipes, which is what lets the
:class:`~repro.parallel.scheduler.SpeculativeScheduler` keep every
worker saturated instead of idling at batch barriers.  Each pipe has
exactly one writer, so a worker SIGKILLed mid-write (by the watchdog or
the OS) can only tear its **own** channel — a shared result queue would
let a dying worker take the queue's write lock to the grave and wedge
every survivor's ``put`` forever.  The parent treats a torn pipe as a
worker death and lets the ordinary respawn path replace both the worker
and its channel.

Resilience is built in: the parent monitors worker liveness whenever it
waits on results; a dead worker is respawned against the same arena and
its in-flight tasks are requeued to the survivors (bounded by
``max_requeues`` so a task that reliably kills workers is completed as
failed instead of crash-looping the fleet).  A *hung* worker — stuck
fixed-point loop, wedged queue — is caught by the per-task watchdog:
workers stamp a shared heartbeat at every dequeue and completion, and
when ``task_deadline`` seconds pass with no progress the parent SIGKILLs
the worker, which then flows through the ordinary death → respawn →
requeue path (recorded as ``PoolEvent("hung", ...)``).  Respawns
themselves are bounded by a :class:`~repro.resilience.retry.RetryPolicy`;
once the budget is spent the pool raises
:class:`~repro.errors.PoolFailure` so the evaluation plane can degrade
to a lower rung instead of crash-looping forever.  Every lifecycle event
is recorded in a :class:`~repro.resilience.health.PoolHealth` that
surfaces through ``WindimResult``.

Start-method safety: everything that crosses the process boundary — the
:class:`~repro.parallel.shm.ArenaRef`, micro-tasks, result tuples — is
plain picklable data and the worker entry point is a module-level
function, so the pool runs identically under ``fork``, ``forkserver``
and ``spawn`` (pass ``start_method=`` to pin one; tests pin ``spawn``).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import signal
import time
from multiprocessing import connection as mp_connection
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PoolFailure, SearchError, SolverError
from repro.parallel.shm import ArenaRef, ModelArena
from repro.queueing.network import ClosedNetwork
from repro.resilience.health import PoolEvent, PoolHealth
from repro.resilience.retry import RetryPolicy
from repro.solution import NetworkSolution

__all__ = ["PersistentEvalPool", "CompletedEval"]

Point = Tuple[int, ...]

#: How often the parent re-checks worker liveness while waiting (seconds).
_LIVENESS_TICK = 0.1

#: Default requeue bound (overridable per pool / via REPRO_MAX_REQUEUES).
_MAX_REQUEUES = 2


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw)
    except ValueError as error:
        raise SearchError(f"{name} must be an integer, got {raw!r}") from error


def _env_float(name: str, default: Optional[float]) -> Optional[float]:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return float(raw)
    except ValueError as error:
        raise SearchError(f"{name} must be a number, got {raw!r}") from error

#: Result statuses a worker can report.
_OK = "ok"
_SOLVER_ERROR = "solver-error"
_SKIPPED = "skipped"
_FATAL = "fatal"


class CompletedEval(NamedTuple):
    """One finished (or skipped/failed) pool task, parent side."""

    eval_id: int
    key: Point
    status: str
    value: float
    payload: Optional[dict]
    worker: int
    pid: int
    speculative: bool

    @property
    def ok(self) -> bool:
        return self.status in (_OK, _SOLVER_ERROR)


class _TaskRecord(NamedTuple):
    key: Point
    worker: int
    seed_slot: Optional[int]
    generation: int
    bound_hint: Optional[float]
    speculative: bool
    requeues: int = 0
    dispatched_at: float = 0.0


def _solution_payload(solution: NetworkSolution, warmed: bool) -> dict:
    """Ship a solution minus its network (the parent already has one)."""
    return {
        "throughputs": np.asarray(solution.throughputs, dtype=np.float64),
        "queue_lengths": np.asarray(solution.queue_lengths, dtype=np.float64),
        "waiting_times": np.asarray(solution.waiting_times, dtype=np.float64),
        "method": solution.method,
        "iterations": int(solution.iterations),
        "converged": bool(solution.converged),
        "extras": dict(solution.extras),
        "warmed": bool(warmed),
    }


def rebuild_solution(
    network: ClosedNetwork, key: Point, payload: dict
) -> NetworkSolution:
    """Parent-side inverse of :func:`_solution_payload`."""
    return NetworkSolution(
        network=network.with_populations(key),
        throughputs=payload["throughputs"],
        queue_lengths=payload["queue_lengths"],
        waiting_times=payload["waiting_times"],
        method=payload["method"],
        iterations=payload["iterations"],
        converged=payload["converged"],
        extras=payload["extras"],
    )


def _worker_main(
    ref: ArenaRef,
    task_queue,
    result_conn,
    worker_index: int,
    heartbeats=None,
) -> None:
    """Pool worker loop: attach the arena once, then serve micro-tasks.

    Module-level (hence importable under ``spawn``) and self-contained.
    SIGINT is ignored so an operator Ctrl-C interrupts only the parent,
    which then checkpoints and shuts the fleet down in order.

    ``heartbeats`` is the parent's shared progress array: the worker
    stamps its slot with ``time.monotonic()`` at every dequeue and after
    every completion, which is what the hung-worker watchdog watches
    (``CLOCK_MONOTONIC`` is system-wide on the platforms the pool runs
    on, so parent and child stamps are directly comparable).
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    from repro.chaos.hooks import worker_chaos
    from repro.core.objective import SOLVERS
    from repro.core.power import inverse_power
    from repro.core.reuse import _accepted_keywords

    chaos = worker_chaos(worker_index)
    arena = ModelArena.attach(ref)
    pid = os.getpid()
    generation = -1
    network = solver = None
    solver_keywords: frozenset = frozenset()

    def _stamp() -> None:
        if heartbeats is not None:
            heartbeats[worker_index] = time.monotonic()

    try:
        while True:
            message = task_queue.get()
            if message is None:
                break
            _stamp()
            if chaos is not None:
                chaos.on_task()
            eval_id, key, seed_slot, _task_gen, bound_hint, speculative = message
            try:
                if arena.generation != generation or network is None:
                    network, solver_name, backend = arena.model()
                    solver = SOLVERS[solver_name]
                    solver_keywords = _accepted_keywords(solver)
                    generation = arena.generation
                if (
                    speculative
                    and bound_hint is not None
                    and bound_hint > arena.get_incumbent()
                ):
                    # The search's incumbent already dominates this
                    # speculation; solving it would be pure waste.  The
                    # parent treats a skip as "never submitted".
                    result_conn.send(
                        (eval_id, worker_index, pid, _SKIPPED, float("inf"), None)
                    )
                    continue
                kwargs: Dict[str, object] = {}
                if "backend" in solver_keywords:
                    kwargs["backend"] = backend
                warmed = False
                if seed_slot is not None and "warm_start" in solver_keywords:
                    kwargs["warm_start"] = arena.read_seed(seed_slot)
                    warmed = True
                candidate = network.with_populations(key)
                try:
                    solution = solver(candidate, **kwargs)
                except SolverError:
                    result_conn.send(
                        (eval_id, worker_index, pid, _SOLVER_ERROR, float("inf"), None)
                    )
                else:
                    result_conn.send(
                        (
                            eval_id,
                            worker_index,
                            pid,
                            _OK,
                            inverse_power(solution),
                            _solution_payload(solution, warmed),
                        )
                    )
            except Exception as exc:  # pragma: no cover - defensive
                result_conn.send(
                    (
                        eval_id,
                        worker_index,
                        pid,
                        _FATAL,
                        float("inf"),
                        {"error": f"{type(exc).__name__}: {exc}"},
                    )
                )
            _stamp()
    finally:
        arena.close()


class PersistentEvalPool:
    """Long-lived worker fleet bound to one shared-memory model arena.

    Parameters
    ----------
    network:
        The network template broadcast to workers (populations ignored).
    solver:
        Named solver from :data:`repro.core.objective.SOLVERS`.
    backend:
        Kernel backend forwarded to the solver in every worker.
    workers:
        Fleet size (>= 1).
    start_method:
        ``"fork"`` / ``"forkserver"`` / ``"spawn"``; None = platform
        default.  The pool is spawn-safe by construction.
    seed_slots:
        Warm-start slots in the arena; defaults to ``4 * workers`` so
        slot recycling never starves a saturated pipeline.
    max_requeues:
        Times one task may be requeued after worker deaths before it is
        completed as failed.  Defaults to the ``REPRO_MAX_REQUEUES``
        environment variable, then to 2.
    max_respawns:
        Total worker respawns the pool tolerates over its lifetime;
        exceeding it raises :class:`~repro.errors.PoolFailure` so callers
        can degrade.  Defaults to ``REPRO_MAX_RESPAWNS``, then to
        ``max(8, 4 * workers)``.  Zero forbids respawning entirely.
    task_deadline:
        Hung-worker watchdog: seconds a worker may go without a heartbeat
        while holding in-flight tasks before it is SIGKILLed and its
        tasks requeued.  Defaults to ``REPRO_TASK_DEADLINE``, then to
        None (watchdog disabled).
    respawn_policy:
        :class:`~repro.resilience.retry.RetryPolicy` pacing respawns
        (backoff between them).  ``max_attempts`` is derived from
        ``max_respawns`` when omitted.
    """

    def __init__(
        self,
        network: ClosedNetwork,
        solver: str,
        backend: Optional[str] = None,
        workers: int = 2,
        start_method: Optional[str] = None,
        seed_slots: Optional[int] = None,
        max_requeues: Optional[int] = None,
        max_respawns: Optional[int] = None,
        task_deadline: Optional[float] = None,
        respawn_policy: Optional[RetryPolicy] = None,
    ):
        if workers < 1:
            raise SearchError(f"pool needs >= 1 worker, got {workers}")
        self.max_requeues = (
            _env_int("REPRO_MAX_REQUEUES", _MAX_REQUEUES)
            if max_requeues is None
            else int(max_requeues)
        )
        self.max_respawns = (
            _env_int("REPRO_MAX_RESPAWNS", max(8, 4 * int(workers)))
            if max_respawns is None
            else int(max_respawns)
        )
        self.task_deadline = (
            _env_float("REPRO_TASK_DEADLINE", None)
            if task_deadline is None
            else float(task_deadline)
        )
        if self.max_requeues < 0 or self.max_respawns < 0:
            raise SearchError("max_requeues / max_respawns must be >= 0")
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise SearchError("task_deadline must be positive")
        self._respawn_policy = respawn_policy or RetryPolicy(
            max_attempts=max(1, self.max_respawns),
            base_delay=0.02,
            multiplier=2.0,
            max_delay=0.5,
            jitter=0.25,
        )
        self._ctx = multiprocessing.get_context(start_method)
        self._solver_name = solver
        self._backend = backend
        self.workers = int(workers)
        slots = seed_slots if seed_slots is not None else max(4 * workers, 8)
        self.arena = ModelArena.create(
            network, solver, backend=backend, seed_slots=slots
        )
        self.health = PoolHealth(
            workers=self.workers,
            start_method=self._ctx.get_start_method(),
        )
        # One double per worker, stamped by the worker at each dequeue and
        # completion; the watchdog compares against dispatch times.  The
        # lock-free variant is enough: each slot has one writer.
        self._heartbeats = self._ctx.Array("d", int(workers), lock=False)
        # Per-worker result channels (single writer each); a slot is None
        # while its worker's pipe is torn and awaiting respawn.
        self._result_conns: List = []
        self._task_queues: List = []
        self._processes: List = []
        self._eval_ids = itertools.count(1)
        self._inflight: Dict[int, _TaskRecord] = {}
        self._generation = self.arena.generation
        self._free_slots: List[int] = list(range(slots))
        self._slot_refs: Dict[int, int] = {}
        self._synthetic: List[CompletedEval] = []
        self._closed = False
        for index in range(self.workers):
            self._spawn_worker(index)
        self.health.worker_pids = [p.pid for p in self._processes]

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn_worker(self, index: int) -> None:
        task_queue = self._ctx.Queue()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        self._heartbeats[index] = time.monotonic()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                self.arena.ref,
                task_queue,
                send_conn,
                index,
                self._heartbeats,
            ),
            daemon=True,
            name=f"windim-eval-{index}",
        )
        process.start()
        # The worker holds the only live write end now; dropping the
        # parent's copy lets recv() see EOF the moment the worker dies.
        send_conn.close()
        if index < len(self._task_queues):
            self._close_conn(self._result_conns[index])
            self._result_conns[index] = recv_conn
            self._task_queues[index] = task_queue
            self._processes[index] = process
        else:
            self._result_conns.append(recv_conn)
            self._task_queues.append(task_queue)
            self._processes.append(process)
        self.health.record(PoolEvent("spawn", index, process.pid or 0))

    @staticmethod
    def _close_conn(conn) -> None:
        if conn is None:
            return
        try:
            conn.close()
        except OSError:  # pragma: no cover - already gone
            pass

    def _check_watchdog(self) -> None:
        """SIGKILL workers that exceeded the per-task deadline.

        A worker counts as *hung* when it holds in-flight tasks and
        neither its heartbeat nor the most recent dispatch to it is
        younger than ``task_deadline``.  The kill makes the worker fail
        the ordinary liveness scan, which then respawns it and requeues
        its tasks — the watchdog only converts "silently stuck" into
        "visibly dead".
        """
        if self.task_deadline is None:
            return
        now = time.monotonic()
        for index, process in enumerate(self._processes):
            if not process.is_alive():
                continue  # the death scan below handles it
            dispatched = [
                record.dispatched_at
                for record in self._inflight.values()
                if record.worker == index
            ]
            if not dispatched:
                continue  # idle workers owe no heartbeat
            anchor = max(self._heartbeats[index], min(dispatched))
            overdue = now - anchor
            if overdue <= self.task_deadline:
                continue
            pid = process.pid or 0
            self.health.record(
                PoolEvent(
                    "hung",
                    index,
                    pid,
                    f"no progress for {overdue:.2f}s "
                    f"(deadline {self.task_deadline:g}s)",
                )
            )
            try:
                os.kill(pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):  # pragma: no cover
                pass
            process.join(timeout=5.0)

    def _check_workers(self) -> None:
        """Respawn dead workers and requeue their in-flight tasks."""
        self._check_watchdog()
        for index, process in enumerate(self._processes):
            if process.is_alive():
                continue
            dead_pid = process.pid or 0
            self.health.record(
                PoolEvent(
                    "death",
                    index,
                    dead_pid,
                    f"exitcode={process.exitcode}",
                )
            )
            orphaned = [
                (eval_id, record)
                for eval_id, record in self._inflight.items()
                if record.worker == index
            ]
            attempt = self.health.respawns + 1
            if self.max_respawns <= 0 or not self._respawn_policy.allows(
                attempt
            ):
                raise PoolFailure(
                    f"worker {index} (pid {dead_pid}) died and the pool's "
                    f"respawn budget is spent "
                    f"({self.health.respawns}/{self.max_respawns} respawns, "
                    f"{self.health.hung} watchdog kills); degrade to a "
                    f"lower execution mode"
                )
            pause = self._respawn_policy.delay(
                attempt + 1, salt=f"respawn-{index}"
            )
            if pause > 0:
                time.sleep(pause)
            self._spawn_worker(index)
            self.health.record(
                PoolEvent("respawn", index, self._processes[index].pid or 0)
            )
            self.health.worker_pids = [p.pid for p in self._processes]
            for eval_id, record in orphaned:
                if record.requeues >= self.max_requeues:
                    # This task has now taken multiple workers down with
                    # it; stop feeding it to the fleet and fail it.
                    self._inflight.pop(eval_id, None)
                    self._release_slot(record.seed_slot)
                    self.health.record(
                        PoolEvent(
                            "drop", index, dead_pid, f"windows={record.key}"
                        )
                    )
                    self._synthetic.append(
                        CompletedEval(
                            eval_id,
                            record.key,
                            _FATAL,
                            float("inf"),
                            {
                                "error": "task dropped after repeated "
                                "worker deaths"
                            },
                            index,
                            dead_pid,
                            record.speculative,
                        )
                    )
                    continue
                self.health.record(
                    PoolEvent("requeue", index, dead_pid, f"windows={record.key}")
                )
                self._dispatch(
                    eval_id, record._replace(requeues=record.requeues + 1)
                )

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Number of submitted-but-not-completed tasks."""
        return len(self._inflight) + len(self._synthetic)

    @property
    def worker_pids(self) -> List[int]:
        return [p.pid for p in self._processes]

    def _least_loaded_worker(self) -> int:
        load = [0] * self.workers
        for record in self._inflight.values():
            load[record.worker] += 1
        return int(np.argmin(load))

    def _acquire_slot(self, seed: Optional[np.ndarray]) -> Optional[int]:
        if seed is None or not self._free_slots:
            return None
        slot = self._free_slots.pop()
        self.arena.write_seed(slot, seed)
        self._slot_refs[slot] = self._slot_refs.get(slot, 0) + 1
        return slot

    def _release_slot(self, slot: Optional[int]) -> None:
        if slot is None:
            return
        remaining = self._slot_refs.get(slot, 0) - 1
        if remaining <= 0:
            self._slot_refs.pop(slot, None)
            self._free_slots.append(slot)
        else:  # pragma: no cover - slots are single-referenced today
            self._slot_refs[slot] = remaining

    def _dispatch(self, eval_id: int, record: _TaskRecord) -> None:
        worker = self._least_loaded_worker()
        record = record._replace(worker=worker, dispatched_at=time.monotonic())
        self._inflight[eval_id] = record
        message = (
            eval_id,
            record.key,
            record.seed_slot,
            record.generation,
            record.bound_hint,
            record.speculative,
        )
        self.health.payload_bytes_total += len(
            pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        )
        self._task_queues[worker].put(message)

    def submit(
        self,
        key: Sequence[int],
        seed: Optional[np.ndarray] = None,
        bound_hint: Optional[float] = None,
        speculative: bool = False,
    ) -> int:
        """Queue one window vector for evaluation; returns its eval id.

        ``seed`` (a converged queue-length matrix) travels through an
        arena slot, not the task message; ``bound_hint`` lets workers
        drop a *speculative* task the incumbent already dominates.
        """
        if self._closed:
            raise SearchError("pool is closed")
        eval_id = next(self._eval_ids)
        slot = self._acquire_slot(seed)
        self._dispatch(
            eval_id,
            _TaskRecord(
                key=tuple(int(x) for x in key),
                worker=0,
                seed_slot=slot,
                generation=self._generation,
                bound_hint=bound_hint,
                speculative=speculative,
            ),
        )
        return eval_id

    def set_incumbent(self, value: float) -> None:
        """Publish the search incumbent for worker-side speculation skips."""
        self.arena.set_incumbent(value)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def poll(self, timeout: Optional[float] = None) -> Optional[CompletedEval]:
        """Next completion, or None when ``timeout`` elapses first.

        ``timeout=None`` blocks until a completion arrives (monitoring
        worker liveness the whole time).  Results for tasks the pool no
        longer tracks (a requeued task whose original worker managed to
        answer before dying) are dropped silently — first answer wins.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._synthetic:
                return self._synthetic.pop(0)
            if not self._inflight:
                return None
            remaining = _LIVENESS_TICK
            if deadline is not None:
                remaining = min(remaining, deadline - time.monotonic())
                if remaining <= 0:
                    return None
            message = self._next_message(max(remaining, 0.001))
            if message is None:
                self._check_workers()
                continue
            eval_id, worker, pid, status, value, payload = message
            record = self._inflight.pop(eval_id, None)
            if record is None:
                continue  # duplicate answer for a requeued task
            self._release_slot(record.seed_slot)
            if status == _SKIPPED:
                self.health.tasks_skipped += 1
            else:
                self.health.tasks_completed += 1
            return CompletedEval(
                eval_id,
                record.key,
                status,
                float(value),
                payload,
                worker,
                pid,
                record.speculative,
            )

    def _next_message(self, timeout: float):
        """One raw result tuple, or None after ``timeout`` / torn pipes.

        A pipe that raises on ``recv`` (EOF, or a partial pickle from a
        worker killed mid-write) is closed and its slot cleared; the
        liveness scan then respawns the worker with a fresh channel.
        """
        conns = [c for c in self._result_conns if c is not None]
        if not conns:  # every channel torn; wait for the respawn path
            time.sleep(timeout)
            return None
        ready = mp_connection.wait(conns, timeout=timeout)
        for conn in ready:
            try:
                return conn.recv()
            except (EOFError, OSError, pickle.UnpicklingError):
                index = self._result_conns.index(conn)
                self._close_conn(conn)
                self._result_conns[index] = None
        return None

    def drain(self) -> List[CompletedEval]:
        """Block until every in-flight task completed; return them all."""
        completions = []
        while self.inflight:
            done = self.poll(timeout=None)
            if done is None:
                break
            completions.append(done)
        return completions

    def map(
        self,
        keys: Sequence[Point],
        seeds: Optional[Dict[Point, np.ndarray]] = None,
    ) -> Dict[Point, CompletedEval]:
        """Batch helper: evaluate ``keys`` and return completions by key.

        The barrier-style entry point used by
        ``WindowObjective.batch_solve``; the scheduler bypasses it and
        talks to :meth:`submit`/:meth:`poll` directly.
        """
        pending = set()
        for key in keys:
            seed = seeds.get(tuple(int(x) for x in key)) if seeds else None
            pending.add(self.submit(key, seed=seed))
        out: Dict[Point, CompletedEval] = {}
        while pending:
            done = self.poll(timeout=None)
            if done is None:
                raise SearchError("pool drained with tasks still pending")
            pending.discard(done.eval_id)
            if done.status == _FATAL:
                detail = (done.payload or {}).get("error", "unknown")
                raise SearchError(
                    f"pool worker failed evaluating windows {done.key}: {detail}"
                )
            out[done.key] = done
        return out

    # ------------------------------------------------------------------
    # model updates / shutdown
    # ------------------------------------------------------------------
    def update_model(
        self, network: ClosedNetwork, backend: Optional[str] = None
    ) -> None:
        """Point the live fleet at a new same-shape scenario.

        Requires a quiescent pool (no in-flight tasks): generation
        semantics guarantee workers only ever solve against the latest
        broadcast, so mixing scenarios within one batch is a bug, not a
        race to tolerate.
        """
        if self.inflight:
            raise SearchError(
                f"cannot update the pool model with {self.inflight} tasks "
                "in flight; drain first"
            )
        self._generation = self.arena.update_model(
            network, self._solver_name, backend if backend is not None else self._backend
        )

    def close(self) -> None:
        """Stop the fleet and release the arena. Idempotent."""
        if self._closed:
            return
        self._closed = True
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except (OSError, ValueError):  # pragma: no cover
                pass
        for process in self._processes:
            process.join(timeout=2.0)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - SIGTERM ignored
                # A worker wedged in an uninterruptible state (or hung in
                # a C extension masking SIGTERM) must not leak past
                # close(); SIGKILL is the shutdown of last resort.
                process.kill()
                process.join(timeout=1.0)
        for conn in self._result_conns:
            self._close_conn(conn)
        for q in self._task_queues:
            try:
                q.close()
                q.cancel_join_thread()
            except (OSError, ValueError):  # pragma: no cover
                pass
        self.arena.close(unlink=True)

    def __enter__(self) -> "PersistentEvalPool":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:
            pass
