"""Shared-memory model arena for the persistent evaluation pool.

A :class:`ModelArena` broadcasts one WINDIM problem instance — the
:class:`~repro.queueing.network.ClosedNetwork`, its dense demand arrays,
and the solver configuration — to every pool worker through a single
``multiprocessing.shared_memory`` segment.  Workers attach once, map the
numeric model **zero-copy** (the ``(R, L)`` demand/visit matrices live in
the segment itself, exposed as read-only numpy views), and afterwards
receive only ``(eval_id, window_vector, seed_slot)`` micro-tasks whose
pickled size is a few hundred bytes regardless of model size.

The arena is **spawn-safe**: everything a worker needs to attach travels
in a small picklable :class:`ArenaRef` (segment name + layout), so the
pool works identically under ``fork``, ``forkserver`` and ``spawn``.

Layout of the segment (offsets precomputed at creation)::

    header     int64[4]    generation, blob_len, seed_slots, seed_capable
    incumbent  float64[1]  best objective value seen by the search so far
    demands    float64[R*L]
    visits     float64[R*L]
    sources    int64[R]
    seeds      float64[slots*R*L]   warm-start queue-length slots
    blob       uint8[capacity]      pickled (stations, chains, solver, backend)

The *blob* carries only the structural Python objects (stations, chains,
solver name, kernel backend); the numeric payload stays in the dense
regions, which :meth:`ModelArena.update_model` can rewrite in place to
re-target a running pool at a new scenario of the same shape (a campaign
sweep changes demands, never topology shape).  Workers detect the bumped
``generation`` on their next task and rebuild their network view.

Warm-start **seed slots** let the parent hand PR 4's reuse-engine seeds
to workers by reference: the parent writes an ``(R, L)`` queue-length
matrix into a free slot and ships only the slot index in the micro-task.
Slot reuse is reference-counted by the pool (a slot is recycled only
after every task that referenced it completed), so a worker can never
observe a torn seed.  The ``incumbent`` cell flows the search's best
value to workers so provably dominated *speculative* tasks can be
skipped without a solve (see :mod:`repro.parallel.pool`).
"""

from __future__ import annotations

import pickle
from multiprocessing import shared_memory
from typing import NamedTuple, Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.queueing.network import ClosedNetwork

__all__ = ["ArenaRef", "ModelArena", "DEFAULT_SEED_SLOTS"]

#: Default number of warm-start seed slots (pool sizes this to its depth).
DEFAULT_SEED_SLOTS = 32

_HEADER_WORDS = 4
_GENERATION = 0
_BLOB_LEN = 1
_SEED_SLOTS = 2


class ArenaRef(NamedTuple):
    """Picklable handle a worker needs to attach to an arena.

    Deliberately tiny (a name plus integer layout) so it crosses a
    ``spawn`` process boundary for free.
    """

    name: str
    num_chains: int
    num_stations: int
    seed_slots: int
    blob_capacity: int


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker interference.

    Attaching registers the segment with the ``resource_tracker`` on
    Python < 3.13, which is wrong for pool workers twice over: the
    tracker would unlink the parent-owned segment when a worker exits,
    and — because spawned children *share* the parent's tracker process —
    sending an ``unregister`` from a worker would instead delete the
    creator's own registration (the tracker keys by name, not by
    process).  So attachers suppress the registration entirely:
    ``track=False`` on 3.13+, a local no-op ``register`` during the
    attach call before that.  The creator alone stays registered and
    alone unlinks.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register

        def _no_register(segment_name, rtype):
            if rtype != "shared_memory":  # pragma: no cover
                original_register(segment_name, rtype)

        resource_tracker.register = _no_register
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


class ModelArena:
    """One shared-memory segment holding a broadcast WINDIM model.

    Construct with :meth:`create` (parent / owner) or :meth:`attach`
    (worker).  The owner must eventually call :meth:`close` with
    ``unlink=True``; workers call plain :meth:`close`.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        ref: ArenaRef,
        owner: bool,
    ):
        self._segment = segment
        self.ref = ref
        self._owner = owner
        R, L = ref.num_chains, ref.num_stations
        buf = segment.buf
        offset = 0

        def region(dtype, shape):
            nonlocal offset
            size = int(np.prod(shape)) * np.dtype(dtype).itemsize
            view = np.ndarray(shape, dtype=dtype, buffer=buf, offset=offset)
            offset += size
            return view

        self._header = region(np.int64, (_HEADER_WORDS,))
        self._incumbent = region(np.float64, (1,))
        self._demands = region(np.float64, (R, L))
        self._visits = region(np.float64, (R, L))
        self._sources = region(np.int64, (R,))
        self._seeds = region(np.float64, (ref.seed_slots, R, L))
        self._blob = region(np.uint8, (ref.blob_capacity,))
        self._model_cache: Optional[Tuple[int, ClosedNetwork, str, Optional[str]]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        network: ClosedNetwork,
        solver_name: str,
        backend: Optional[str] = None,
        seed_slots: int = DEFAULT_SEED_SLOTS,
        blob_capacity: Optional[int] = None,
    ) -> "ModelArena":
        """Allocate a segment and broadcast ``network`` into it."""
        blob = cls._encode_blob(network, solver_name, backend)
        if blob_capacity is None:
            # Headroom for update_model: structural pickles of sibling
            # scenarios differ only in float payloads, so 2x + slack is
            # comfortably enough.
            blob_capacity = max(2 * len(blob), len(blob) + 4096)
        R, L = network.num_chains, network.num_stations
        total = (
            _HEADER_WORDS * 8
            + 8  # incumbent
            + 2 * R * L * 8  # demands + visits
            + R * 8  # sources
            + seed_slots * R * L * 8
            + blob_capacity
        )
        segment = shared_memory.SharedMemory(create=True, size=total)
        ref = ArenaRef(segment.name, R, L, seed_slots, blob_capacity)
        arena = cls(segment, ref, owner=True)
        arena._header[:] = 0
        arena._incumbent[0] = np.inf
        arena._write_model(network, blob)
        return arena

    @classmethod
    def attach(cls, ref: ArenaRef) -> "ModelArena":
        """Map an existing arena (worker side)."""
        return cls(_attach_segment(ref.name), ref, owner=False)

    @staticmethod
    def _encode_blob(
        network: ClosedNetwork, solver_name: str, backend: Optional[str]
    ) -> bytes:
        # Structure only: the dense arrays travel in their own regions.
        return pickle.dumps(
            (network.stations, network.chains, solver_name, backend),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    def _write_model(self, network: ClosedNetwork, blob: bytes) -> None:
        if len(blob) > self.ref.blob_capacity:
            raise ModelError(
                f"arena blob capacity exceeded ({len(blob)} > "
                f"{self.ref.blob_capacity} bytes); recreate the pool for "
                "this model"
            )
        self._demands[:] = network.demands
        self._visits[:] = network.visit_counts
        self._sources[:] = network.source_index
        self._blob[: len(blob)] = np.frombuffer(blob, dtype=np.uint8)
        self._header[_BLOB_LEN] = len(blob)
        self._header[_SEED_SLOTS] = self.ref.seed_slots
        self._header[_GENERATION] += 1

    # ------------------------------------------------------------------
    # owner-side updates
    # ------------------------------------------------------------------
    def update_model(
        self,
        network: ClosedNetwork,
        solver_name: str,
        backend: Optional[str] = None,
    ) -> int:
        """Re-broadcast a same-shape model in place; returns the generation.

        Campaign sweeps re-dimension the same topology under different
        loads: the dense regions are rewritten and the generation bumped,
        so live workers switch scenario on their next task without being
        respawned.
        """
        if (network.num_chains, network.num_stations) != (
            self.ref.num_chains,
            self.ref.num_stations,
        ):
            raise ModelError(
                "arena update requires an identically shaped model "
                f"(({network.num_chains}, {network.num_stations}) vs "
                f"({self.ref.num_chains}, {self.ref.num_stations})); "
                "create a fresh pool instead"
            )
        self._write_model(
            network, self._encode_blob(network, solver_name, backend)
        )
        self._incumbent[0] = np.inf
        return self.generation

    def set_incumbent(self, value: float) -> None:
        """Publish the search's best objective value to workers."""
        self._incumbent[0] = float(value)

    def get_incumbent(self) -> float:
        return float(self._incumbent[0])

    def write_seed(self, slot: int, queue_lengths: np.ndarray) -> None:
        """Place a warm-start queue-length matrix into ``slot``."""
        self._seeds[slot] = np.asarray(queue_lengths, dtype=np.float64)

    def read_seed(self, slot: int) -> np.ndarray:
        """A private copy of the seed in ``slot`` (worker side)."""
        return np.array(self._seeds[slot], dtype=np.float64)

    # ------------------------------------------------------------------
    # worker-side model view
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return int(self._header[_GENERATION])

    def model(self) -> Tuple[ClosedNetwork, str, Optional[str]]:
        """The broadcast ``(network, solver name, backend)`` triple.

        The network's dense arrays are **read-only zero-copy views** into
        the segment, so the per-worker memory cost of the numeric model
        is zero and an in-place :meth:`update_model` is visible without
        re-reading.  Rebuilt (and re-cached) only when the generation
        changed since the last call.
        """
        generation = self.generation
        if self._model_cache is not None and self._model_cache[0] == generation:
            _, network, solver_name, backend = self._model_cache
            return network, solver_name, backend
        blob_len = int(self._header[_BLOB_LEN])
        stations, chains, solver_name, backend = pickle.loads(
            self._blob[:blob_len].tobytes()
        )
        demands = self._demands.view()
        visits = self._visits.view()
        sources = self._sources.view()
        populations = np.array([c.population for c in chains], dtype=np.int64)
        for view in (demands, visits, sources):
            view.flags.writeable = False
        network = ClosedNetwork(
            stations=stations,
            chains=chains,
            demands=demands,
            visit_counts=visits,
            populations=populations,
            source_index=sources,
        )
        self._model_cache = (generation, network, solver_name, backend)
        return network, solver_name, backend

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, unlink: bool = False) -> None:
        """Drop every mapped view and release the segment.

        The owner passes ``unlink=True`` exactly once; workers only
        detach.  Safe to call repeatedly.
        """
        if self._segment is None:
            return
        # numpy views pin the exported buffer; drop them before close().
        for attr in (
            "_header",
            "_incumbent",
            "_demands",
            "_visits",
            "_sources",
            "_seeds",
            "_blob",
        ):
            if hasattr(self, attr):
                delattr(self, attr)
        self._model_cache = None
        try:
            self._segment.close()
            if unlink and self._owner:
                self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        except BufferError:  # pragma: no cover - a view escaped; the
            # mapping is released at process exit instead, and the owner
            # can still unlink the name so the segment does not leak.
            if unlink and self._owner:
                try:
                    self._segment.unlink()
                except FileNotFoundError:
                    pass
        self._segment = None

    @property
    def nbytes(self) -> int:
        """Total size of the shared segment in bytes."""
        return self._segment.size if self._segment is not None else 0
