"""Persistent shared-memory evaluation service for WINDIM searches.

Three pieces, layered:

* :mod:`repro.parallel.shm` — a ``multiprocessing.shared_memory`` arena
  broadcasting one network model (zero-copy dense arrays + structural
  blob), warm-start seed slots, and the search incumbent.
* :mod:`repro.parallel.pool` — a long-lived worker fleet attached to one
  arena; workers receive only ``(eval_id, window_vector, seed_slot)``
  micro-tasks, and dead workers are respawned with their tasks requeued.
* :mod:`repro.parallel.scheduler` — an asynchronous speculative frontier
  that keeps the fleet saturated ahead of the pattern search while
  preserving its sequential trajectory exactly.
"""

from repro.parallel.pool import CompletedEval, PersistentEvalPool
from repro.parallel.scheduler import SpeculativeScheduler
from repro.parallel.shm import ArenaRef, DEFAULT_SEED_SLOTS, ModelArena

__all__ = [
    "ArenaRef",
    "CompletedEval",
    "DEFAULT_SEED_SLOTS",
    "ModelArena",
    "PersistentEvalPool",
    "SpeculativeScheduler",
]
