"""Asynchronous speculative scheduler for the pattern search.

The barrier-style ``prefetch`` of :func:`repro.search.pattern.
pattern_search` evaluates the ±step cross around each base point in one
synchronous batch: workers all finish, the sweep consumes the values,
workers idle until the next batch.  :class:`SpeculativeScheduler` keeps a
:class:`~repro.parallel.pool.PersistentEvalPool` saturated instead: it
maintains a **priority frontier** of window vectors worth evaluating
before the search asks for them, streams completions out of order into
the shared :class:`~repro.search.cache.EvaluationCache`, and blocks only
when the search *demands* a value that has not yet arrived.

Frontier priorities (lower = sooner)::

    DEMAND         0   the search is blocked on this point right now
    SEED           1   a known-future evaluation (pattern landing point,
                       multistart seed)
    CROSS          2   ±step exploratory cross around the current base
    PATTERN        3   speculative pattern-move extrapolation 2c - b for
                       a cross candidate c that *would* land there if it
                       improves
    PATTERN_CROSS  4   cross around a predicted pattern landing point

Trajectory identity
-------------------
The scheduler never decides anything: :func:`pattern_search` demands the
exact same point sequence as a sequential run, and speculative results
only ever enter the cache through :meth:`EvaluationCache.prime` — the
same merge the synchronous prefetch uses.  Pool workers run the same
named solver with the same backend, so a demanded value is bit-identical
whether it was speculated, demanded, or computed in-process.  Accepted
moves, the chosen optimum, and its value therefore match the sequential
search exactly; only *how many* speculative neighbours got evaluated may
differ (as with ``prefetch`` before it), and every one of them is
counted against budgets and fires the checkpoint hook.

Cancellation
------------
Speculation is invalidated by progress: an accepted move re-centres the
interesting neighbourhood, a step halving shrinks it.  Queued-but-not-
submitted frontier entries are simply dropped; tasks already on a worker
cannot be recalled, so the scheduler publishes the search incumbent to
the arena and workers skip any *speculative* task whose certified lower
bound proves it dominated (a skip is "never evaluated": not cached, not
counted, re-demandable).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import SearchError
from repro.parallel.pool import CompletedEval, PersistentEvalPool
from repro.resilience.budget import BudgetExhausted, SearchBudget
from repro.search.cache import EvaluationCache
from repro.search.space import IntegerBox

__all__ = ["SpeculativeScheduler"]

Point = Tuple[int, ...]

DEMAND = 0
SEED = 1
CROSS = 2
PATTERN = 3
PATTERN_CROSS = 4


class SpeculativeScheduler:
    """Keeps a persistent pool saturated ahead of the pattern search.

    Parameters
    ----------
    pool:
        The persistent worker pool evaluations run on.
    cache:
        The search's evaluation cache; completions merge through
        ``cache.prime`` (counted as fresh evaluations).
    space:
        Feasible integer box (speculation outside it is never queued).
    merge_hook:
        Called as ``merge_hook(key, payload)`` for every merged solution
        payload — ``WindowObjective.absorb_remote`` plugs in here to
        retain solutions and feed the reuse engine / persistent store.
    on_evaluation:
        The search's checkpoint hook; fired (with the cache) after every
        merged fresh evaluation, speculative or demanded.
    budget / max_evaluations:
        Speculation stops (quietly) once either is exhausted; *demanded*
        evaluations keep the strict semantics of the sequential search,
        which checks both before asking the scheduler.
    bound:
        Certified lower bound on the objective; shipped with speculative
        tasks so workers can skip dominated ones against the incumbent.
    seed_for:
        Optional ``key -> queue-length matrix or None`` providing
        warm-start seeds (the reuse engine's nearest-neighbour seed); the
        matrix travels to workers by arena slot, never by pickle.
    max_inflight:
        Saturation target; defaults to ``2 * pool.workers`` so every
        worker has a task queued behind the one it is running.
    """

    def __init__(
        self,
        pool: PersistentEvalPool,
        cache: EvaluationCache,
        space: IntegerBox,
        merge_hook: Optional[Callable[[Point, dict], None]] = None,
        on_evaluation: Optional[Callable[[EvaluationCache], None]] = None,
        budget: Optional[SearchBudget] = None,
        max_evaluations: int = 10**9,
        bound: Optional[Callable[[Point], float]] = None,
        seed_for: Optional[Callable[[Point], Optional[np.ndarray]]] = None,
        max_inflight: Optional[int] = None,
    ):
        self._pool = pool
        self._cache = cache
        self._space = space
        self._merge_hook = merge_hook
        self._on_evaluation = on_evaluation
        self._budget = budget
        self._max_evaluations = max_evaluations
        self._bound = bound
        self._seed_for = seed_for
        self._max_inflight = (
            max_inflight if max_inflight is not None else 2 * pool.workers
        )
        self._frontier: List[Tuple[int, int, Point]] = []
        self._queued: Set[Point] = set()
        self._inflight: Dict[Point, int] = {}
        self._demanded: Set[Point] = set()
        self._speculation_open = True
        self._ticket = itertools.count()
        # Diagnostics surfaced by benchmarks / tests.
        self.speculated = 0
        self.demanded_fresh = 0
        self.cancelled = 0
        self.skipped = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # search-facing hooks (called by pattern_search)
    # ------------------------------------------------------------------
    def begin_sweep(self, point: Point, value: float, step: int) -> None:
        """A new exploratory sweep is starting around ``point``.

        Replaces the synchronous cross prefetch: queue the uncached
        ±step cross (CROSS) and, one rung lower, the pattern-move
        extrapolation each cross candidate would trigger if it improved
        (PATTERN).  Earlier speculation centred elsewhere is cancelled.
        """
        self._retarget(value)
        base = tuple(int(x) for x in point)
        for candidate in self._cross(base, step):
            self._enqueue(candidate, CROSS)
            extrapolation = self._space.clip(
                tuple(2 * c - b for c, b in zip(candidate, base))
            )
            self._enqueue(extrapolation, PATTERN)
        self._pump()

    def note_accept(
        self, new_base: Point, previous: Point, value: float, step: int
    ) -> None:
        """An exploratory/pattern move was accepted; re-centre speculation.

        The next demanded point is the pattern landing ``2b - p`` — queue
        it (SEED) and its cross (PATTERN_CROSS) so it is likely already
        in flight when the search asks.
        """
        self._retarget(value)
        landing = self._space.clip(
            tuple(2 * b - p for b, p in zip(new_base, previous))
        )
        self._enqueue(landing, SEED)
        for candidate in self._cross(landing, step):
            self._enqueue(candidate, PATTERN_CROSS)
        self._pump()

    def note_step(self, step: int) -> None:
        """The step was halved: speculation at the old step is stale."""
        self._cancel_frontier()
        self._pump()

    def seed_points(self, points: Sequence[Sequence[int]]) -> None:
        """Queue known-future evaluations (e.g. multistart start list)."""
        for point in points:
            self._enqueue(tuple(int(x) for x in point), SEED)
        self._pump()

    def demand(self, point: Point) -> None:
        """Block until ``point``'s value is merged into the cache.

        The search's evaluation choke point: if the point is already in
        flight its completion is awaited (merging everything else that
        arrives meanwhile); otherwise it is submitted immediately at
        DEMAND priority.  On return ``point in cache.values`` holds.
        """
        key = tuple(int(x) for x in point)
        self._absorb_ready()
        if key in self._cache.values:
            return
        self._demanded.add(key)
        self._discard_queued(key)
        while key not in self._cache.values:
            if key not in self._inflight:
                # Not in flight (or its speculative run was skipped /
                # lost): submit at demand priority, no bound hint.
                self._submit(key, speculative=False)
            done = self._pool.poll(timeout=None)
            if done is None:
                raise SearchError(
                    f"pool drained without completing demanded point {key}"
                )
            self._merge(done)
            self._refill()
        self._demanded.discard(key)

    def finish(self) -> None:
        """Drain every in-flight task and merge its result.  Idempotent.

        Called when the search ends (normally or on budget exhaustion):
        speculation already paid for is banked into the cache so
        best-so-far, checkpoints, and the persistent store see it.
        """
        self._speculation_open = False
        self._cancel_frontier()
        while self._inflight:
            done = self._pool.poll(timeout=None)
            if done is None:
                break
            self._merge(done)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _cross(self, point: Point, step: int) -> List[Point]:
        out = []
        for axis in range(self._space.dimensions):
            for direction in (+1, -1):
                candidate = list(point)
                candidate[axis] += direction * step
                candidate_t = tuple(candidate)
                if candidate_t in self._space:
                    out.append(candidate_t)
        return out

    def _retarget(self, incumbent: float) -> None:
        """New best value / neighbourhood: cancel stale speculation."""
        self._pool.set_incumbent(incumbent)
        self._cancel_frontier()
        self._absorb_ready()

    def _cancel_frontier(self) -> None:
        self.cancelled += len(self._queued)
        self._frontier.clear()
        self._queued.clear()

    def _discard_queued(self, key: Point) -> None:
        if key in self._queued:
            self._queued.discard(key)
            self._frontier = [
                entry for entry in self._frontier if entry[2] != key
            ]
            heapq.heapify(self._frontier)

    def _enqueue(self, key: Point, priority: int) -> None:
        if (
            key in self._cache.values
            or key in self._inflight
            or key in self._queued
        ):
            return
        self._queued.add(key)
        heapq.heappush(self._frontier, (priority, next(self._ticket), key))

    def _room(self) -> int:
        """Evaluations the caps still allow to be *started*."""
        committed = self._cache.evaluations + len(self._inflight)
        return max(0, self._max_evaluations - committed)

    def _submit(self, key: Point, speculative: bool) -> None:
        seed = self._seed_for(key) if self._seed_for is not None else None
        bound_hint = None
        if speculative and self._bound is not None:
            bound_hint = self._bound(key)
        eval_id = self._pool.submit(
            key, seed=seed, bound_hint=bound_hint, speculative=speculative
        )
        self._inflight[key] = eval_id
        if speculative:
            self.speculated += 1
        else:
            self.demanded_fresh += 1

    def _refill(self) -> None:
        """Top the pool up from the frontier, within budget and caps."""
        if not self._speculation_open:
            return
        while (
            self._frontier
            and self._pool.inflight < self._max_inflight
            and self._room() > 0
        ):
            if self._budget is not None:
                try:
                    self._budget.check(self._cache.evaluations)
                except BudgetExhausted:
                    # Quiet stop: the demand path re-raises with full
                    # best-so-far semantics on the search's next fresh
                    # evaluation.
                    self._speculation_open = False
                    self._cancel_frontier()
                    return
            _, _, key = heapq.heappop(self._frontier)
            self._queued.discard(key)
            if key in self._cache.values or key in self._inflight:
                continue
            self._submit(key, speculative=True)

    def _pump(self) -> None:
        self._absorb_ready()
        self._refill()

    def _absorb_ready(self) -> None:
        """Merge every completion that is already waiting, without blocking."""
        while self._inflight:
            done = self._pool.poll(timeout=0.0)
            if done is None:
                return
            self._merge(done)

    def _speculation_overflows(self) -> bool:
        """Would banking one more *speculative* result breach the caps?

        ``_room()`` stops speculation from being *started* past the
        budget, but a task already on a worker when the cap is reached
        still completes; banking it would hand checkpoints/best-so-far
        more evaluations than the budget allows (and than the sequential
        search could ever have performed).  Room is reserved for demanded
        in-flight points: the search asked for those while within budget,
        so they always merge.
        """
        reserved = sum(1 for key in self._inflight if key in self._demanded)
        if self._cache.evaluations + reserved >= self._max_evaluations:
            return True
        if self._budget is not None:
            try:
                self._budget.check(self._cache.evaluations)
            except BudgetExhausted:
                return True
        return False

    def _merge(self, done: CompletedEval) -> None:
        key = done.key
        self._inflight.pop(key, None)
        if done.status == "skipped":
            # Never evaluated: the incumbent proved the speculation
            # dominated.  Leave no trace — a later demand re-submits.
            self.skipped += 1
            return
        if (
            done.speculative
            and key not in self._demanded  # a demand is waiting on it
            and self._speculation_overflows()
        ):
            # Paid for but unbankable: the budget ran out while this was
            # on a worker.  Dropping it keeps the evaluation count (and
            # every checkpoint) within the cap the search promised.
            self.dropped += 1
            return
        if done.status == "fatal":
            detail = (done.payload or {}).get("error", "unknown")
            if key in self._demanded:
                raise SearchError(
                    f"pool worker failed evaluating windows {key}: {detail}"
                )
            # Speculative casualties are dropped; a demand would retry.
            return
        if self._cache.prime(key, done.value):
            if done.payload is not None and self._merge_hook is not None:
                self._merge_hook(key, done.payload)
            if self._on_evaluation is not None:
                self._on_evaluation(self._cache)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        """Speculation counters for benchmarks and parity diagnostics."""
        return {
            "speculated": self.speculated,
            "demanded_fresh": self.demanded_fresh,
            "cancelled": self.cancelled,
            "skipped": self.skipped,
            "dropped": self.dropped,
        }
