"""Message-switched network modelling (topology → queueing model).

* :class:`~repro.netmodel.topology.Topology`,
  :class:`~repro.netmodel.topology.Channel` — the physical network.
* :class:`~repro.netmodel.traffic.TrafficClass` — virtual channels.
* :func:`~repro.netmodel.builder.build_closed_network` — topology +
  classes → :class:`~repro.queueing.network.ClosedNetwork`.
* :mod:`~repro.netmodel.examples` — the thesis networks.
* :mod:`~repro.netmodel.generator` — seeded random instances.
"""

from repro.netmodel.builder import build_closed_network, source_station_name
from repro.netmodel.examples import (
    arpanet_fragment,
    canadian_four_class,
    canadian_topology,
    canadian_two_class,
    tandem_network,
)
from repro.netmodel.generator import (
    line_topology,
    random_mesh_topology,
    random_network,
    random_traffic_classes,
    ring_topology,
)
from repro.netmodel.routes import route_all_pairs, shortest_path
from repro.netmodel.spec import load_spec, network_from_spec, parse_spec
from repro.netmodel.topology import Channel, Duplex, Topology
from repro.netmodel.traffic import TrafficClass

__all__ = [
    "Topology",
    "Channel",
    "Duplex",
    "TrafficClass",
    "build_closed_network",
    "source_station_name",
    "shortest_path",
    "route_all_pairs",
    "parse_spec",
    "load_spec",
    "network_from_spec",
    "canadian_topology",
    "canadian_two_class",
    "canadian_four_class",
    "arpanet_fragment",
    "tandem_network",
    "ring_topology",
    "line_topology",
    "random_mesh_topology",
    "random_traffic_classes",
    "random_network",
]
