"""Message-switched network topologies (nodes and channels).

A topology is the physical layer of the thesis model: switching nodes
joined by communication channels.  Channels may be *half-duplex* — a single
transmission resource alternating between the two directions, modelled as
one FCFS queue shared by both directions (this sharing is what couples the
chains of the thesis examples) — or *full-duplex*, modelled as one queue
per direction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.errors import ModelError

__all__ = ["Duplex", "Channel", "Topology"]


class Duplex(enum.Enum):
    """Channel transmission modes."""

    HALF = "half"
    FULL = "full"


@dataclass(frozen=True)
class Channel:
    """A communication channel between two switching nodes.

    Parameters
    ----------
    name:
        Identifier, unique within a topology.
    node_a / node_b:
        The endpoints (order is irrelevant for half-duplex channels).
    capacity_bps:
        Transmission capacity in bits per second.
    duplex:
        Half (one shared queue) or full (one queue per direction).
    """

    name: str
    node_a: str
    node_b: str
    capacity_bps: float
    duplex: Duplex = Duplex.HALF

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("channel name must be non-empty")
        if self.node_a == self.node_b:
            raise ModelError(f"channel {self.name!r} connects a node to itself")
        if self.capacity_bps <= 0:
            raise ModelError(
                f"channel {self.name!r}: capacity must be positive, "
                f"got {self.capacity_bps}"
            )

    @property
    def endpoints(self) -> FrozenSet[str]:
        """The unordered endpoint pair."""
        return frozenset((self.node_a, self.node_b))

    def queue_name(self, from_node: str, to_node: str) -> str:
        """Name of the queueing station serving the given direction.

        Half-duplex channels expose a single station (the channel name);
        full-duplex channels expose one per direction.
        """
        if {from_node, to_node} != set(self.endpoints):
            raise ModelError(
                f"channel {self.name!r} does not join {from_node!r} and {to_node!r}"
            )
        if self.duplex is Duplex.HALF:
            return self.name
        return f"{self.name}:{from_node}->{to_node}"

    def service_time(self, message_bits: float) -> float:
        """Transmission time of a message of the given mean length."""
        if message_bits <= 0:
            raise ModelError(f"message length must be positive, got {message_bits}")
        return message_bits / self.capacity_bps


class Topology:
    """A network of switching nodes and channels.

    Parameters
    ----------
    nodes:
        Switching-node names.
    channels:
        The channels; endpoints must be declared nodes and names unique.
    """

    def __init__(self, nodes: Iterable[str], channels: Sequence[Channel]):
        self._nodes: Tuple[str, ...] = tuple(nodes)
        if len(set(self._nodes)) != len(self._nodes):
            raise ModelError("duplicate node names in topology")
        if not self._nodes:
            raise ModelError("topology needs at least one node")
        names = set()
        node_set = set(self._nodes)
        for channel in channels:
            if channel.name in names:
                raise ModelError(f"duplicate channel name {channel.name!r}")
            names.add(channel.name)
            for endpoint in channel.endpoints:
                if endpoint not in node_set:
                    raise ModelError(
                        f"channel {channel.name!r} endpoint {endpoint!r} "
                        "is not a declared node"
                    )
        self._channels: Tuple[Channel, ...] = tuple(channels)
        self._adjacency: Dict[str, List[Tuple[str, Channel]]] = {
            node: [] for node in self._nodes
        }
        for channel in self._channels:
            self._adjacency[channel.node_a].append((channel.node_b, channel))
            self._adjacency[channel.node_b].append((channel.node_a, channel))

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[str, ...]:
        """Node names in declaration order."""
        return self._nodes

    @property
    def channels(self) -> Tuple[Channel, ...]:
        """Channels in declaration order."""
        return self._channels

    def neighbors(self, node: str) -> List[str]:
        """Nodes adjacent to ``node``."""
        self._require_node(node)
        return [other for other, _channel in self._adjacency[node]]

    def channel_between(self, node_a: str, node_b: str) -> Channel:
        """The channel joining two nodes (raises if absent or ambiguous)."""
        self._require_node(node_a)
        self._require_node(node_b)
        matches = [
            channel
            for other, channel in self._adjacency[node_a]
            if other == node_b
        ]
        if not matches:
            raise ModelError(f"no channel between {node_a!r} and {node_b!r}")
        if len(matches) > 1:
            raise ModelError(
                f"multiple channels between {node_a!r} and {node_b!r}; "
                "look channels up by name"
            )
        return matches[0]

    def has_channel(self, node_a: str, node_b: str) -> bool:
        """True if some channel joins the two nodes."""
        try:
            self.channel_between(node_a, node_b)
            return True
        except ModelError:
            return False

    def validate_path(self, path: Sequence[str]) -> None:
        """Check that consecutive path nodes are joined by channels."""
        if len(path) < 2:
            raise ModelError("a path needs at least two nodes")
        for here, there in zip(path, path[1:]):
            self.channel_between(here, there)

    def path_channels(self, path: Sequence[str]) -> List[Channel]:
        """Channels traversed by a node path, in order."""
        self.validate_path(path)
        return [self.channel_between(a, b) for a, b in zip(path, path[1:])]

    def is_connected(self) -> bool:
        """True if every node is reachable from the first node."""
        seen = {self._nodes[0]}
        frontier = [self._nodes[0]]
        while frontier:
            node = frontier.pop()
            for other in self.neighbors(node):
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == len(self._nodes)

    def _require_node(self, node: str) -> None:
        if node not in self._adjacency:
            raise ModelError(f"unknown node {node!r}")

    def __repr__(self) -> str:
        return (
            f"Topology({len(self._nodes)} nodes, {len(self._channels)} channels)"
        )
