"""Shortest-path routing over topologies.

The thesis fixes each class's route by hand; for generated workloads and
user convenience this module provides Dijkstra routing with two weightings:

* ``"hops"`` — fewest channels;
* ``"delay"`` — smallest total transmission time for a reference message
  length (favours high-capacity channels).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Tuple

from repro.errors import ModelError
from repro.netmodel.topology import Channel, Topology

__all__ = ["shortest_path", "route_all_pairs"]


def _weight_function(metric: str, message_bits: float) -> Callable[[Channel], float]:
    if metric == "hops":
        return lambda channel: 1.0
    if metric == "delay":
        return lambda channel: message_bits / channel.capacity_bps
    raise ModelError(f"unknown routing metric {metric!r}; expected 'hops' or 'delay'")


def shortest_path(
    topology: Topology,
    source: str,
    destination: str,
    metric: str = "hops",
    message_bits: float = 1000.0,
) -> List[str]:
    """Shortest node path from ``source`` to ``destination``.

    Raises
    ------
    ModelError
        If no path exists or the endpoints are unknown/identical.
    """
    if source == destination:
        raise ModelError("source and destination must differ")
    weight = _weight_function(metric, message_bits)
    if source not in topology.nodes or destination not in topology.nodes:
        raise ModelError(f"unknown endpoint in ({source!r}, {destination!r})")

    distances: Dict[str, float] = {source: 0.0}
    previous: Dict[str, str] = {}
    heap: List[Tuple[float, str]] = [(0.0, source)]
    visited = set()
    while heap:
        dist, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == destination:
            break
        for neighbor in topology.neighbors(node):
            channel = topology.channel_between(node, neighbor)
            candidate = dist + weight(channel)
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                previous[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))

    if destination not in distances:
        raise ModelError(f"no path from {source!r} to {destination!r}")
    path = [destination]
    while path[-1] != source:
        path.append(previous[path[-1]])
    path.reverse()
    return path


def route_all_pairs(
    topology: Topology, metric: str = "hops", message_bits: float = 1000.0
) -> Dict[Tuple[str, str], List[str]]:
    """Shortest paths for every ordered node pair (small topologies)."""
    routes: Dict[Tuple[str, str], List[str]] = {}
    for source in topology.nodes:
        for destination in topology.nodes:
            if source == destination:
                continue
            routes[(source, destination)] = shortest_path(
                topology, source, destination, metric, message_bits
            )
    return routes
