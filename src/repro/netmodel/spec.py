"""Load network descriptions from JSON specifications.

Lets users bring their own networks to the CLI and library without
writing Python.  The format mirrors the thesis inputs:

.. code-block:: json

    {
      "nodes": ["A", "B", "C"],
      "channels": [
        {"name": "ab", "between": ["A", "B"], "capacity_bps": 50000,
         "duplex": "half"},
        {"name": "bc", "between": ["B", "C"], "capacity_bps": 25000}
      ],
      "classes": [
        {"name": "flow1", "path": ["A", "B", "C"], "arrival_rate": 18.0,
         "mean_message_bits": 1000, "window": 4}
      ]
    }

``duplex`` defaults to ``"half"``; ``mean_message_bits`` to 1000 (the
thesis value); ``window`` to the hop count.  Classes may instead give
``"route": "shortest"`` with ``"source"``/``"destination"`` to be routed
automatically.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Tuple, Union

from repro.errors import ModelError
from repro.netmodel.builder import build_closed_network
from repro.netmodel.routes import shortest_path
from repro.netmodel.topology import Channel, Duplex, Topology
from repro.netmodel.traffic import TrafficClass
from repro.queueing.network import ClosedNetwork

__all__ = ["parse_spec", "load_spec", "network_from_spec"]

SpecLike = Union[str, pathlib.Path, Dict[str, Any]]


def _require(mapping: Dict[str, Any], key: str, context: str) -> Any:
    if key not in mapping:
        raise ModelError(f"{context}: missing required key {key!r}")
    return mapping[key]


def _parse_channel(raw: Dict[str, Any], index: int) -> Channel:
    context = f"channel #{index}"
    name = raw.get("name", f"ch{index}")
    between = _require(raw, "between", context)
    if not isinstance(between, (list, tuple)) or len(between) != 2:
        raise ModelError(f"{context}: 'between' must list exactly two nodes")
    capacity = _require(raw, "capacity_bps", context)
    duplex_raw = raw.get("duplex", "half")
    try:
        duplex = Duplex(duplex_raw)
    except ValueError:
        raise ModelError(
            f"{context}: duplex must be 'half' or 'full', got {duplex_raw!r}"
        ) from None
    return Channel(
        name=str(name),
        node_a=str(between[0]),
        node_b=str(between[1]),
        capacity_bps=float(capacity),
        duplex=duplex,
    )


def _parse_class(
    raw: Dict[str, Any], index: int, topology: Topology
) -> TrafficClass:
    context = f"class #{index}"
    name = raw.get("name", f"class{index}")
    rate = _require(raw, "arrival_rate", context)
    bits = raw.get("mean_message_bits", 1000.0)
    window = raw.get("window")
    if "path" in raw:
        path = tuple(str(node) for node in raw["path"])
    elif raw.get("route") == "shortest":
        source = str(_require(raw, "source", context))
        destination = str(_require(raw, "destination", context))
        metric = raw.get("metric", "hops")
        path = tuple(
            shortest_path(topology, source, destination, metric=metric)
        )
    else:
        raise ModelError(
            f"{context}: give either 'path' or 'route': 'shortest' with "
            "'source'/'destination'"
        )
    return TrafficClass(
        name=str(name),
        path=path,
        arrival_rate=float(rate),
        mean_message_bits=float(bits),
        window=int(window) if window is not None else None,
    )


def parse_spec(spec: Dict[str, Any]) -> Tuple[Topology, Tuple[TrafficClass, ...]]:
    """Parse an in-memory spec dict into a topology and traffic classes."""
    if not isinstance(spec, dict):
        raise ModelError(f"spec must be a JSON object, got {type(spec).__name__}")
    nodes = _require(spec, "nodes", "spec")
    channels_raw = _require(spec, "channels", "spec")
    classes_raw = _require(spec, "classes", "spec")
    if not isinstance(nodes, list) or not nodes:
        raise ModelError("spec: 'nodes' must be a non-empty list")
    channels = [
        _parse_channel(raw, i) for i, raw in enumerate(channels_raw)
    ]
    topology = Topology([str(n) for n in nodes], channels)
    classes = tuple(
        _parse_class(raw, i, topology) for i, raw in enumerate(classes_raw)
    )
    if not classes:
        raise ModelError("spec: at least one traffic class is required")
    return topology, classes


def load_spec(path: Union[str, pathlib.Path]) -> Tuple[Topology, Tuple[TrafficClass, ...]]:
    """Load and parse a JSON spec file."""
    file_path = pathlib.Path(path)
    try:
        raw = json.loads(file_path.read_text())
    except FileNotFoundError:
        raise ModelError(f"spec file not found: {file_path}") from None
    except json.JSONDecodeError as exc:
        raise ModelError(f"spec file {file_path} is not valid JSON: {exc}") from None
    return parse_spec(raw)


def network_from_spec(spec: SpecLike) -> ClosedNetwork:
    """Build the closed queueing model directly from a spec (dict or path)."""
    if isinstance(spec, dict):
        topology, classes = parse_spec(spec)
    else:
        topology, classes = load_spec(spec)
    return build_closed_network(topology, classes)
