"""Canonical network examples from the thesis (and an ARPA-like extra).

**Topology reconstruction note.** The scanned thesis describes the Canadian
example only in prose: six switching nodes (Vancouver, Edmonton, Winnipeg,
Toronto, Montréal, Ottawa), seven half-duplex channels — channels 1–5 at
50 kbit/s, channels 6–7 at 25 kbit/s — FIFO queueing and 1000-bit
exponential messages (Figs. 4.5/4.10 are not legible in the microfiche).
The class routes *are* given exactly:

* class 1: Edmonton → Winnipeg → Toronto → Montréal → Ottawa  (4 hops)
* class 2: Montréal → Toronto → Winnipeg → Edmonton → Vancouver (4 hops)
* class 3: Vancouver → Edmonton, → Winnipeg → Montréal (3 hops)
* class 4: Toronto → Winnipeg (1 hop)

The channel set reconstructed here is the unique economical one consistent
with those routes, the "4 4 3 1" hop counts of Table 4.12 and the channel
count/capacities: trunk channels Edmonton–Winnipeg, Winnipeg–Toronto,
Toronto–Montréal, Winnipeg–Montréal and a spare Toronto–Ottawa at
50 kbit/s (channels 1–5), tail channels Montréal–Ottawa and
Edmonton–Vancouver at 25 kbit/s (channels 6–7).  Because the channels are
half-duplex, classes 1 and 2 share the three trunk queues in opposite
directions — the interaction the thesis studies.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.netmodel.builder import build_closed_network
from repro.netmodel.topology import Channel, Duplex, Topology
from repro.netmodel.traffic import TrafficClass
from repro.queueing.network import ClosedNetwork

__all__ = [
    "canadian_topology",
    "canadian_two_class",
    "canadian_four_class",
    "arpanet_topology",
    "arpanet_traffic",
    "arpanet_fragment",
    "tandem_network",
]

#: Mean message length used throughout the thesis examples (bits).
THESIS_MESSAGE_BITS = 1000.0

TRUNK_BPS = 50_000.0
TAIL_BPS = 25_000.0


def canadian_topology() -> Topology:
    """The six-node, seven-channel network of Figs. 4.5/4.10."""
    nodes = ("Vancouver", "Edmonton", "Winnipeg", "Toronto", "Montreal", "Ottawa")
    channels = (
        Channel("ch1", "Edmonton", "Winnipeg", TRUNK_BPS),
        Channel("ch2", "Winnipeg", "Toronto", TRUNK_BPS),
        Channel("ch3", "Toronto", "Montreal", TRUNK_BPS),
        Channel("ch4", "Winnipeg", "Montreal", TRUNK_BPS),
        Channel("ch5", "Toronto", "Ottawa", TRUNK_BPS),
        Channel("ch6", "Montreal", "Ottawa", TAIL_BPS),
        Channel("ch7", "Edmonton", "Vancouver", TAIL_BPS),
    )
    return Topology(nodes, channels)


def canadian_two_class(
    s1: float,
    s2: float,
    windows: Optional[Sequence[int]] = None,
) -> ClosedNetwork:
    """The 2-class example network of §4.5 (Fig. 4.5/4.6).

    Parameters
    ----------
    s1 / s2:
        Poisson arrival rates (msg/s) of classes 1 and 2.
    windows:
        Optional window overrides ``(E_1, E_2)``; default = hop counts.

    Returns
    -------
    ClosedNetwork
        Two chains over nine queues (7 channels + 2 source queues); the
        chains share the three trunk channels in opposite directions.
    """
    classes = two_class_traffic(s1, s2)
    return build_closed_network(canadian_topology(), classes, windows)


def two_class_traffic(s1: float, s2: float) -> Tuple[TrafficClass, TrafficClass]:
    """The two thesis traffic classes as :class:`TrafficClass` records."""
    return (
        TrafficClass(
            name="class1",
            path=("Edmonton", "Winnipeg", "Toronto", "Montreal", "Ottawa"),
            arrival_rate=s1,
            mean_message_bits=THESIS_MESSAGE_BITS,
        ),
        TrafficClass(
            name="class2",
            path=("Montreal", "Toronto", "Winnipeg", "Edmonton", "Vancouver"),
            arrival_rate=s2,
            mean_message_bits=THESIS_MESSAGE_BITS,
        ),
    )


def canadian_four_class(
    s1: float,
    s2: float,
    s3: float,
    s4: float,
    windows: Optional[Sequence[int]] = None,
) -> ClosedNetwork:
    """The 4-class example network of §4.5 (Fig. 4.10/4.11).

    Classes 1–2 as in the 2-class example; class 3 routes Vancouver →
    Edmonton → Winnipeg → Montréal, class 4 routes Toronto → Winnipeg.
    The model has 4 chains over 11 queues (Fig. 4.11: 7 channel queues,
    of which 6 are used, plus 4 source queues).
    """
    classes = four_class_traffic(s1, s2, s3, s4)
    return build_closed_network(canadian_topology(), classes, windows)


def four_class_traffic(
    s1: float, s2: float, s3: float, s4: float
) -> Tuple[TrafficClass, ...]:
    """The four thesis traffic classes as :class:`TrafficClass` records."""
    class1, class2 = two_class_traffic(s1, s2)
    return (
        class1,
        class2,
        TrafficClass(
            name="class3",
            path=("Vancouver", "Edmonton", "Winnipeg", "Montreal"),
            arrival_rate=s3,
            mean_message_bits=THESIS_MESSAGE_BITS,
        ),
        TrafficClass(
            name="class4",
            path=("Toronto", "Winnipeg"),
            arrival_rate=s4,
            mean_message_bits=THESIS_MESSAGE_BITS,
        ),
    )


def arpanet_topology() -> Topology:
    """The 8-node ARPANET-like fragment: 50 kbit/s full-duplex trunks."""
    nodes = ("SRI", "UCLA", "UTAH", "ILL", "MIT", "BBN", "HARV", "CMU")
    channels = (
        Channel("sri-ucla", "SRI", "UCLA", 50_000.0, Duplex.FULL),
        Channel("sri-utah", "SRI", "UTAH", 50_000.0, Duplex.FULL),
        Channel("ucla-utah", "UCLA", "UTAH", 50_000.0, Duplex.FULL),
        Channel("utah-ill", "UTAH", "ILL", 50_000.0, Duplex.FULL),
        Channel("ill-mit", "ILL", "MIT", 50_000.0, Duplex.FULL),
        Channel("mit-bbn", "MIT", "BBN", 50_000.0, Duplex.FULL),
        Channel("bbn-harv", "BBN", "HARV", 50_000.0, Duplex.FULL),
        Channel("harv-cmu", "HARV", "CMU", 50_000.0, Duplex.FULL),
        Channel("cmu-ill", "CMU", "ILL", 50_000.0, Duplex.FULL),
    )
    return Topology(nodes, channels)


def arpanet_traffic(
    rates: Optional[Sequence[float]] = None,
) -> Tuple[TrafficClass, ...]:
    """The four cross-country ARPANET traffic classes."""
    if rates is None:
        rates = (8.0, 8.0, 6.0, 6.0)
    if len(rates) != 4:
        raise ModelError(f"arpanet traffic expects 4 rates, got {len(rates)}")
    return (
        TrafficClass(
            "west-east",
            ("SRI", "UTAH", "ILL", "MIT", "BBN"),
            rates[0],
        ),
        TrafficClass(
            "east-west",
            ("BBN", "MIT", "ILL", "UTAH", "SRI"),
            rates[1],
        ),
        TrafficClass(
            "south-north",
            ("UCLA", "UTAH", "ILL", "CMU"),
            rates[2],
        ),
        TrafficClass(
            "north-south",
            ("HARV", "BBN", "MIT", "ILL"),
            rates[3],
        ),
    )


def arpanet_fragment(
    rates: Optional[Sequence[float]] = None,
    windows: Optional[Sequence[int]] = None,
) -> ClosedNetwork:
    """An ARPANET-like 8-node fragment with four cross-country classes.

    A richer playground than the thesis examples (Fig. 2.3 motivates it):
    eight IMP sites joined by 50 kbit/s full-duplex trunks, four traffic
    classes crossing the network in both directions.  Used by examples and
    scalability benchmarks; not a thesis experiment.
    """
    return build_closed_network(arpanet_topology(), arpanet_traffic(rates), windows)


def tandem_network(
    hops: int,
    arrival_rate: float,
    capacity_bps: float = 50_000.0,
    message_bits: float = THESIS_MESSAGE_BITS,
    window: Optional[int] = None,
) -> ClosedNetwork:
    """A single-class tandem of ``hops`` identical channels.

    The direct analogue of Kleinrock's p-hop model (§4.6): with one class
    there is no chain interaction, so the optimal window should approach
    the hop count — the property tested against
    :mod:`repro.core.kleinrock`.
    """
    if hops < 1:
        raise ModelError(f"hops must be >= 1, got {hops}")
    nodes = tuple(f"n{i}" for i in range(hops + 1))
    channels = tuple(
        Channel(f"hop{i}", f"n{i}", f"n{i + 1}", capacity_bps) for i in range(hops)
    )
    topology = Topology(nodes, channels)
    traffic = TrafficClass(
        name="flow",
        path=nodes,
        arrival_rate=arrival_rate,
        mean_message_bits=message_bits,
        window=window,
    )
    return build_closed_network(topology, (traffic,))
