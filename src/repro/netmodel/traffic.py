"""Traffic classes (virtual channels) of a message-switched network.

A traffic class is the thesis's unidirectional virtual channel: messages of
a given mean length arrive as a Poisson stream at a source node and follow
a fixed store-and-forward path to a destination node, subject to an
end-to-end window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ModelError

__all__ = ["TrafficClass"]


@dataclass(frozen=True)
class TrafficClass:
    """One flow-controlled traffic class.

    Parameters
    ----------
    name:
        Identifier, unique within a network model.
    path:
        Node sequence from source to destination (at least two nodes).
    arrival_rate:
        Poisson message arrival rate ``S_r`` (messages/second).
    mean_message_bits:
        Mean (exponential) message length in bits; the thesis examples use
        1000 bits for every class.
    window:
        End-to-end window ``E_r`` (outstanding messages); ``None`` defaults
        to the hop count when the queueing model is built.
    """

    name: str
    path: Tuple[str, ...]
    arrival_rate: float
    mean_message_bits: float = 1000.0
    window: Optional[int] = field(default=None)

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("traffic class name must be non-empty")
        if len(self.path) < 2:
            raise ModelError(
                f"class {self.name!r}: path must contain source and destination"
            )
        if len(set(self.path)) != len(self.path):
            raise ModelError(f"class {self.name!r}: path revisits a node")
        if self.arrival_rate <= 0:
            raise ModelError(
                f"class {self.name!r}: arrival rate must be positive, "
                f"got {self.arrival_rate}"
            )
        if self.mean_message_bits <= 0:
            raise ModelError(
                f"class {self.name!r}: mean message length must be positive"
            )
        if self.window is not None and self.window < 1:
            raise ModelError(
                f"class {self.name!r}: window must be >= 1, got {self.window}"
            )

    @property
    def source(self) -> str:
        """Source node of the virtual channel."""
        return self.path[0]

    @property
    def destination(self) -> str:
        """Destination (sink) node of the virtual channel."""
        return self.path[-1]

    @property
    def hops(self) -> int:
        """Number of channel hops on the path."""
        return len(self.path) - 1

    def with_rate(self, arrival_rate: float) -> "TrafficClass":
        """Copy with a different arrival rate (for load sweeps)."""
        return TrafficClass(
            name=self.name,
            path=self.path,
            arrival_rate=arrival_rate,
            mean_message_bits=self.mean_message_bits,
            window=self.window,
        )

    def with_window(self, window: Optional[int]) -> "TrafficClass":
        """Copy with a different end-to-end window."""
        return TrafficClass(
            name=self.name,
            path=self.path,
            arrival_rate=self.arrival_rate,
            mean_message_bits=self.mean_message_bits,
            window=window,
        )
