"""Random topology and workload generators.

Seeded generators for property-based tests and scalability benchmarks:
ring, line and random-mesh topologies plus random flow-controlled traffic
classes routed by shortest path.  Every function takes an explicit
``numpy.random.Generator`` (or seed) so results are reproducible.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ModelError
from repro.netmodel.builder import build_closed_network
from repro.netmodel.routes import shortest_path
from repro.netmodel.topology import Channel, Duplex, Topology
from repro.netmodel.traffic import TrafficClass
from repro.queueing.network import ClosedNetwork

__all__ = [
    "ring_topology",
    "line_topology",
    "random_mesh_topology",
    "random_traffic_classes",
    "random_network",
    "scale_fixture",
    "SCALE_PRESETS",
    "SCALE_FIXTURE_SEED",
]

SeedLike = Union[int, np.random.Generator, None]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def ring_topology(num_nodes: int, capacity_bps: float = 50_000.0) -> Topology:
    """A ring of ``num_nodes`` half-duplex channels."""
    if num_nodes < 3:
        raise ModelError("a ring needs at least 3 nodes")
    nodes = tuple(f"n{i}" for i in range(num_nodes))
    channels = tuple(
        Channel(f"ring{i}", nodes[i], nodes[(i + 1) % num_nodes], capacity_bps)
        for i in range(num_nodes)
    )
    return Topology(nodes, channels)


def line_topology(num_nodes: int, capacity_bps: float = 50_000.0) -> Topology:
    """A line (tandem) of ``num_nodes - 1`` half-duplex channels."""
    if num_nodes < 2:
        raise ModelError("a line needs at least 2 nodes")
    nodes = tuple(f"n{i}" for i in range(num_nodes))
    channels = tuple(
        Channel(f"line{i}", nodes[i], nodes[i + 1], capacity_bps)
        for i in range(num_nodes - 1)
    )
    return Topology(nodes, channels)


def random_mesh_topology(
    num_nodes: int,
    extra_edges: int = 2,
    capacity_choices: Sequence[float] = (25_000.0, 50_000.0),
    seed: SeedLike = None,
) -> Topology:
    """A connected random mesh: a random spanning tree plus extra chords.

    Parameters
    ----------
    num_nodes:
        Number of switching nodes (>= 2).
    extra_edges:
        Chords added beyond the spanning tree (clipped to the complete
        graph).
    capacity_choices:
        Channel capacities drawn uniformly from this set.
    seed:
        Seed or generator for reproducibility.
    """
    if num_nodes < 2:
        raise ModelError("a mesh needs at least 2 nodes")
    rng = _rng(seed)
    nodes = tuple(f"n{i}" for i in range(num_nodes))
    edges: List[Tuple[int, int]] = []
    present = set()
    # Random spanning tree: attach each node to a random earlier node.
    for i in range(1, num_nodes):
        j = int(rng.integers(0, i))
        edges.append((j, i))
        present.add((j, i))
    max_extra = num_nodes * (num_nodes - 1) // 2 - len(edges)
    for _ in range(min(extra_edges, max_extra)):
        while True:
            a, b = sorted(rng.choice(num_nodes, size=2, replace=False).tolist())
            if (a, b) not in present:
                present.add((a, b))
                edges.append((a, b))
                break
    channels = tuple(
        Channel(
            f"e{k}",
            nodes[a],
            nodes[b],
            float(rng.choice(list(capacity_choices))),
        )
        for k, (a, b) in enumerate(edges)
    )
    return Topology(nodes, channels)


def random_traffic_classes(
    topology: Topology,
    num_classes: int,
    rate_range: Tuple[float, float] = (5.0, 25.0),
    message_bits: float = 1000.0,
    seed: SeedLike = None,
) -> Tuple[TrafficClass, ...]:
    """Random source/destination classes routed by fewest hops."""
    if num_classes < 1:
        raise ModelError("need at least one traffic class")
    rng = _rng(seed)
    nodes = list(topology.nodes)
    if len(nodes) < 2:
        raise ModelError("topology too small for traffic generation")
    classes = []
    for k in range(num_classes):
        source, destination = rng.choice(len(nodes), size=2, replace=False)
        path = shortest_path(topology, nodes[int(source)], nodes[int(destination)])
        rate = float(rng.uniform(*rate_range))
        classes.append(
            TrafficClass(
                name=f"class{k + 1}",
                path=tuple(path),
                arrival_rate=rate,
                mean_message_bits=message_bits,
            )
        )
    return tuple(classes)


def random_network(
    num_nodes: int = 8,
    num_classes: int = 3,
    extra_edges: int = 3,
    seed: SeedLike = None,
    windows: Optional[Sequence[int]] = None,
) -> ClosedNetwork:
    """A complete random closed network: mesh topology + random classes."""
    rng = _rng(seed)
    topology = random_mesh_topology(num_nodes, extra_edges, seed=rng)
    classes = random_traffic_classes(topology, num_classes, seed=rng)
    return build_closed_network(topology, classes, windows)


#: The internet-scale fixture family (ROADMAP: thesis-scale topologies at
#: interactive speed).  Node/chain counts per tier; ``full`` is the
#: 1000-node / 500-chain target the scale benchmarks dimension.
SCALE_PRESETS = {
    "small": {"num_nodes": 50, "num_classes": 25, "extra_edges": 25},
    "medium": {"num_nodes": 250, "num_classes": 120, "extra_edges": 125},
    "full": {"num_nodes": 1000, "num_classes": 500, "extra_edges": 500},
}

#: Fixed seed of the canonical scale fixtures: every benchmark, test and
#: CI job that says "the 1000-node network" means this seed's draw.
SCALE_FIXTURE_SEED = 20_26


def scale_fixture(
    preset: str = "full",
    seed: SeedLike = SCALE_FIXTURE_SEED,
    windows: Optional[Sequence[int]] = None,
) -> ClosedNetwork:
    """A canonical seeded large network from :data:`SCALE_PRESETS`.

    ``numpy.random.Generator`` (PCG64) draws are stable across platforms
    and numpy releases for the integer/choice/uniform calls used here, so
    the same (preset, seed) pair names the same network everywhere — the
    property tests pin a digest of the ``full`` fixture's route structure
    to keep that contract honest.
    """
    if preset not in SCALE_PRESETS:
        raise ModelError(
            f"unknown scale preset {preset!r}; expected one of "
            f"{sorted(SCALE_PRESETS)}"
        )
    return random_network(seed=seed, windows=windows, **SCALE_PRESETS[preset])
