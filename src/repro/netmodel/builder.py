"""Build closed multichain queueing models from network descriptions.

This is the modelling step of thesis §4.5: each channel becomes an FCFS
single-server queue (half-duplex channels yield *one* queue shared by both
directions; full-duplex channels one per direction), and each traffic class
becomes a closed cyclic chain whose population is its end-to-end window.
The chain is closed by the class's *source queue* — an FCFS queue with
mean service time ``1/S_r`` modelling the Poisson source and the
acknowledgement-driven admission throttling ("reentrant queue from sink to
source", §3.4; queues 8–9 of Fig. 4.6 and 8–11 of Fig. 4.11).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ModelError
from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficClass
from repro.queueing.chain import ClosedChain
from repro.queueing.network import ClosedNetwork
from repro.queueing.station import Station

__all__ = ["build_closed_network", "source_station_name"]


def source_station_name(traffic_class: TrafficClass) -> str:
    """Name of the source queue modelling a traffic class's arrivals."""
    return f"src:{traffic_class.name}"


def build_closed_network(
    topology: Topology,
    classes: Sequence[TrafficClass],
    windows: Optional[Sequence[int]] = None,
) -> ClosedNetwork:
    """Assemble the closed multichain model of a flow-controlled network.

    Parameters
    ----------
    topology:
        The physical network.
    classes:
        The traffic classes; each path is validated against the topology.
    windows:
        Optional per-class window overrides; entries of ``None`` (or an
        omitted argument) fall back to the class's own ``window`` attribute
        and finally to its hop count (the Kleinrock rule).

    Returns
    -------
    ClosedNetwork
        Stations: one per half-duplex channel or full-duplex direction
        actually used, plus one source queue per class.  Chains: one per
        class, source queue first.
    """
    if not classes:
        raise ModelError("need at least one traffic class")
    names = set()
    for traffic_class in classes:
        if traffic_class.name in names:
            raise ModelError(f"duplicate traffic class name {traffic_class.name!r}")
        names.add(traffic_class.name)

    if windows is not None and len(windows) != len(classes):
        raise ModelError(
            f"got {len(windows)} window overrides for {len(classes)} classes"
        )

    stations: Dict[str, Station] = {}
    chains: List[ClosedChain] = []

    for k, traffic_class in enumerate(classes):
        channels = topology.path_channels(traffic_class.path)
        source_name = source_station_name(traffic_class)
        if source_name in stations:
            raise ModelError(f"station name collision on {source_name!r}")
        stations[source_name] = Station.fcfs(source_name)

        visits = [source_name]
        services = [1.0 / traffic_class.arrival_rate]
        for (from_node, to_node), channel in zip(
            zip(traffic_class.path, traffic_class.path[1:]), channels
        ):
            queue = channel.queue_name(from_node, to_node)
            if queue not in stations:
                stations[queue] = Station.fcfs(queue)
            visits.append(queue)
            services.append(channel.service_time(traffic_class.mean_message_bits))

        if windows is not None and windows[k] is not None:
            window = int(windows[k])
        elif traffic_class.window is not None:
            window = traffic_class.window
        else:
            window = traffic_class.hops
        if window < 1:
            raise ModelError(
                f"class {traffic_class.name!r}: window must be >= 1, got {window}"
            )

        chains.append(
            ClosedChain(
                name=traffic_class.name,
                visits=tuple(visits),
                service_times=tuple(services),
                population=window,
                source_station=source_name,
            )
        )

    return ClosedNetwork.build(tuple(stations.values()), chains)
