"""Exact Mean Value Analysis for a single closed chain.

Implements the classical single-chain recursion (thesis eqs. 4.1–4.4):

    t_i(D) = G_i * (1 + N_i(D-1))        (arrival theorem; queueing stations)
    t_i(D) = G_i                          (delay stations)
    lambda(D) = D / sum_i t_i(D)          (Little, chain)
    N_i(D) = lambda(D) * t_i(D)           (Little, queue)

starting from ``N_i(0) = 0``.  This recursion is exact for product-form
networks.  It is used standalone (Gordon–Newell class networks) and as the
auxiliary single-chain subproblem inside the thesis multichain heuristic,
which needs the *last two* population steps to form the queue-length
increment ``sigma_i = N_i(D) - N_i(D-1)`` (eq. 4.12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ModelError

__all__ = ["SingleChainTrace", "solve_single_chain"]


@dataclass(frozen=True)
class SingleChainTrace:
    """Full population-by-population output of the single-chain recursion.

    Index ``d`` of each array corresponds to population ``d`` (``d = 0`` is
    the empty network).

    Attributes
    ----------
    demands:
        ``(L,)`` service demands the recursion was run with.
    queue_lengths:
        ``(D+1, L)`` — ``queue_lengths[d, i]`` is ``N_i(d)``.
    waiting_times:
        ``(D+1, L)`` — ``waiting_times[d, i]`` is ``t_i(d)`` (zero row at
        ``d = 0``).
    throughputs:
        ``(D+1,)`` — ``throughputs[d]`` is ``lambda(d)``.
    """

    demands: np.ndarray
    queue_lengths: np.ndarray
    waiting_times: np.ndarray
    throughputs: np.ndarray

    @property
    def population(self) -> int:
        """The population the recursion was run up to."""
        return self.queue_lengths.shape[0] - 1

    def increment(self, population: Optional[int] = None) -> np.ndarray:
        """Queue-length increments ``sigma_i = N_i(D) - N_i(D-1)``.

        This is thesis eq. (4.12): the estimated change in mean queue length
        when the chain population drops by one customer.  For ``D = 0`` the
        increment is identically zero.
        """
        d = self.population if population is None else population
        if not 0 <= d <= self.population:
            raise ValueError(f"population {d} out of range 0..{self.population}")
        if d == 0:
            return np.zeros_like(self.demands)
        return self.queue_lengths[d] - self.queue_lengths[d - 1]


def solve_single_chain(
    demands: Sequence[float],
    population: int,
    delay_station: Optional[Sequence[bool]] = None,
) -> SingleChainTrace:
    """Run exact single-chain MVA up to ``population`` customers.

    Parameters
    ----------
    demands:
        Mean service demand per cycle at each station (seconds).  Stations
        with zero demand are simply carried through with zero results.
    population:
        Chain population ``D >= 0``.
    delay_station:
        Optional boolean mask marking infinite-server stations, whose
        waiting time is their demand regardless of congestion.

    Returns
    -------
    SingleChainTrace
        The complete recursion, populations ``0..D``.
    """
    demand_arr = np.asarray(demands, dtype=float)
    if demand_arr.ndim != 1:
        raise ModelError(f"demands must be one-dimensional, got shape {demand_arr.shape}")
    if np.any(demand_arr < 0):
        raise ModelError("service demands must be non-negative")
    if population < 0:
        raise ModelError(f"population must be >= 0, got {population}")

    num_stations = demand_arr.shape[0]
    if delay_station is None:
        delay_mask = np.zeros(num_stations, dtype=bool)
    else:
        delay_mask = np.asarray(delay_station, dtype=bool)
        if delay_mask.shape != (num_stations,):
            raise ModelError("delay_station mask must match demands in length")

    queue_lengths = np.zeros((population + 1, num_stations))
    waiting_times = np.zeros((population + 1, num_stations))
    throughputs = np.zeros(population + 1)

    queueing = ~delay_mask
    for d in range(1, population + 1):
        wait = np.where(
            queueing, demand_arr * (1.0 + queue_lengths[d - 1]), demand_arr
        )
        total_wait = wait.sum()
        if total_wait <= 0:
            # All demands are zero: customers circulate instantaneously.
            throughputs[d] = float("inf")
            continue
        lam = d / total_wait
        throughputs[d] = lam
        waiting_times[d] = wait
        queue_lengths[d] = lam * wait

    return SingleChainTrace(
        demands=demand_arr,
        queue_lengths=queue_lengths,
        waiting_times=waiting_times,
        throughputs=throughputs,
    )
