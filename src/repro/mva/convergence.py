"""Iteration control for fixed-point solvers.

The thesis heuristic (§4.2 STEP 6) iterates until "the stopping condition
(e.g. convergence criterion) is met"; the APL program uses the Euclidean
norm of the change in class throughputs (``CRIT`` in ``FCT``).  This module
centralises that policy — tolerance, iteration budget, optional damping —
so every iterative solver in :mod:`repro.mva` behaves consistently.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConvergenceError, ConvergenceWarning, ModelError

__all__ = ["IterationControl"]


@dataclass(frozen=True)
class IterationControl:
    """Policy for a fixed-point iteration.

    Parameters
    ----------
    tolerance:
        Convergence threshold on the Euclidean norm of the change in the
        iterate (class throughput vector for the MVA heuristics).
    max_iterations:
        Hard budget; behaviour on exhaustion is set by ``raise_on_failure``.
    damping:
        New iterate = ``damping * proposed + (1-damping) * previous``.
        ``1.0`` (default) reproduces the undamped thesis iteration; values
        in ``(0, 1)`` help strongly coupled networks converge.
    raise_on_failure:
        If True, exhausting the budget raises
        :class:`~repro.errors.ConvergenceError`; if False the solver returns
        its last iterate flagged ``converged=False``.
    """

    tolerance: float = 1e-8
    max_iterations: int = 10_000
    damping: float = 1.0
    raise_on_failure: bool = False

    def __post_init__(self) -> None:
        if self.tolerance <= 0:
            raise ModelError(f"tolerance must be positive, got {self.tolerance}")
        if self.max_iterations < 1:
            raise ModelError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if not 0.0 < self.damping <= 1.0:
            raise ModelError(f"damping must be in (0, 1], got {self.damping}")

    def residual(self, current: np.ndarray, previous: np.ndarray) -> float:
        """Euclidean norm of the iterate change (the APL ``CRIT``)."""
        return float(np.linalg.norm(np.asarray(current) - np.asarray(previous)))

    def has_converged(self, current: np.ndarray, previous: np.ndarray) -> bool:
        """True when the residual falls below the tolerance."""
        return self.residual(current, previous) < self.tolerance

    def apply_damping(self, proposed: np.ndarray, previous: np.ndarray) -> np.ndarray:
        """Blend the proposed iterate with the previous one."""
        if self.damping >= 1.0:
            return proposed
        return self.damping * proposed + (1.0 - self.damping) * previous

    def on_exhausted(self, solver: str, iterations: int, residual: float) -> None:
        """Handle budget exhaustion according to ``raise_on_failure``.

        When not raising, a :class:`~repro.errors.ConvergenceWarning` is
        emitted so the non-converged iterate is never returned silently;
        the ``converged=False`` flag on the solution carries the same fact
        programmatically.
        """
        if self.raise_on_failure:
            raise ConvergenceError(
                f"{solver} did not converge within {iterations} iterations "
                f"(residual {residual:.3e} > tolerance {self.tolerance:.3e})",
                iterations=iterations,
                residual=residual,
            )
        warnings.warn(
            f"{solver} did not converge within its {self.max_iterations}-"
            "iteration budget; returning the last (non-converged) iterate",
            ConvergenceWarning,
            stacklevel=3,
        )

    def damped(self, damping: float) -> "IterationControl":
        """A copy of this policy with a different damping factor."""
        return replace(self, damping=damping)
