"""Warm-start seeds for the iterative MVA fixed points.

A WINDIM pattern search evaluates dense clouds of *adjacent* window
vectors — ``E``, ``E ± step·e_r`` — and the converged mean queue lengths
of one vector are an excellent initial iterate for its neighbours: the
fixed point is a contraction near its solution, so starting close cuts
the iterations-to-converge without moving the converged values (the
stopping criterion is unchanged, so any admissible start lands within the
same throughput-norm tolerance of the same fixed point).

:func:`validate_warm_start` is the shared gate every iterative solver
(:func:`~repro.mva.heuristic.solve_mva_heuristic`,
:func:`~repro.mva.schweitzer.solve_schweitzer`,
:func:`~repro.mva.linearizer.solve_linearizer`) runs a caller-supplied
seed through.  It is deliberately forgiving about *values* — a seed from
a neighbouring population vector has row sums matching the neighbour's
windows, which is fine for an initial iterate — but strict about
*structure*: shape, finiteness, and the invariants the solvers rely on
(no mass on unvisited stations, no mass on empty chains, no negative
queue lengths).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.queueing.network import ClosedNetwork

__all__ = ["validate_warm_start"]


def validate_warm_start(network: ClosedNetwork, warm_start) -> np.ndarray:
    """Validate and normalise a queue-length seed for ``network``.

    Parameters
    ----------
    network:
        The network about to be solved.
    warm_start:
        ``(R, L)`` array-like of mean queue lengths, typically the
        ``queue_lengths`` of a converged solution at a nearby population
        vector.

    Returns
    -------
    numpy.ndarray
        A fresh ``(R, L)`` float array safe to use as the initial
        iterate: negatives clipped to zero, unvisited stations and
        zero-population chains zeroed (their queue lengths must stay
        identically zero throughout a solve).

    Raises
    ------
    ModelError
        If the seed has the wrong shape or non-finite entries.
    """
    arr = np.asarray(warm_start, dtype=float)
    if arr.shape != network.demands.shape:
        raise ModelError(
            f"warm_start has shape {arr.shape}; expected "
            f"{network.demands.shape} (chains x stations)"
        )
    if not np.all(np.isfinite(arr)):
        raise ModelError("warm_start contains non-finite queue lengths")
    seed = np.where(network.visit_counts > 0, np.clip(arr, 0.0, None), 0.0)
    seed[network.populations <= 0, :] = 0.0
    return seed
