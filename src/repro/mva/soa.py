"""Cross-network SoA batching: solve B networks in one dense tensor pass.

A window sweep (or a multistart campaign's batch of candidate windows)
evaluates the *same topology* under B different population vectors, and
today each evaluation is a separate fixed-point solve — B Python loops,
B × iterations NumPy dispatches.  Every array in those solves has the
same ``(R, L)`` shape, so the whole sweep packs into structure-of-arrays
``(B, R, L)`` tensors and the heuristic/Schweitzer iteration advances
all B networks simultaneously: one ``sum``/``where``/multiply per step
instead of B, with per-network convergence masking (a network's solution
is snapshotted the moment *its* residual crosses the tolerance and its
rows are compacted out of the live tensors — networks never interact,
so the batch only ever pays for unfinished work).

Parity contract
---------------
For a **shared-topology pack** (:func:`pack_windows` — the sweep and
``batch_solve`` case) the batched iteration performs the same
floating-point operations in the same order as the serial dense solver:

* elementwise steps broadcast verbatim;
* reductions over stations are per-row pairwise sums of the same length;
* reductions over chains have the same reduction length R per element;
* the increments recursion is row-independent, so flattening to
  ``(B·R, L)`` reuses :func:`repro.mva.heuristic.batched_increments`
  bit-for-bit;
* each network's stopping decision uses ``control.residual`` on its own
  contiguous ``(R,)`` throughput slice.

Results are therefore **bit-identical** to calling the serial solver per
network (asserted by ``tests/mva/test_soa.py``).  For a **padded
heterogeneous pack** (:func:`pack_networks`) the padding changes pairwise
summation block boundaries, so agreement is to the 1e-8 parity band
instead.

The ``"compiled"`` backend composes with both pack shapes: with numba
importable a whole pack is solved by one compiled pack kernel
(:func:`repro.mva.compiled.heuristic_pack_sweep` — each network advanced
serially *inside* the JIT call, so there is no cache-thrash regime and
auto-engagement needs no crossover there; results match serial
compiled-tier solves), and without numba the flattened increments
recursion delegates through :func:`repro.mva.compiled.
compiled_increments` verbatim, keeping the tier bit-identical to
``"vectorized"``.

:func:`solve_windows_batched` batches one topology under many windows;
:func:`solve_networks_batched` batches *mixed* topologies through padded
heterogeneous packs — the campaign-layer entry point used by
:meth:`repro.core.objective.WindowObjective.batch_solve_networks` and
:func:`repro.analysis.sweeps.power_curve`.  Automatic engagement of
either path is decided by :mod:`repro.mva.autobatch` (a calibrated
machine-specific crossover, not a constant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import is_dense, resolve_backend
from repro.errors import ModelError
from repro.mva.convergence import IterationControl
from repro.queueing.network import ClosedNetwork
from repro.solution import NetworkSolution

__all__ = [
    "WindowPack",
    "pack_windows",
    "pack_networks",
    "solve_packed",
    "solve_windows_batched",
    "solve_networks_batched",
    "BATCHABLE_SOLVERS",
]

#: Named solvers with a batched SoA fixed point.  (Linearizer's nested
#: per-chain subproblems and the exact solvers do not batch this way.)
BATCHABLE_SOLVERS = ("mva-heuristic", "schweitzer")

#: Soft cap on ``B x R x L`` elements per packed solve.  The iteration
#: carries ~6 dense tensors of that shape, so 4M doubles keeps peak
#: batch memory around 200 MB; larger window lists are solved in chunks
#: (chunking is invisible: networks in a pack never interact, so a
#: chunked solve is the same floating-point program).  On a tiny sweep
#: network this still allows tens of thousands of windows per chunk.
SOA_ELEMENT_BUDGET = 4_000_000

# Automatic engagement of the batched pass (which per-network sizes
# win, and when the compiled pack kernel applies) is decided by
# repro.mva.autobatch — a crossover calibrated per machine, replacing
# the PR 8 ``SOA_DENSE_LIMIT`` constant.  Calling the solve functions
# below directly is always honoured regardless of that decision.


@dataclass(frozen=True)
class WindowPack:
    """B networks stacked into dense structure-of-arrays tensors.

    ``demands``/``visit_mask`` have shape ``(1, R, L)`` for shared-topology
    packs (broadcast over the batch — no B× memory copy) or ``(B, R, L)``
    for heterogeneous packs; ``delay_mask`` is ``(1, L)`` or ``(B, L)``
    correspondingly.  ``populations`` is always dense ``(B, R)`` — it is
    what varies across a sweep.  ``chain_counts``/``station_counts`` hold
    each network's true (un-padded) dimensions.
    """

    networks: Tuple[ClosedNetwork, ...]
    demands: np.ndarray
    visit_mask: np.ndarray
    populations: np.ndarray
    delay_mask: np.ndarray
    chain_counts: Tuple[int, ...]
    station_counts: Tuple[int, ...]
    shared: bool

    @property
    def batch(self) -> int:
        return len(self.networks)

    @property
    def chains(self) -> int:
        return int(self.populations.shape[1])

    @property
    def stations(self) -> int:
        return int(self.demands.shape[2])


def pack_windows(
    network: ClosedNetwork, windows: Sequence[Sequence[int]]
) -> WindowPack:
    """Pack one topology under B window (population) vectors.

    This is the sweep/campaign case: demands, visit counts and station
    kinds are shared (stored once, broadcast over the batch), only the
    populations differ.  No padding is involved, so the batched solve is
    bit-identical to the serial one.
    """
    if not windows:
        raise ModelError("pack_windows needs at least one window vector")
    candidates = tuple(network.with_populations(w) for w in windows)
    populations = np.stack([c.populations for c in candidates]).astype(np.int64)
    delay = np.asarray([s.is_delay for s in network.stations], dtype=bool)
    return WindowPack(
        networks=candidates,
        demands=network.demands[None, :, :],
        visit_mask=(network.visit_counts > 0)[None, :, :],
        populations=populations,
        delay_mask=delay[None, :],
        chain_counts=(network.num_chains,) * len(candidates),
        station_counts=(network.num_stations,) * len(candidates),
        shared=True,
    )


def pack_networks(networks: Sequence[ClosedNetwork]) -> WindowPack:
    """Pack B arbitrary networks, zero-padding to the largest (R, L).

    Padded chains carry zero population and zero demand (inert rows);
    padded stations carry zero demand and are never visited.  Padding
    changes pairwise-summation block boundaries, so batched results agree
    with serial ones to the 1e-8 parity band rather than bit-for-bit.
    """
    if not networks:
        raise ModelError("pack_networks needs at least one network")
    networks = tuple(networks)
    chains = max(n.num_chains for n in networks)
    stations = max(n.num_stations for n in networks)
    batch = len(networks)
    demands = np.zeros((batch, chains, stations))
    visit = np.zeros((batch, chains, stations), dtype=bool)
    populations = np.zeros((batch, chains), dtype=np.int64)
    delay = np.zeros((batch, stations), dtype=bool)
    for b, net in enumerate(networks):
        rb, lb = net.num_chains, net.num_stations
        demands[b, :rb, :lb] = net.demands
        visit[b, :rb, :lb] = net.visit_counts > 0
        populations[b, :rb] = net.populations
        delay[b, :lb] = [s.is_delay for s in net.stations]
    return WindowPack(
        networks=networks,
        demands=demands,
        visit_mask=visit,
        populations=populations,
        delay_mask=delay,
        chain_counts=tuple(n.num_chains for n in networks),
        station_counts=tuple(n.num_stations for n in networks),
        shared=False,
    )


def solve_windows_batched(
    network: ClosedNetwork,
    windows: Sequence[Sequence[int]],
    solver: str = "mva-heuristic",
    control: Optional[IterationControl] = None,
    backend: Optional[str] = None,
) -> List[NetworkSolution]:
    """Solve one topology under B window vectors in a single tensor pass.

    Returns one :class:`NetworkSolution` per window, in input order,
    bit-identical (for dense backends) to calling the named serial solver
    once per window with cold starts.  Window lists whose packed size
    would exceed :data:`SOA_ELEMENT_BUDGET` elements are solved in
    chunks, which changes nothing but peak memory.
    """
    windows = list(windows)
    per_network = network.num_chains * network.num_stations
    chunk = max(1, SOA_ELEMENT_BUDGET // max(1, per_network))
    if len(windows) <= chunk:
        return solve_packed(
            pack_windows(network, windows),
            solver=solver,
            control=control,
            backend=backend,
        )
    solutions: List[NetworkSolution] = []
    for start in range(0, len(windows), chunk):
        solutions.extend(
            solve_packed(
                pack_windows(network, windows[start : start + chunk]),
                solver=solver,
                control=control,
                backend=backend,
            )
        )
    return solutions


def solve_networks_batched(
    networks: Sequence[ClosedNetwork],
    solver: str = "mva-heuristic",
    control: Optional[IterationControl] = None,
    backend: Optional[str] = None,
) -> List[NetworkSolution]:
    """Solve B arbitrary (mixed-topology) networks in padded SoA chunks.

    The heterogeneous counterpart of :func:`solve_windows_batched`: the
    networks are zero-padded to a common ``(R, L)`` (see
    :func:`pack_networks`) and advanced together, agreeing with serial
    per-network solves to the 1e-8 parity band.  Batches whose padded
    size would exceed :data:`SOA_ELEMENT_BUDGET` elements are solved in
    chunks — networks in a pack never interact, so chunking changes only
    peak memory, never results.
    """
    networks = list(networks)
    if not networks:
        return []
    per_network = max(1, max(n.num_chains for n in networks)) * max(
        1, max(n.num_stations for n in networks)
    )
    chunk = max(1, SOA_ELEMENT_BUDGET // per_network)
    solutions: List[NetworkSolution] = []
    for start in range(0, len(networks), chunk):
        solutions.extend(
            solve_packed(
                pack_networks(networks[start : start + chunk]),
                solver=solver,
                control=control,
                backend=backend,
            )
        )
    return solutions


def solve_packed(
    pack: WindowPack,
    solver: str = "mva-heuristic",
    control: Optional[IterationControl] = None,
    backend: Optional[str] = None,
) -> List[NetworkSolution]:
    """Run a batched fixed point over every network in ``pack``."""
    if solver not in BATCHABLE_SOLVERS:
        raise ModelError(
            f"solver {solver!r} has no batched SoA kernel; "
            f"expected one of {BATCHABLE_SOLVERS}"
        )
    resolved = resolve_backend(backend)
    if not is_dense(resolved):
        raise ModelError(
            "SoA batching requires a dense kernel backend "
            f"('vectorized' or 'compiled'), not {resolved!r}"
        )
    if control is None:
        control = IterationControl()
    if resolved == "compiled":
        compiled = _compiled_pack(pack, solver, control)
        if compiled is not None:
            return compiled
    if solver == "mva-heuristic":
        return _batched_heuristic(pack, control, resolved)
    return _batched_schweitzer(pack, control, resolved)


# ----------------------------------------------------------------------
# shared machinery
# ----------------------------------------------------------------------

def _compiled_pack(
    pack: WindowPack, solver: str, control: IterationControl
) -> Optional[List[NetworkSolution]]:
    """Solve a whole pack through the JIT pack kernels (None = fall back).

    Engaged only with numba importable, a cold pack (packs never carry
    warm starts), and a plain :class:`IterationControl` — the same
    gating as :func:`repro.mva.compiled.full_sweep_engaged` for serial
    solves, so a batched compiled solve and B serial compiled solves run
    the same kernel on the same padded slices.  Broadcast (shared-
    topology) tensors are materialised per network: the pack kernel
    wants dense contiguous ``(B, R, L)`` input and the copy is paid once
    per solve, not per iteration.
    """
    from repro.mva import compiled

    if not compiled.full_sweep_engaged("compiled", control, None):
        return None
    batch, chains, stations = pack.batch, pack.chains, pack.stations
    populations = pack.populations.astype(float)
    active = np.broadcast_to(populations > 0, (batch, chains)).copy()
    _check_demands(pack, active)
    demands = np.ascontiguousarray(
        np.broadcast_to(pack.demands, (batch, chains, stations)), dtype=np.float64
    )
    visit = np.ascontiguousarray(
        np.broadcast_to(pack.visit_mask, (batch, chains, stations))
    )
    delay = np.ascontiguousarray(
        np.broadcast_to(pack.delay_mask, (batch, stations))
    )
    queue0 = np.ascontiguousarray(_balanced_start(pack, active))
    sweep = (
        compiled.heuristic_pack_sweep
        if solver == "mva-heuristic"
        else compiled.schweitzer_pack_sweep
    )
    swept = sweep(demands, pack.populations, delay, visit, queue0, control)
    if swept is None:  # pragma: no cover - numba vanished mid-process
        return None
    throughputs, queue_lengths, waiting, iters, converged, residuals = swept
    solutions: List[NetworkSolution] = []
    for b in range(batch):
        if not converged[b]:
            control.on_exhausted(solver, int(iters[b]), float(residuals[b]))
        solutions.append(
            _snapshot(
                pack, b, b, throughputs, queue_lengths, waiting,
                solver, int(iters[b]), bool(converged[b]), float(residuals[b]),
            )
        )
    return solutions


def _check_demands(pack: WindowPack, active: np.ndarray) -> None:
    """Reject active chains with zero visited demand (per network)."""
    visited = np.where(pack.visit_mask, pack.demands, 0.0).sum(axis=2)
    bad = active & np.broadcast_to(visited <= 0, active.shape)
    if bad.any():
        b, r = (int(v) for v in np.argwhere(bad)[0])
        raise ModelError(
            f"chain {pack.networks[b].chains[r].name!r} has zero total demand"
        )


def _balanced_start(pack: WindowPack, active: np.ndarray) -> np.ndarray:
    """Vectorized eq. (4.18) balanced start, bitwise equal to the serial one.

    ``population / stations.size`` is one IEEE double division either way,
    so filling the visited entries elementwise matches
    :func:`repro.mva.heuristic.initial_queue_lengths` to the last bit.
    """
    counts = pack.visit_mask.sum(axis=2)  # (Bd, R)
    safe = np.where(counts > 0, counts, 1)
    value = pack.populations.astype(float) / safe  # (B, R)
    fill = pack.visit_mask & active[:, :, None]  # (B, R, L)
    return np.where(fill, value[:, :, None], 0.0)


def _flat_increments_plan(
    demands: np.ndarray,
    populations: np.ndarray,
    delay_mask: np.ndarray,
    batch: int,
) -> "Tuple[tuple, np.ndarray]":
    """The loop-invariant increments plan for the flattened (B·R, L) view.

    Mirrors :func:`repro.mva.heuristic.plan_increments` exactly: ``alive``
    from raw demand positivity, a unit denominator offset for dead rows,
    capture masks per distinct population.  Returns ``(plan, flat_pops)``.
    Rebuilt after every batch compaction — each row's increment is
    captured on the recursion step matching its *own* population, so a
    plan over any row subset yields bit-identical per-row results.
    """
    chains = populations.shape[1]
    alive = np.broadcast_to(demands.sum(axis=2) > 0, (batch, chains)).ravel()
    flat_pops = populations.ravel()
    if delay_mask.shape[0] == 1:
        queueing = ~delay_mask  # (1, L): broadcasts over all rows
    else:
        queueing = np.repeat(~delay_mask, chains, axis=0)
    dead_offset = np.where(alive, 0.0, 1.0)
    finish_at = {
        d: (alive & (flat_pops == d))[:, None]
        for d in {int(p) for p in flat_pops}
        if d >= 1
    }
    max_population = int(flat_pops.max()) if flat_pops.size else 0
    return (queueing, dead_offset, finish_at, max_population), flat_pops


def _select_increments(resolved: str):
    from repro.mva.heuristic import batched_increments

    if resolved == "compiled":
        from repro.mva.compiled import compiled_increments

        return compiled_increments
    return batched_increments


def _snapshot(
    pack: WindowPack,
    index: int,
    row: int,
    throughputs: np.ndarray,
    queue_lengths: np.ndarray,
    waiting: np.ndarray,
    method: str,
    iterations: int,
    converged: bool,
    residual: float,
) -> NetworkSolution:
    """Slice compact ``row`` out of the batch state for network ``index``.

    ``index`` addresses the pack (network metadata, un-padded dims);
    ``row`` addresses the — possibly compacted — live tensors.
    """
    rb = pack.chain_counts[index]
    lb = pack.station_counts[index]
    return NetworkSolution(
        network=pack.networks[index],
        throughputs=throughputs[row, :rb].copy(),
        queue_lengths=queue_lengths[row, :rb, :lb].copy(),
        waiting_times=waiting[row, :rb, :lb].copy(),
        method=method,
        iterations=iterations,
        converged=converged,
        extras={"residual": residual},
    )


# ----------------------------------------------------------------------
# batched fixed points
# ----------------------------------------------------------------------

def _batched_heuristic(
    pack: WindowPack, control: IterationControl, resolved: str
) -> List[NetworkSolution]:
    """Thesis §4.2 heuristic advanced for all B networks at once.

    Converged networks are *compacted out* of the live tensors: every
    operation here is network-row independent (reductions stay within a
    network's own rows, the flattened increments recursion captures each
    row at its own population), so dropping finished rows — and
    rebuilding the flat plan for the survivors — leaves the remaining
    networks' floating-point trajectories bit-for-bit unchanged while
    the batch pays only for unfinished work (serial total work is
    ``sum(iters_b)``, a non-compacting batch would pay
    ``B * max(iters_b)``).
    """
    increments = _select_increments(resolved)
    batch, chains, stations = pack.batch, pack.chains, pack.stations
    demands = pack.demands  # (Bd, R, L), Bd in {1, B}
    delay = pack.delay_mask  # (Bd, L)
    visit = pack.visit_mask  # (Bd, R, L)
    int_pops = pack.populations  # (B, R) int64
    populations = int_pops.astype(float)
    active = np.broadcast_to(populations > 0, (batch, chains)).copy()
    _check_demands(pack, active)

    delay3 = delay[:, None, :]  # (Bd, 1, L)
    invisible = ~np.broadcast_to(visit, (batch, chains, stations))
    plan, flat_pops = _flat_increments_plan(demands, int_pops, delay, batch)

    queue_lengths = _balanced_start(pack, active)
    throughputs = np.zeros((batch, chains))
    waiting = np.zeros((batch, chains, stations))
    residuals = np.full(batch, float("inf"))
    indices = np.arange(batch)  # live row -> pack index
    solutions: List[Optional[NetworkSolution]] = [None] * batch

    iterations = 0
    for iterations in range(1, control.max_iterations + 1):
        live = indices.size
        # STEP 2 — own-chain increments, live networks flattened to rows.
        total_by_station = queue_lengths.sum(axis=1)  # (live, L)
        others = total_by_station[:, None, :] - queue_lengths
        scaled = np.where(delay3, demands, demands * (1.0 + others))
        sigma = increments(
            scaled.reshape(live * chains, stations),
            flat_pops,
            delay[0],
            plan,
        ).reshape(live, chains, stations)

        # STEP 3 — arrival theorem.
        seen = np.maximum(total_by_station[:, None, :] - sigma, 0.0)
        waiting = np.where(delay3, demands, demands * (1.0 + seen))
        waiting = np.where(invisible, 0.0, waiting)

        # STEP 4 — Little's law for chains.
        cycle_times = waiting.sum(axis=2)
        new_throughputs = np.where(
            active,
            populations / np.where(cycle_times > 0, cycle_times, 1.0),
            0.0,
        )
        new_throughputs = control.apply_damping(new_throughputs, throughputs)

        # STEP 5 — Little's law for queues.
        queue_lengths = new_throughputs[:, :, None] * waiting

        # STEP 6 — per-network stopping decision on contiguous slices,
        # snapshotting each network the moment it converges.
        done = []
        for row in range(live):
            residuals[row] = control.residual(
                new_throughputs[row], throughputs[row]
            )
            if residuals[row] < control.tolerance:
                solutions[int(indices[row])] = _snapshot(
                    pack, int(indices[row]), row,
                    new_throughputs, queue_lengths, waiting,
                    "mva-heuristic", iterations, True, residuals[row],
                )
                done.append(row)
        throughputs = new_throughputs
        if done:
            keep = np.ones(live, dtype=bool)
            keep[done] = False
            indices = indices[keep]
            if indices.size == 0:
                break
            populations = populations[keep]
            int_pops = int_pops[keep]
            active = active[keep]
            queue_lengths = queue_lengths[keep]
            throughputs = throughputs[keep]
            residuals = residuals[keep]
            if demands.shape[0] > 1:  # heterogeneous pack: per-net rows
                demands = demands[keep]
                delay = delay[keep]
                visit = visit[keep]
                delay3 = delay[:, None, :]
            invisible = ~np.broadcast_to(
                visit, (indices.size, chains, stations)
            )
            plan, flat_pops = _flat_increments_plan(
                demands, int_pops, delay, indices.size
            )

    for row in range(indices.size):
        control.on_exhausted("mva-heuristic", iterations, residuals[row])
        solutions[int(indices[row])] = _snapshot(
            pack, int(indices[row]), row, throughputs, queue_lengths, waiting,
            "mva-heuristic", iterations, False, residuals[row],
        )
    return solutions  # type: ignore[return-value]


def _batched_schweitzer(
    pack: WindowPack, control: IterationControl, resolved: str
) -> List[NetworkSolution]:
    """Schweitzer–Bard AMVA advanced for all B networks at once.

    Same convergence compaction as :func:`_batched_heuristic` (see its
    docstring for the bitwise-safety argument).
    """
    batch, chains, stations = pack.batch, pack.chains, pack.stations
    demands = pack.demands
    delay = pack.delay_mask
    visit = pack.visit_mask
    populations = pack.populations.astype(float)
    active = np.broadcast_to(populations > 0, (batch, chains)).copy()
    _check_demands(pack, active)

    delay3 = delay[:, None, :]
    invisible = ~np.broadcast_to(visit, (batch, chains, stations))
    inactive_offset = np.where(active, 0.0, 1.0)
    shrink = np.where(
        active, (populations - 1.0) / np.where(active, populations, 1.0), 1.0
    )

    queue_lengths = _balanced_start(pack, active)
    throughputs = np.zeros((batch, chains))
    waiting = np.zeros((batch, chains, stations))
    residuals = np.full(batch, float("inf"))
    indices = np.arange(batch)
    solutions: List[Optional[NetworkSolution]] = [None] * batch

    iterations = 0
    for iterations in range(1, control.max_iterations + 1):
        live = indices.size
        total_by_station = queue_lengths.sum(axis=1)
        seen = total_by_station[:, None, :] - queue_lengths * (
            1.0 - shrink[:, :, None]
        )
        waiting = np.where(delay3, demands, demands * (1.0 + seen))
        waiting = np.where(invisible, 0.0, waiting)

        cycle_times = waiting.sum(axis=2)
        new_throughputs = populations / (cycle_times + inactive_offset)
        new_throughputs = control.apply_damping(new_throughputs, throughputs)
        queue_lengths = new_throughputs[:, :, None] * waiting

        done = []
        for row in range(live):
            residuals[row] = control.residual(
                new_throughputs[row], throughputs[row]
            )
            if residuals[row] < control.tolerance:
                solutions[int(indices[row])] = _snapshot(
                    pack, int(indices[row]), row,
                    new_throughputs, queue_lengths, waiting,
                    "schweitzer", iterations, True, residuals[row],
                )
                done.append(row)
        throughputs = new_throughputs
        if done:
            keep = np.ones(live, dtype=bool)
            keep[done] = False
            indices = indices[keep]
            if indices.size == 0:
                break
            populations = populations[keep]
            active = active[keep]
            inactive_offset = inactive_offset[keep]
            shrink = shrink[keep]
            queue_lengths = queue_lengths[keep]
            throughputs = throughputs[keep]
            residuals = residuals[keep]
            if demands.shape[0] > 1:
                demands = demands[keep]
                delay = delay[keep]
                visit = visit[keep]
                delay3 = delay[:, None, :]
            invisible = ~np.broadcast_to(visit, (indices.size, chains, stations))

    for row in range(indices.size):
        control.on_exhausted("schweitzer", iterations, residuals[row])
        solutions[int(indices[row])] = _snapshot(
            pack, int(indices[row]), row, throughputs, queue_lengths, waiting,
            "schweitzer", iterations, False, residuals[row],
        )
    return solutions  # type: ignore[return-value]
