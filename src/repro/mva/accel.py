"""Aitken acceleration for warm-started MVA fixed points.

The thesis heuristic and Schweitzer-Bard both iterate an undamped
successive substitution ``q <- G(q)`` whose error contracts linearly with
some dominant ratio ``rho`` (empirically ~0.4 on the ARPANET fragment).
A warm start shrinks the *initial* error but cannot change ``rho`` — and
with a 1e-8 stopping tolerance the contraction rate, not the seed, is
what bounds iterations-to-converge.

This module supplies the missing half of the reuse engine's solver-level
win: Steffensen-style vector Aitken extrapolation.  After every
``period`` plain iterations the dominant error ratio is estimated from
two successive iterate differences (a Rayleigh quotient) and the
dominant geometric error mode is summed to its limit in one step:

    rho   = <dq_k, dq_{k-1}> / <dq_{k-1}, dq_{k-1}>
    q_acc = q_k + rho / (1 - rho) * dq_k

Extrapolation is only engaged for *warm-started* solves, for two
reasons.  First, safety: the Rayleigh estimate is only meaningful once
the iteration is in its asymptotic linear regime, which a converged
neighbour's queue lengths guarantee and a cold balanced start does not.
Second, the parity wall: the cold path must remain bit-for-bit the PR 3
iteration, so reuse can be switched off to reproduce every archived
trajectory exactly.

The extrapolated iterate is a linear combination of two valid iterates,
so per-chain mass conservation (``sum_i q_ri == E_r``, Little's law) is
preserved exactly; negatives (possible when ``rho`` is overestimated)
are clipped, and the stopping criterion still requires a *plain*
``G``-application's residual to fall below tolerance, so a converged
solution is always a genuine fixed-point evaluation within the same
tolerance as the cold solve.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["AitkenAccelerator"]


class AitkenAccelerator:
    """Periodic vector-Aitken extrapolation of a fixed-point iterate.

    Parameters
    ----------
    period:
        Plain iterations between extrapolations.  Two is the Steffensen
        minimum (an estimate needs two fresh differences) and empirically
        optimal here: the dominant mode is re-eliminated as soon as it is
        re-estimable.
    max_ratio:
        Reject estimates at or above this value; extrapolating a
        near-unit ratio would divide by almost zero and catapult the
        iterate far outside the contraction basin.
    """

    def __init__(self, period: int = 2, max_ratio: float = 0.95) -> None:
        self._period = max(2, int(period))
        self._max_ratio = float(max_ratio)
        self._previous: Optional[np.ndarray] = None
        self._delta: Optional[np.ndarray] = None
        self._since_reset = 0
        #: Number of extrapolations actually applied (introspection/tests).
        self.applied = 0

    def push(self, iterate: np.ndarray) -> Optional[np.ndarray]:
        """Observe the latest plain iterate; maybe return a better one.

        Returns the extrapolated iterate when a trustworthy ratio
        estimate is available this step, else ``None`` (caller continues
        with the plain iterate).  After an extrapolation the accelerated
        point becomes the new difference base — both subsequent deltas
        are genuine ``G``-steps taken *from* it, so the next ratio
        estimate never mixes pre- and post-extrapolation state (classic
        Steffensen: two map applications per extrapolation cycle).
        """
        if self._previous is None:
            self._previous = iterate
            return None
        delta = iterate - self._previous
        self._previous = iterate
        previous_delta, self._delta = self._delta, delta
        self._since_reset += 1
        if self._since_reset < self._period or previous_delta is None:
            return None

        denominator = float(np.dot(previous_delta.ravel(), previous_delta.ravel()))
        if denominator <= 0.0:
            return None
        ratio = float(np.dot(delta.ravel(), previous_delta.ravel())) / denominator
        if not 0.0 < ratio < self._max_ratio:
            return None

        accelerated = np.clip(iterate + (ratio / (1.0 - ratio)) * delta, 0.0, None)
        self._previous = accelerated
        self._delta = None
        self._since_reset = 0
        self.applied += 1
        return accelerated
