"""Schweitzer–Bard approximate MVA (comparison baseline).

The thesis heuristic estimates the arrival-instant queue lengths through an
auxiliary single-chain MVA.  The earlier and simpler Schweitzer–Bard
approximation instead assumes queue lengths scale proportionally when one
customer is removed from chain ``r``:

    N_ij(D - u_r) ~= N_ij(D)                        for j != r
    N_ir(D - u_r) ~= N_ir(D) * (D_r - 1) / D_r      for j == r

yielding the fixed point

    t_ir = G_ir * (1 + sum_{j != r} N_ij + N_ir (D_r - 1)/D_r)
    lambda_r = D_r / sum_i t_ir,   N_ir = lambda_r t_ir.

It is included as an ablation: the benchmark ``bench_mva_vs_exact`` compares
both heuristics against the exact solvers in accuracy and cost.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import is_dense, resolve_backend
from repro.errors import ModelError
from repro.mva.accel import AitkenAccelerator
from repro.mva.convergence import IterationControl
from repro.mva.warmstart import validate_warm_start
from repro.queueing.network import ClosedNetwork
from repro.solution import NetworkSolution

__all__ = ["solve_schweitzer"]


def solve_schweitzer(
    network: ClosedNetwork,
    control: Optional[IterationControl] = None,
    backend: Optional[str] = None,
    warm_start: Optional[np.ndarray] = None,
) -> NetworkSolution:
    """Solve a closed multichain network with Schweitzer–Bard AMVA.

    Parameters and return value mirror
    :func:`repro.mva.heuristic.solve_mva_heuristic`; the returned solution
    has ``method="schweitzer"``.  ``backend`` selects the batched dense
    kernel (``"vectorized"``, default) or the per-chain reference loop
    (``"scalar"``); both agree to machine precision.  ``warm_start``
    replaces the balanced start with a caller-supplied ``(R, L)``
    queue-length seed (see :mod:`repro.mva.warmstart`).
    """
    if control is None:
        control = IterationControl()
    # "compiled" shares the dense NumPy path when numba is absent; with
    # numba the whole fixed point runs as one JIT call (gated below).
    resolved = resolve_backend(backend)
    vectorized = is_dense(resolved)

    demands = network.demands
    num_chains, num_stations = demands.shape
    populations = network.populations.astype(float)
    delay_mask = np.asarray([s.is_delay for s in network.stations], dtype=bool)
    visit_mask = network.visit_counts > 0

    if warm_start is not None:
        queue_lengths = validate_warm_start(network, warm_start)
        # Warm seeds start in the asymptotic regime where Aitken
        # extrapolation is safe; cold solves stay the plain iteration
        # (see repro.mva.accel for both the method and the gating).
        accelerator = AitkenAccelerator() if control.damping >= 1.0 else None
    else:
        accelerator = None
        # Balanced start, as in the thesis heuristic.
        queue_lengths = np.zeros_like(demands)
        for r in range(num_chains):
            stations = network.visited_stations(r)
            if populations[r] > 0 and stations.size > 0:
                queue_lengths[r, stations] = populations[r] / stations.size

    throughputs = np.zeros(num_chains)
    waiting = np.zeros_like(demands)
    active = [r for r in range(num_chains) if populations[r] > 0]
    active_mask = populations > 0

    # Scaling factor (D_r - 1)/D_r of the own-chain term; zero-population
    # chains never enter the loops below.
    shrink = np.ones(num_chains)
    for r in active:
        shrink[r] = (populations[r] - 1.0) / populations[r]

    delay_row = delay_mask[None, :]
    invisible = ~visit_mask
    if vectorized:
        # Zero-demand detection is iteration-invariant (cycle times depend
        # only on the fixed demands' positivity), so check once up front;
        # the loop below can then divide unguarded.  Inactive chains get a
        # unit denominator offset (their numerator is zero anyway), active
        # chains an exact + 0.0.
        visited_demand = np.where(visit_mask, demands, 0.0).sum(axis=1)
        if np.any(active_mask & (visited_demand <= 0)):
            bad = int(np.flatnonzero(active_mask & (visited_demand <= 0))[0])
            raise ModelError(
                f"chain {network.chains[bad].name!r} has zero total demand"
            )
        inactive_offset = np.where(active_mask, 0.0, 1.0)

    if vectorized:
        from repro.mva.compiled import full_sweep_engaged, schweitzer_full_sweep

        if full_sweep_engaged(resolved, control, warm_start):
            swept = schweitzer_full_sweep(
                demands,
                network.populations,
                delay_mask,
                visit_mask,
                queue_lengths,
                control,
            )
            if swept is not None:
                thr, queue, wait, sweep_iters, converged, residual = swept
                if not converged:
                    control.on_exhausted("schweitzer", sweep_iters, residual)
                return NetworkSolution(
                    network=network,
                    throughputs=thr,
                    queue_lengths=queue,
                    waiting_times=wait,
                    method="schweitzer",
                    iterations=sweep_iters,
                    converged=converged,
                    extras={"residual": residual},
                )

    iterations = 0
    residual = float("inf")
    for iterations in range(1, control.max_iterations + 1):
        total_by_station = queue_lengths.sum(axis=0)
        # Arrival-instant estimate: total minus the own-chain share removed.
        seen = total_by_station[None, :] - queue_lengths * (1.0 - shrink[:, None])
        waiting = np.where(delay_row, demands, demands * (1.0 + seen))
        waiting[invisible] = 0.0

        if vectorized:
            cycle_times = waiting.sum(axis=1)
            new_throughputs = populations / (cycle_times + inactive_offset)
        else:
            new_throughputs = np.zeros(num_chains)
            for r in active:
                cycle_time = waiting[r].sum()
                if cycle_time <= 0:
                    raise ModelError(
                        f"chain {network.chains[r].name!r} has zero total demand"
                    )
                new_throughputs[r] = populations[r] / cycle_time
        new_throughputs = control.apply_damping(new_throughputs, throughputs)
        queue_lengths = new_throughputs[:, None] * waiting

        residual = control.residual(new_throughputs, throughputs)
        throughputs = new_throughputs
        if residual < control.tolerance:
            return NetworkSolution(
                network=network,
                throughputs=throughputs,
                queue_lengths=queue_lengths,
                waiting_times=waiting,
                method="schweitzer",
                iterations=iterations,
                converged=True,
                extras={"residual": residual},
            )
        if accelerator is not None:
            accelerated = accelerator.push(queue_lengths)
            if accelerated is not None:
                queue_lengths = accelerated

    control.on_exhausted("schweitzer", iterations, residual)
    return NetworkSolution(
        network=network,
        throughputs=throughputs,
        queue_lengths=queue_lengths,
        waiting_times=waiting,
        method="schweitzer",
        iterations=iterations,
        converged=False,
        extras={"residual": residual},
    )
