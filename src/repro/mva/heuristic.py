"""The thesis §4.2 multichain MVA heuristic (Reiser–Lavenberg).

Exact multichain MVA recurses over every population vector below the target
— ``O(prod_r (E_r + 1))`` work — which is what makes window dimensioning by
exact analysis intractable.  The heuristic replaces the recursion with a
fixed-point iteration costing ``O(sum_r E_r)`` per sweep:

1. For each chain ``r``, estimate the own-chain queue-length increments
   ``sigma_ir(r-) = N_ir(D) - N_ir(D - u_r)`` from an auxiliary
   *single-chain* problem in which chain ``r`` is isolated with service
   times inflated by the other chains' current mean queue lengths
   (eq. 4.12; APL ``FCT`` lines [40]–[62]).  Cross-chain increments are
   taken as zero (eq. 4.11: the chain losing the customer is affected most).
2. Apply the arrival theorem with the approximation
   ``N_ij(D - u_r) ~= N_ij(D) - sigma_ij(r-)`` (eq. 4.13):
   ``t_ir = G_ir * (1 + sum_j N_ij - sigma_ir)``.
3. Close the loop with Little's law for chains and queues
   (eqs. 4.14, 4.15) and iterate until the class-throughput vector is
   stationary (the APL ``CRIT`` criterion).

The procedure is asymptotically exact as populations and/or the number of
chains grow (thesis p. 89, citing [26]).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import is_dense, resolve_backend
from repro.errors import ModelError
from repro.mva.accel import AitkenAccelerator
from repro.mva.convergence import IterationControl
from repro.mva.single_chain import solve_single_chain
from repro.mva.warmstart import validate_warm_start
from repro.queueing.network import ClosedNetwork
from repro.solution import NetworkSolution

__all__ = [
    "solve_mva_heuristic",
    "initial_queue_lengths",
    "batched_increments",
    "plan_increments",
]

#: Supported initialisation strategies for the mean queue lengths (STEP 1).
INITIALIZERS = ("balanced", "bottleneck")


def initial_queue_lengths(network: ClosedNetwork, strategy: str = "balanced") -> np.ndarray:
    """Initial mean queue lengths satisfying eq. (4.18).

    ``balanced``
        Spread each chain's population evenly over its stations
        (eq. 4.17, "totally balanced chain").
    ``bottleneck``
        Put the whole population at the chain's largest-demand station
        (eq. 4.16, "static location of bottleneck queue").
    """
    if strategy not in INITIALIZERS:
        raise ModelError(
            f"unknown initialisation strategy {strategy!r}; expected one of {INITIALIZERS}"
        )
    queue_lengths = np.zeros_like(network.demands)
    for r in range(network.num_chains):
        population = float(network.populations[r])
        stations = network.visited_stations(r)
        if population == 0 or stations.size == 0:
            continue
        if strategy == "balanced":
            queue_lengths[r, stations] = population / stations.size
        else:
            queue_lengths[r, network.bottleneck_station(r)] = population
    return queue_lengths


def plan_increments(
    alive: np.ndarray,
    populations: np.ndarray,
    delay_mask: np.ndarray,
) -> tuple:
    """Precompute the loop-invariant state of :func:`batched_increments`.

    ``alive`` marks chains with any positive demand (``alive[r]`` iff
    chain ``r``'s ``scaled`` row has a positive entry); since scaling by
    ``1 + others >= 1`` never changes positivity, callers can derive it
    once from the raw demands and reuse the plan across every fixed-point
    iteration of a solve.
    """
    populations = np.asarray(populations)
    queueing = (~np.asarray(delay_mask, dtype=bool))[None, :]
    # Zero-demand chains have zero total wait at every step; offsetting
    # their denominator by one keeps the division well-defined while
    # leaving alive chains' denominators bit-for-bit untouched (x + 0.0).
    dead_offset = np.where(alive, 0.0, 1.0)
    finish_at = {
        d: (alive & (populations == d))[:, None]
        for d in {int(p) for p in populations}
        if d >= 1
    }
    max_population = int(populations.max()) if populations.size else 0
    return queueing, dead_offset, finish_at, max_population


def batched_increments(
    scaled: np.ndarray,
    populations: np.ndarray,
    delay_mask: np.ndarray,
    plan: Optional[tuple] = None,
) -> np.ndarray:
    """Own-chain queue-length increments for *all* chains in one recursion.

    Vectorized equivalent of running :func:`~repro.mva.single_chain.
    solve_single_chain` once per chain and taking ``trace.increment()``:
    the single-chain population recursion is advanced for every chain
    simultaneously on dense ``(R, L)`` state.  Per chain the floating-point
    operations (and their order) are identical to the scalar recursion, so
    the result matches ``solve_single_chain`` to the last bit.

    Rows are independent, so no per-step masking is needed: a chain's
    increment is captured on the step matching its own population and its
    row simply keeps recursing (unread) until the longest chain finishes.

    Parameters
    ----------
    scaled:
        ``(R, L)`` inflated service demands, one row per chain.
    populations:
        ``(R,)`` integer chain populations.
    delay_mask:
        ``(L,)`` bool mask of infinite-server stations.
    plan:
        Optional loop-invariant state from :func:`plan_increments`;
        callers iterating on the same network should build it once.

    Returns
    -------
    numpy.ndarray
        ``(R, L)`` increments ``sigma_ir = N_i(D_r) - N_i(D_r - 1)``.
    """
    if plan is None:
        plan = plan_increments(scaled.sum(axis=1) > 0, populations, delay_mask)
    queueing, dead_offset, finish_at, max_population = plan
    queue = np.zeros_like(scaled)
    sigma = np.zeros_like(scaled)
    for d in range(1, max_population + 1):
        wait = np.where(queueing, scaled * (1.0 + queue), scaled)
        total_wait = wait.sum(axis=1)
        rate = d / (total_wait + dead_offset)
        stepped = rate[:, None] * wait
        finishing = finish_at.get(d)
        if finishing is not None:
            sigma = np.where(finishing, stepped - queue, sigma)
        queue = stepped
    return sigma


def _scalar_increments(
    network: ClosedNetwork,
    scaled_rows: np.ndarray,
    active: "list[int]",
    delay_mask: np.ndarray,
    sigma: np.ndarray,
) -> None:
    """Reference per-chain increments via the single-chain recursion."""
    for r in active:
        trace = solve_single_chain(
            scaled_rows[r], int(network.populations[r]), delay_station=delay_mask
        )
        sigma[r] = trace.increment()


def solve_mva_heuristic(
    network: ClosedNetwork,
    control: Optional[IterationControl] = None,
    initializer: str = "balanced",
    backend: Optional[str] = None,
    warm_start: Optional[np.ndarray] = None,
) -> NetworkSolution:
    """Solve a closed multichain network with the thesis §4.2 heuristic.

    Parameters
    ----------
    network:
        The closed network; any chain may have population zero (it then
        simply contributes nothing).
    control:
        Iteration policy; defaults to ``IterationControl()`` which matches
        the thesis (undamped, throughput-norm stopping criterion).
    initializer:
        Queue-length initialisation strategy (``"balanced"`` default, or
        ``"bottleneck"``; thesis §4.2 rules 1 and 2).
    backend:
        Kernel implementation: ``"vectorized"`` (dense batched arrays,
        the default), ``"compiled"`` (the dense path with the increments
        recursion JIT-fused when numba is importable, pure NumPy
        otherwise), or ``"scalar"`` (the per-chain reference loops); see
        :mod:`repro.backend`.  All tiers agree within the 1e-8 parity
        band; scalar/vectorized/compiled-without-numba are bit-identical.
    warm_start:
        Optional ``(R, L)`` queue-length seed replacing the
        ``initializer`` start — typically the converged ``queue_lengths``
        of a nearby window vector (see :mod:`repro.mva.warmstart`).  A
        good seed cuts iterations-to-converge; the stopping criterion is
        unchanged, so the converged values are the same fixed point.

    Returns
    -------
    NetworkSolution
        With ``method="mva-heuristic"``.  ``converged`` is False if the
        iteration budget ran out (unless the control is set to raise).
    """
    if control is None:
        control = IterationControl()
    resolved = resolve_backend(backend)
    vectorized = is_dense(resolved)
    increments = batched_increments
    if resolved == "compiled":
        # Same recursion, fused into one JIT kernel when numba is
        # importable; otherwise compiled_increments *is* the NumPy
        # recursion, keeping the tier bit-identical to "vectorized".
        from repro.mva.compiled import compiled_increments

        increments = compiled_increments

    demands = network.demands
    num_chains, num_stations = demands.shape
    populations = network.populations.astype(float)
    delay_mask = np.asarray([s.is_delay for s in network.stations], dtype=bool)
    visit_mask = network.visit_counts > 0

    if warm_start is not None:
        queue_lengths = validate_warm_start(network, warm_start)
        # A seed from a converged neighbour puts the iteration straight
        # into its asymptotic linear regime, where Aitken extrapolation is
        # both safe and maximally effective; cold solves stay the plain
        # thesis iteration (see repro.mva.accel).  Damping changes the
        # error dynamics the ratio estimate assumes, so it disables this.
        accelerator = AitkenAccelerator() if control.damping >= 1.0 else None
    else:
        queue_lengths = initial_queue_lengths(network, initializer)
        accelerator = None
    throughputs = np.zeros(num_chains)
    waiting = np.zeros_like(demands)
    sigma = np.zeros_like(demands)

    active = [r for r in range(num_chains) if populations[r] > 0]
    active_mask = populations > 0
    # The batched recursion's masks depend only on demand positivity and
    # the populations, both fixed for the whole solve.
    plan = (
        plan_increments(demands.sum(axis=1) > 0, network.populations, delay_mask)
        if vectorized
        else None
    )
    # Zero-demand detection is iteration-invariant (cycle times depend on
    # the fixed demands' positivity), so it is checked once up front.
    visited_demand = np.where(visit_mask, demands, 0.0).sum(axis=1)
    if np.any(active_mask & (visited_demand <= 0)):
        bad = int(np.flatnonzero(active_mask & (visited_demand <= 0))[0])
        raise ModelError(
            f"chain {network.chains[bad].name!r} has zero total demand"
        )

    if resolved == "compiled":
        # With numba importable the *entire* fixed point — not just the
        # increments recursion — runs as one JIT call (cold starts and
        # plain controls only: warm starts carry the Python-side Aitken
        # accelerator, and control subclasses may override the inlined
        # residual/damping policy).  Model validation above and the
        # on_exhausted contract below are unchanged.
        from repro.mva.compiled import full_sweep_engaged, heuristic_full_sweep

        if full_sweep_engaged(resolved, control, warm_start):
            swept = heuristic_full_sweep(
                demands,
                network.populations,
                delay_mask,
                visit_mask,
                queue_lengths,
                control,
            )
            if swept is not None:
                thr, queue, wait, sweep_iters, converged, residual = swept
                if not converged:
                    control.on_exhausted("mva-heuristic", sweep_iters, residual)
                return NetworkSolution(
                    network=network,
                    throughputs=thr,
                    queue_lengths=queue,
                    waiting_times=wait,
                    method="mva-heuristic",
                    iterations=sweep_iters,
                    converged=converged,
                    extras={"residual": residual},
                )

    delay_row = delay_mask[None, :]
    invisible = ~visit_mask

    iterations = 0
    residual = float("inf")
    for iterations in range(1, control.max_iterations + 1):
        # STEP 2 — own-chain queue-length increments from the isolated
        # single-chain problem with inflated service times.
        total_by_station = queue_lengths.sum(axis=0)
        others = total_by_station[None, :] - queue_lengths
        scaled = np.where(delay_row, demands, demands * (1.0 + others))
        if vectorized:
            sigma = increments(
                scaled, network.populations, delay_mask, plan
            )
        else:
            sigma[:] = 0.0
            _scalar_increments(network, scaled, active, delay_mask, sigma)

        # STEP 3 — arrival theorem with N(D - u_r) ~= N(D) - sigma(r-).
        seen = np.maximum(total_by_station[None, :] - sigma, 0.0)
        waiting = np.where(delay_row, demands, demands * (1.0 + seen))
        waiting[invisible] = 0.0

        # STEP 4 — Little's law for chains.
        cycle_times = waiting.sum(axis=1)
        new_throughputs = np.where(
            active_mask,
            populations / np.where(cycle_times > 0, cycle_times, 1.0),
            0.0,
        )
        new_throughputs = control.apply_damping(new_throughputs, throughputs)

        # STEP 5 — Little's law for queues.
        queue_lengths = new_throughputs[:, None] * waiting

        # STEP 6 — stopping criterion on the throughput vector.
        residual = control.residual(new_throughputs, throughputs)
        throughputs = new_throughputs
        if residual < control.tolerance:
            return NetworkSolution(
                network=network,
                throughputs=throughputs,
                queue_lengths=queue_lengths,
                waiting_times=waiting,
                method="mva-heuristic",
                iterations=iterations,
                converged=True,
                extras={"residual": residual},
            )
        if accelerator is not None:
            accelerated = accelerator.push(queue_lengths)
            if accelerated is not None:
                queue_lengths = accelerated

    control.on_exhausted("mva-heuristic", iterations, residual)
    return NetworkSolution(
        network=network,
        throughputs=throughputs,
        queue_lengths=queue_lengths,
        waiting_times=waiting,
        method="mva-heuristic",
        iterations=iterations,
        converged=False,
        extras={"residual": residual},
    )
