"""The thesis §4.2 multichain MVA heuristic (Reiser–Lavenberg).

Exact multichain MVA recurses over every population vector below the target
— ``O(prod_r (E_r + 1))`` work — which is what makes window dimensioning by
exact analysis intractable.  The heuristic replaces the recursion with a
fixed-point iteration costing ``O(sum_r E_r)`` per sweep:

1. For each chain ``r``, estimate the own-chain queue-length increments
   ``sigma_ir(r-) = N_ir(D) - N_ir(D - u_r)`` from an auxiliary
   *single-chain* problem in which chain ``r`` is isolated with service
   times inflated by the other chains' current mean queue lengths
   (eq. 4.12; APL ``FCT`` lines [40]–[62]).  Cross-chain increments are
   taken as zero (eq. 4.11: the chain losing the customer is affected most).
2. Apply the arrival theorem with the approximation
   ``N_ij(D - u_r) ~= N_ij(D) - sigma_ij(r-)`` (eq. 4.13):
   ``t_ir = G_ir * (1 + sum_j N_ij - sigma_ir)``.
3. Close the loop with Little's law for chains and queues
   (eqs. 4.14, 4.15) and iterate until the class-throughput vector is
   stationary (the APL ``CRIT`` criterion).

The procedure is asymptotically exact as populations and/or the number of
chains grow (thesis p. 89, citing [26]).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.mva.convergence import IterationControl
from repro.mva.single_chain import solve_single_chain
from repro.queueing.network import ClosedNetwork
from repro.solution import NetworkSolution

__all__ = ["solve_mva_heuristic", "initial_queue_lengths"]

#: Supported initialisation strategies for the mean queue lengths (STEP 1).
INITIALIZERS = ("balanced", "bottleneck")


def initial_queue_lengths(network: ClosedNetwork, strategy: str = "balanced") -> np.ndarray:
    """Initial mean queue lengths satisfying eq. (4.18).

    ``balanced``
        Spread each chain's population evenly over its stations
        (eq. 4.17, "totally balanced chain").
    ``bottleneck``
        Put the whole population at the chain's largest-demand station
        (eq. 4.16, "static location of bottleneck queue").
    """
    if strategy not in INITIALIZERS:
        raise ModelError(
            f"unknown initialisation strategy {strategy!r}; expected one of {INITIALIZERS}"
        )
    queue_lengths = np.zeros_like(network.demands)
    for r in range(network.num_chains):
        population = float(network.populations[r])
        stations = network.visited_stations(r)
        if population == 0 or stations.size == 0:
            continue
        if strategy == "balanced":
            queue_lengths[r, stations] = population / stations.size
        else:
            queue_lengths[r, network.bottleneck_station(r)] = population
    return queue_lengths


def solve_mva_heuristic(
    network: ClosedNetwork,
    control: Optional[IterationControl] = None,
    initializer: str = "balanced",
) -> NetworkSolution:
    """Solve a closed multichain network with the thesis §4.2 heuristic.

    Parameters
    ----------
    network:
        The closed network; any chain may have population zero (it then
        simply contributes nothing).
    control:
        Iteration policy; defaults to ``IterationControl()`` which matches
        the thesis (undamped, throughput-norm stopping criterion).
    initializer:
        Queue-length initialisation strategy (``"balanced"`` default, or
        ``"bottleneck"``; thesis §4.2 rules 1 and 2).

    Returns
    -------
    NetworkSolution
        With ``method="mva-heuristic"``.  ``converged`` is False if the
        iteration budget ran out (unless the control is set to raise).
    """
    if control is None:
        control = IterationControl()

    demands = network.demands
    num_chains, num_stations = demands.shape
    populations = network.populations.astype(float)
    delay_mask = np.asarray([s.is_delay for s in network.stations], dtype=bool)
    visit_mask = network.visit_counts > 0

    queue_lengths = initial_queue_lengths(network, initializer)
    throughputs = np.zeros(num_chains)
    waiting = np.zeros_like(demands)
    sigma = np.zeros_like(demands)

    active = [r for r in range(num_chains) if populations[r] > 0]

    iterations = 0
    residual = float("inf")
    for iterations in range(1, control.max_iterations + 1):
        # STEP 2 — own-chain queue-length increments from the isolated
        # single-chain problem with inflated service times.
        total_by_station = queue_lengths.sum(axis=0)
        sigma[:] = 0.0
        for r in active:
            others = total_by_station - queue_lengths[r]
            scaled = np.where(
                delay_mask, demands[r], demands[r] * (1.0 + others)
            )
            trace = solve_single_chain(
                scaled, int(network.populations[r]), delay_station=delay_mask
            )
            sigma[r] = trace.increment()

        # STEP 3 — arrival theorem with N(D - u_r) ~= N(D) - sigma(r-).
        seen = np.clip(total_by_station[None, :] - sigma, 0.0, None)
        waiting = np.where(delay_mask[None, :], demands, demands * (1.0 + seen))
        waiting[~visit_mask] = 0.0

        # STEP 4 — Little's law for chains.
        new_throughputs = np.zeros(num_chains)
        for r in active:
            cycle_time = waiting[r].sum()
            if cycle_time <= 0:
                raise ModelError(
                    f"chain {network.chains[r].name!r} has zero total demand"
                )
            new_throughputs[r] = populations[r] / cycle_time
        new_throughputs = control.apply_damping(new_throughputs, throughputs)

        # STEP 5 — Little's law for queues.
        queue_lengths = new_throughputs[:, None] * waiting

        # STEP 6 — stopping criterion on the throughput vector.
        residual = control.residual(new_throughputs, throughputs)
        throughputs = new_throughputs
        if residual < control.tolerance:
            return NetworkSolution(
                network=network,
                throughputs=throughputs,
                queue_lengths=queue_lengths,
                waiting_times=waiting,
                method="mva-heuristic",
                iterations=iterations,
                converged=True,
                extras={"residual": residual},
            )

    control.on_exhausted("mva-heuristic", iterations, residual)
    return NetworkSolution(
        network=network,
        throughputs=throughputs,
        queue_lengths=queue_lengths,
        waiting_times=waiting,
        method="mva-heuristic",
        iterations=iterations,
        converged=False,
        extras={"residual": residual},
    )
