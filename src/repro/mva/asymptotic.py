"""CLT/asymptotic solver for large closed product-form networks.

Fayolle–Lasgouttes (PAPERS.md) analyse closed product-form networks in
the regime where the number of chains (and with it the total population)
grows: the stationary distribution concentrates around a mean-field
fixed point, with Gaussian (CLT) fluctuations of relative size
``O(1/sqrt(R))``.  In that regime the arrival theorem's own-chain
correction — the ``sigma_ir`` term the thesis heuristic estimates with
an auxiliary single-chain recursion — vanishes: removing one customer
from one of many chains leaves the queue a chain sees on arrival
essentially unchanged,

    N_ij(D - u_r)  ->  N_ij(D)        as R -> infinity,

which is also why the heuristic itself is asymptotically exact (thesis
p. 89).  Dropping ``sigma`` entirely yields the mean-field fixed point

    t_ir      = G_ir * (1 + sum_j N_ij)        (queueing stations)
    lambda_r  = E_r / sum_i t_ir,   N_ir = lambda_r t_ir,

whose per-iteration cost is ``O(R x L)`` — no per-population recursion —
so a 500-chain network costs per sweep what a 2-chain one does per
population step.  This is the ``"asymptotic"`` solver tier: exact in the
many-chain limit, a documented approximation elsewhere.

Validity regime
---------------
:func:`asymptotic_applicability` gates where the solver is trusted
*unsupervised*: at least :data:`ASYMPTOTIC_MIN_CHAINS` chains, where the
verify oracle's calibrated bands hold (see
:mod:`repro.verify.differential`).  The resilience ladder auto-selects
it only beyond :data:`ASYMPTOTIC_AUTO_CHAINS` chains — far into the
regime — and records the substitution in its attempt log; it is never
silently substituted outside the regime.  Explicit calls
(``solver="asymptotic"``) are honoured at any size, since callers asking
for the mean-field answer by name know what they are getting.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import resolve_backend
from repro.errors import ModelError
from repro.mva.accel import AitkenAccelerator
from repro.mva.convergence import IterationControl
from repro.mva.warmstart import validate_warm_start
from repro.queueing.network import ClosedNetwork
from repro.solution import NetworkSolution

__all__ = [
    "solve_asymptotic",
    "asymptotic_applicability",
    "ASYMPTOTIC_MIN_CHAINS",
    "ASYMPTOTIC_AUTO_CHAINS",
]

#: Oracle validity floor: with at least this many chains the CLT
#: concentration argument holds well enough that the calibrated bands in
#: :class:`repro.verify.differential.TolerancePolicy` apply.
ASYMPTOTIC_MIN_CHAINS = 12

#: Resilience-ladder auto-selection floor: only beyond this many chains
#: does the ladder swap the asymptotic solver in on its own (the exact
#: and heuristic tiers are preferred wherever they are affordable).
ASYMPTOTIC_AUTO_CHAINS = 200


def asymptotic_applicability(network: ClosedNetwork) -> bool:
    """True where the CLT/asymptotic solver's calibrated bands are valid."""
    return network.num_chains >= ASYMPTOTIC_MIN_CHAINS


def solve_asymptotic(
    network: ClosedNetwork,
    control: Optional[IterationControl] = None,
    backend: Optional[str] = None,
    warm_start: Optional[np.ndarray] = None,
) -> NetworkSolution:
    """Solve the mean-field (CLT-limit) fixed point of a closed network.

    Parameters mirror :func:`repro.mva.heuristic.solve_mva_heuristic`.
    ``backend="scalar"`` and ``"vectorized"`` coincide (the iteration is
    a single dense fixed point — no per-population recursion to pick a
    kernel for); ``"compiled"`` runs the whole sweep as one JIT call
    where numba is importable (see :func:`repro.mva.compiled.
    asymptotic_full_sweep`) and falls back to the same dense loop
    otherwise.  Returns a solution with ``method="asymptotic"``.
    """
    if control is None:
        control = IterationControl()
    # scalar and vectorized coincide (a single dense fixed point, no
    # per-population recursion); "compiled" additionally runs the whole
    # sweep as one JIT call where numba is importable (gated below).
    resolved = resolve_backend(backend)

    demands = network.demands
    num_chains, _num_stations = demands.shape
    populations = network.populations.astype(float)
    delay_row = np.asarray([s.is_delay for s in network.stations], dtype=bool)[None, :]
    visit_mask = network.visit_counts > 0
    invisible = ~visit_mask
    active_mask = populations > 0

    visited_demand = np.where(visit_mask, demands, 0.0).sum(axis=1)
    if np.any(active_mask & (visited_demand <= 0)):
        bad = int(np.flatnonzero(active_mask & (visited_demand <= 0))[0])
        raise ModelError(
            f"chain {network.chains[bad].name!r} has zero total demand"
        )

    accelerator = None
    if warm_start is not None:
        queue_lengths = validate_warm_start(network, warm_start)
        # Same gating as the heuristic: warm seeds start in the linear
        # regime where Aitken extrapolation is safe (see repro.mva.accel).
        if control.damping >= 1.0:
            accelerator = AitkenAccelerator()
    else:
        # Balanced start, as in the heuristic (eq. 4.18).
        queue_lengths = np.zeros_like(demands)
        for r in range(num_chains):
            stations = network.visited_stations(r)
            if populations[r] > 0 and stations.size > 0:
                queue_lengths[r, stations] = populations[r] / stations.size

    from repro.mva.compiled import asymptotic_full_sweep, full_sweep_engaged

    if full_sweep_engaged(resolved, control, warm_start):
        swept = asymptotic_full_sweep(
            demands,
            network.populations,
            delay_row[0],
            visit_mask,
            queue_lengths,
            control,
        )
        if swept is not None:
            thr, queue, wait, sweep_iters, converged, residual = swept
            if not converged:
                control.on_exhausted("asymptotic", sweep_iters, residual)
            return NetworkSolution(
                network=network,
                throughputs=thr,
                queue_lengths=queue,
                waiting_times=wait,
                method="asymptotic",
                iterations=sweep_iters,
                converged=converged,
                extras={"residual": residual},
            )

    throughputs = np.zeros(num_chains)
    waiting = np.zeros_like(demands)
    iterations = 0
    residual = float("inf")
    for iterations in range(1, control.max_iterations + 1):
        # Mean-field arrival estimate: the full stationary queue, with no
        # own-chain decrement (sigma == 0 in the CLT limit).
        total_by_station = queue_lengths.sum(axis=0)
        waiting = np.where(
            delay_row, demands, demands * (1.0 + total_by_station[None, :])
        )
        waiting[invisible] = 0.0

        cycle_times = waiting.sum(axis=1)
        new_throughputs = np.where(
            active_mask,
            populations / np.where(cycle_times > 0, cycle_times, 1.0),
            0.0,
        )
        new_throughputs = control.apply_damping(new_throughputs, throughputs)
        queue_lengths = new_throughputs[:, None] * waiting

        residual = control.residual(new_throughputs, throughputs)
        throughputs = new_throughputs
        if residual < control.tolerance:
            return NetworkSolution(
                network=network,
                throughputs=throughputs,
                queue_lengths=queue_lengths,
                waiting_times=waiting,
                method="asymptotic",
                iterations=iterations,
                converged=True,
                extras={"residual": residual},
            )
        if accelerator is not None:
            accelerated = accelerator.push(queue_lengths)
            if accelerated is not None:
                queue_lengths = accelerated

    control.on_exhausted("asymptotic", iterations, residual)
    return NetworkSolution(
        network=network,
        throughputs=throughputs,
        queue_lengths=queue_lengths,
        waiting_times=waiting,
        method="asymptotic",
        iterations=iterations,
        converged=False,
        extras={"residual": residual},
    )
