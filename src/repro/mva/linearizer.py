"""Linearizer approximate MVA (Chandy–Neuse).

The thesis notes that "more advanced search techniques can of course be
used" (§4.1) and that heuristic MVA accuracy improves with population
(§4.2).  Linearizer is the classical next rung above Schweitzer–Bard and
the thesis heuristic: instead of assuming the queue-length *fractions*
``F_ir = N_ir / D_r`` are unchanged by removing one customer, it estimates
the first-order changes

    Delta_ir(j) = F_ir(D - u_j) - F_ir(D)

by actually solving the ``R`` reduced populations, then re-solving the
full population with the corrected arrival-instant estimate

    N_ir(D - u_j) ~= (D_r - [j == r]) * (F_ir(D) + Delta_ir(j)).

Two to three outer refinements typically bring multichain errors well
under one percent.  Included as an extension/ablation: the benchmark
``bench_mva_vs_exact`` reports its accuracy next to the thesis heuristic.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import is_dense, resolve_backend
from repro.errors import ModelError
from repro.mva.convergence import IterationControl
from repro.mva.warmstart import validate_warm_start
from repro.queueing.network import ClosedNetwork
from repro.solution import NetworkSolution

__all__ = ["solve_linearizer"]


def _core_fixed_point(
    demands: np.ndarray,
    populations: np.ndarray,
    delay_mask: np.ndarray,
    visit_mask: np.ndarray,
    deltas: np.ndarray,
    control: IterationControl,
    vectorized: bool = True,
    seed: Optional[np.ndarray] = None,
):
    """Solve one population vector with frozen fraction corrections.

    ``deltas[j, r, i]`` estimates ``F_ri(D - u_j) - F_ri(D)``.  ``seed``
    optionally replaces the balanced queue-length start.  Returns
    ``(throughputs, queue_lengths, waiting, iterations, residual)``.
    """
    num_chains, num_stations = demands.shape
    active = [r for r in range(num_chains) if populations[r] > 0]

    if seed is not None:
        queue_lengths = seed.copy()
    else:
        queue_lengths = np.zeros_like(demands)
        for r in active:
            stations = np.flatnonzero(visit_mask[r])
            queue_lengths[r, stations] = populations[r] / stations.size

    if vectorized:
        return _core_vectorized(
            demands,
            populations,
            delay_mask,
            visit_mask,
            deltas,
            control,
            queue_lengths,
        )

    throughputs = np.zeros(num_chains)
    waiting = np.zeros_like(demands)
    iterations = 0
    residual = float("inf")
    for iterations in range(1, control.max_iterations + 1):
        fractions = np.zeros_like(demands)
        for r in active:
            fractions[r] = queue_lengths[r] / populations[r]

        new_throughputs = np.zeros(num_chains)
        for j in active:
            # Estimated queue lengths seen by an arriving chain-j customer.
            seen = np.zeros(num_stations)
            for r in active:
                reduced = populations[r] - (1.0 if r == j else 0.0)
                seen += reduced * np.clip(fractions[r] + deltas[j, r], 0.0, 1.0)
            wait_j = np.where(delay_mask, demands[j], demands[j] * (1.0 + seen))
            wait_j = np.where(visit_mask[j], wait_j, 0.0)
            cycle_time = wait_j.sum()
            if cycle_time <= 0:
                raise ModelError("chain with zero total demand")
            new_throughputs[j] = populations[j] / cycle_time
            waiting[j] = wait_j

        new_throughputs = control.apply_damping(new_throughputs, throughputs)
        queue_lengths = new_throughputs[:, None] * waiting
        residual = control.residual(new_throughputs, throughputs)
        throughputs = new_throughputs
        if residual < control.tolerance:
            break
    return throughputs, queue_lengths, waiting, iterations, residual


def _core_vectorized(
    demands: np.ndarray,
    populations: np.ndarray,
    delay_mask: np.ndarray,
    visit_mask: np.ndarray,
    deltas: np.ndarray,
    control: IterationControl,
    queue_lengths: np.ndarray,
):
    """Dense-array core: all arriving chains ``j`` updated in one batch.

    ``seen[j] = sum_r (D_r - [r == j]) * clip(F_r + delta[j, r], 0, 1)``
    is evaluated as one ``(R, R, L)`` contraction instead of the nested
    per-``j``/per-``r`` Python loops of the scalar reference.
    """
    num_chains, _num_stations = demands.shape
    active_mask = populations > 0
    safe_pop = np.where(active_mask, populations, 1.0)
    # Customers the arriving chain j sees of chain r: D_r minus its own.
    reduced = np.where(
        active_mask[None, :],
        populations[None, :] - np.eye(num_chains),
        0.0,
    )

    throughputs = np.zeros(num_chains)
    waiting = np.zeros_like(demands)
    iterations = 0
    residual = float("inf")
    for iterations in range(1, control.max_iterations + 1):
        fractions = np.where(
            active_mask[:, None], queue_lengths / safe_pop[:, None], 0.0
        )
        corrected = np.clip(fractions[None, :, :] + deltas, 0.0, 1.0)
        seen = (reduced[:, :, None] * corrected).sum(axis=1)
        waiting = np.where(delay_mask[None, :], demands, demands * (1.0 + seen))
        waiting = np.where(visit_mask, waiting, 0.0)
        waiting[~active_mask] = 0.0
        cycle_times = waiting.sum(axis=1)
        if np.any(active_mask & (cycle_times <= 0)):
            raise ModelError("chain with zero total demand")
        new_throughputs = np.where(
            active_mask,
            populations / np.where(cycle_times > 0, cycle_times, 1.0),
            0.0,
        )
        new_throughputs = control.apply_damping(new_throughputs, throughputs)
        queue_lengths = new_throughputs[:, None] * waiting
        residual = control.residual(new_throughputs, throughputs)
        throughputs = new_throughputs
        if residual < control.tolerance:
            break
    return throughputs, queue_lengths, waiting, iterations, residual


def solve_linearizer(
    network: ClosedNetwork,
    control: Optional[IterationControl] = None,
    refinements: int = 2,
    backend: Optional[str] = None,
    warm_start: Optional[np.ndarray] = None,
) -> NetworkSolution:
    """Solve a closed multichain network with the Linearizer AMVA.

    Parameters
    ----------
    network / control:
        As for :func:`repro.mva.heuristic.solve_mva_heuristic`.
    refinements:
        Number of outer delta-refinement passes (2 is the classical
        choice; 0 degenerates to Schweitzer–Bard).
    backend:
        ``"vectorized"`` (default) batches the per-arriving-chain core
        update into one dense contraction; ``"scalar"`` keeps the nested
        reference loops.  Both agree to machine precision.
    warm_start:
        Optional ``(R, L)`` queue-length seed for the *initial*
        full-population core solve (see :mod:`repro.mva.warmstart`);
        the reduced ``D - u_j`` sub-solves and the refinement re-solves
        keep their balanced start (re-solve seeding compounds stopping
        slack through the deltas past the 1e-8 parity band).

    Returns
    -------
    NetworkSolution
        With ``method="linearizer"``.
    """
    if control is None:
        control = IterationControl()
    if refinements < 0:
        raise ModelError(f"refinements must be >= 0, got {refinements}")
    # "compiled" shares the dense path (see repro.mva.compiled).
    vectorized = is_dense(resolve_backend(backend))

    demands = network.demands
    num_chains, num_stations = demands.shape
    populations = network.populations.astype(float)
    delay_mask = np.asarray([s.is_delay for s in network.stations], dtype=bool)
    visit_mask = network.visit_counts > 0

    deltas = np.zeros((num_chains, num_chains, num_stations))
    total_iterations = 0
    seed = (
        validate_warm_start(network, warm_start)
        if warm_start is not None
        else None
    )

    result = _core_fixed_point(
        demands, populations, delay_mask, visit_mask, deltas, control,
        vectorized, seed=seed,
    )
    total_iterations += result[3]

    for _pass in range(refinements):
        throughputs, queue_lengths, _w, _it, _res = result
        fractions_full = np.zeros_like(demands)
        for r in range(num_chains):
            if populations[r] > 0:
                fractions_full[r] = queue_lengths[r] / populations[r]

        # Solve each reduced population D - u_j with the current deltas.
        for j in range(num_chains):
            if populations[j] <= 0:
                continue
            reduced = populations.copy()
            reduced[j] -= 1.0
            sub = _core_fixed_point(
                demands, reduced, delay_mask, visit_mask, deltas, control, vectorized
            )
            total_iterations += sub[3]
            sub_queue = sub[1]
            for r in range(num_chains):
                if reduced[r] > 0:
                    deltas[j, r] = sub_queue[r] / reduced[r] - fractions_full[r]
                else:
                    deltas[j, r] = 0.0

        # Refinement re-solves keep the balanced start even in warm mode:
        # seeding them from the previous converged point compounds the
        # (tolerance-sized) stopping slack through the refreshed deltas
        # and can push the final throughputs past the 1e-8 parity band.
        result = _core_fixed_point(
            demands, populations, delay_mask, visit_mask, deltas, control, vectorized
        )
        total_iterations += result[3]

    throughputs, queue_lengths, waiting, _it, residual = result
    converged = residual < control.tolerance
    if not converged:
        control.on_exhausted("linearizer", total_iterations, residual)
    return NetworkSolution(
        network=network,
        throughputs=throughputs,
        queue_lengths=queue_lengths,
        waiting_times=waiting,
        method="linearizer",
        iterations=total_iterations,
        converged=converged,
        extras={"residual": residual},
    )
