"""Asymptotic and balanced-job bounds for closed chains.

Cheap two-sided bounds on single-chain throughput used to sanity-check
solver output and to reason about window choices without solving anything:

* **Asymptotic bounds** (Muntz–Wong/Denning–Buzen):
  ``lambda(D) <= min(D / T_total, 1 / d_max)`` and
  ``lambda(D) >= D / (D * d_max + T_total - d_max)`` … the classic
  optimistic/pessimistic envelope, exact at ``D = 1`` and ``D -> inf``.
* **Balanced job bounds** (Zahorjan et al.): tighter two-sided bounds
  obtained by comparing against balanced networks with the same total
  demand,

      D / (T + d_max (D - 1))      <= lambda(D) <=
      D / (T + d_avg (D - 1))         (upper also capped by 1/d_max)

  where ``T`` is total demand, ``d_avg = T / L``.

The bound crossing point ``D* = T_total / d_max`` is Kleinrock's optimal
window in disguise: for a balanced ``p``-hop chain it equals ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ModelError

__all__ = ["ThroughputBounds", "asymptotic_bounds", "balanced_job_bounds", "saturation_population"]


@dataclass(frozen=True)
class ThroughputBounds:
    """Two-sided bounds on closed-chain throughput at one population."""

    population: int
    lower: float
    upper: float

    def contains(self, value: float, slack: float = 1e-9) -> bool:
        """True if ``value`` lies within the bounds (with tiny slack)."""
        return self.lower - slack <= value <= self.upper + slack


def _validate(demands: Sequence[float], population: int) -> np.ndarray:
    arr = np.asarray(demands, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ModelError("demands must be a non-empty vector")
    if np.any(arr < 0) or arr.max() <= 0:
        raise ModelError("demands must be non-negative with a positive maximum")
    if population < 1:
        raise ModelError(f"population must be >= 1, got {population}")
    return arr


def asymptotic_bounds(demands: Sequence[float], population: int) -> ThroughputBounds:
    """Optimistic/pessimistic asymptotic throughput bounds."""
    arr = _validate(demands, population)
    total = arr.sum()
    bottleneck = arr.max()
    upper = min(population / total, 1.0 / bottleneck)
    lower = population / (population * bottleneck + total - bottleneck)
    return ThroughputBounds(population=population, lower=lower, upper=upper)


def balanced_job_bounds(demands: Sequence[float], population: int) -> ThroughputBounds:
    """Balanced-job throughput bounds (tighter than asymptotic)."""
    arr = _validate(demands, population)
    positive = arr[arr > 0]
    total = positive.sum()
    bottleneck = positive.max()
    average = total / positive.size
    lower = population / (total + bottleneck * (population - 1))
    upper = min(
        1.0 / bottleneck, population / (total + average * (population - 1))
    )
    return ThroughputBounds(population=population, lower=lower, upper=upper)


def saturation_population(demands: Sequence[float]) -> float:
    """The knee ``D* = T_total / d_max`` where the asymptotes cross.

    Populations beyond ``D*`` buy queueing delay instead of throughput —
    the bound-level justification of small windows at heavy load, and the
    generalisation of Kleinrock's ``w* = p`` (for ``p`` identical hops
    ``D* = p`` exactly).
    """
    arr = _validate(demands, 1)
    return float(arr.sum() / arr.max())
