"""The ``"compiled"`` kernel tier: numba-JIT inner recursion, NumPy fallback.

The heuristic's cost is dominated by :func:`repro.mva.heuristic.
batched_increments` — the auxiliary single-chain population recursion
advanced once per fixed-point sweep, ``O(R x L x max_pop)`` elementwise
work split over ~6 NumPy calls per population step.  On internet-scale
networks (hundreds of chains, thousands of stations) those calls are
large enough that NumPy is already near memory bandwidth; on the small
and mid-size networks a window search actually spends its time on, the
per-call dispatch overhead is the bottleneck.  The compiled tier fuses
the whole recursion into one JIT kernel.

Availability is strictly optional:

* **numba importable** — :func:`compiled_increments` routes through an
  ``@njit`` kernel (compiled once per process, cached module-globally).
  The fused loops accumulate the per-chain total wait sequentially, not
  with NumPy's pairwise summation, so results agree with the vectorized
  kernel to the parity wall's 1e-8 band rather than bit-for-bit.
* **numba absent** (the supported baseline — it is *not* a dependency)
  — :func:`compiled_increments` *is* ``batched_increments``: the same
  NumPy operations in the same order, hence bit-identical to
  ``backend="vectorized"``.  :func:`repro.backend.parity_tier` reports
  this distinction so persistent stores never mix the two regimes.

Every other dense kernel (Schweitzer, Linearizer, exact MVA) treats
``"compiled"`` as a synonym for ``"vectorized"`` — their inner loops have
no recursion worth fusing — which keeps the backend flag a pure kernel
choice: same algorithm, same convergence criteria, everywhere.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import numba_available
from repro.mva.heuristic import batched_increments, plan_increments

__all__ = ["compiled_increments", "jit_ready"]

#: Lazily built ``(kernel, signature_compiled)`` slot; ``False`` marks
#: "tried and unavailable" so a numba-less process probes exactly once.
_JIT_KERNEL = None
_JIT_PROBED = False


def _build_kernel():
    """Compile the fused increments kernel (None when numba is absent)."""
    try:
        import numba
    except ImportError:  # pragma: no cover - exercised only without numba
        return None

    @numba.njit(cache=True, fastmath=False)
    def _increments(scaled, queueing, dead_offset, populations, max_pop):
        rows, stations = scaled.shape
        queue = np.zeros((rows, stations))
        wait = np.zeros((rows, stations))
        sigma = np.zeros((rows, stations))
        for d in range(1, max_pop + 1):
            for r in range(rows):
                total = 0.0
                for i in range(stations):
                    if queueing[r, i]:
                        w = scaled[r, i] * (1.0 + queue[r, i])
                    else:
                        w = scaled[r, i]
                    wait[r, i] = w
                    total += w
                rate = d / (total + dead_offset[r])
                if populations[r] == d:
                    for i in range(stations):
                        stepped = rate * wait[r, i]
                        sigma[r, i] = stepped - queue[r, i]
                        queue[r, i] = stepped
                else:
                    for i in range(stations):
                        queue[r, i] = rate * wait[r, i]
        return sigma

    return _increments


def _kernel():
    global _JIT_KERNEL, _JIT_PROBED
    if not _JIT_PROBED:
        _JIT_KERNEL = _build_kernel() if numba_available() else None
        _JIT_PROBED = True
    return _JIT_KERNEL


def jit_ready() -> bool:
    """True when the JIT kernel is importable (without compiling it yet)."""
    return numba_available()


def compiled_increments(
    scaled: np.ndarray,
    populations: np.ndarray,
    delay_mask: np.ndarray,
    plan: Optional[tuple] = None,
) -> np.ndarray:
    """Drop-in replacement for :func:`~repro.mva.heuristic.batched_increments`.

    Same signature, same contract; routes through the fused numba kernel
    when one is available and otherwise *delegates verbatim* to the NumPy
    recursion (making the compiled tier bit-identical to vectorized in
    numba-less environments).  A chain whose population exceeds ``1`` but
    never matches a recursion step keeps ``sigma = 0`` in both paths.
    """
    kernel = _kernel()
    if kernel is None:
        return batched_increments(scaled, populations, delay_mask, plan)
    if plan is None:
        plan = plan_increments(scaled.sum(axis=1) > 0, populations, delay_mask)
    queueing, dead_offset, _finish_at, max_population = plan
    # The NumPy plan keeps ``queueing`` as a broadcastable mask (a (1, L)
    # row, or (rows, L) for heterogeneous SoA packs) and captures sigma
    # through a {population: row-mask} dict; the JIT kernel wants dense
    # arrays.  Dead chains (dead_offset == 1) must never capture, so
    # their population is pinned to an impossible step.
    scaled = np.ascontiguousarray(scaled, dtype=np.float64)
    alive = np.asarray(dead_offset, dtype=np.float64) == 0.0
    capture = np.where(alive, np.asarray(populations, dtype=np.int64), -1)
    return kernel(
        scaled,
        np.ascontiguousarray(
            np.broadcast_to(np.asarray(queueing, dtype=np.bool_), scaled.shape)
        ),
        np.ascontiguousarray(dead_offset, dtype=np.float64),
        capture,
        int(max_population),
    )
