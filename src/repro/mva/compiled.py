"""The ``"compiled"`` kernel tier: full-sweep numba JIT, NumPy fallback.

PR 8 JITted only the heuristic's inner increments recursion; every other
step of the fixed point — the station totals, the arrival theorem,
Little's law, damping, the residual — still paid a NumPy dispatch per
operation per iteration.  This module now compiles the *entire* solve:

* :func:`heuristic_full_sweep`, :func:`schweitzer_full_sweep` and
  :func:`asymptotic_full_sweep` run a whole fixed point (initial state
  to convergence or budget exhaustion) in one ``@njit`` call;
* :func:`heuristic_pack_sweep` / :func:`schweitzer_pack_sweep` do the
  same for a :class:`~repro.mva.soa.WindowPack`, advancing each network
  serially *inside* the compiled call — per-network cache locality with
  zero dispatch overhead, which is why the compiled tier has no SoA
  crossover (see :mod:`repro.mva.autobatch`);
* :func:`warmup` compiles (or cache-loads) every kernel on tiny inputs
  and records the timings through :mod:`repro.mva.kernelcache`, whose
  fingerprinted on-disk directory makes the second process's warmup a
  machine-code *load* rather than a recompile.

Availability is strictly optional:

* **numba importable** — the full-sweep wrappers return results; the
  fused loops use sequential reductions (not NumPy's pairwise
  summation), so results agree with the vectorized kernels to the parity
  wall's 1e-8 band rather than bit-for-bit.
* **numba absent** (the supported baseline — it is *not* a dependency)
  — the full-sweep wrappers return ``None`` and every solver falls
  through to its dense NumPy loop, while :func:`compiled_increments`
  *is* :func:`~repro.mva.heuristic.batched_increments`: the same NumPy
  operations in the same order, hence bit-identical to
  ``backend="vectorized"``.  :func:`repro.backend.parity_tier` reports
  the distinction (versioned by :data:`JIT_KERNEL_VERSION`) so
  persistent stores never mix the two regimes.

All kernels are ``nopython`` with ``fastmath`` off: the only permitted
divergence from the NumPy path is reduction *order*, never algebraic
rewrites of the thesis recurrences.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.backend import numba_available
from repro.mva.convergence import IterationControl
from repro.mva.heuristic import batched_increments, plan_increments

__all__ = [
    "JIT_KERNEL_VERSION",
    "compiled_increments",
    "jit_ready",
    "full_sweep_engaged",
    "heuristic_full_sweep",
    "schweitzer_full_sweep",
    "asymptotic_full_sweep",
    "heuristic_pack_sweep",
    "schweitzer_pack_sweep",
    "warmup",
]

#: Version of the compiled kernel *set*.  Bumped whenever a kernel's
#: floating-point behaviour can change (new kernels, changed reduction
#: order), so :func:`repro.backend.parity_tier` — and through it every
#: persistent-store fingerprint — separates eras: a store written by the
#: PR 8 increments-only JIT is never silently replayed against the
#: full-sweep kernels.  v1 = increments-only (PR 8); v2 = full-sweep.
JIT_KERNEL_VERSION = 2

#: Lazily built kernel slots; ``_PROBED`` marks "tried once" so a
#: numba-less process never re-probes.
_JIT_KERNEL = None
_JIT_PROBED = False
_FULL_KERNELS = None
_FULL_PROBED = False


def _build_kernel():
    """Compile the fused increments kernel (None when numba is absent)."""
    try:
        import numba
    except ImportError:  # pragma: no cover - exercised only without numba
        return None
    from repro.mva.kernelcache import activate_numba_cache

    activate_numba_cache()

    @numba.njit(cache=True, fastmath=False)
    def _increments(scaled, queueing, dead_offset, populations, max_pop):
        rows, stations = scaled.shape
        queue = np.zeros((rows, stations))
        wait = np.zeros((rows, stations))
        sigma = np.zeros((rows, stations))
        for d in range(1, max_pop + 1):
            for r in range(rows):
                total = 0.0
                for i in range(stations):
                    if queueing[r, i]:
                        w = scaled[r, i] * (1.0 + queue[r, i])
                    else:
                        w = scaled[r, i]
                    wait[r, i] = w
                    total += w
                rate = d / (total + dead_offset[r])
                if populations[r] == d:
                    for i in range(stations):
                        stepped = rate * wait[r, i]
                        sigma[r, i] = stepped - queue[r, i]
                        queue[r, i] = stepped
                else:
                    for i in range(stations):
                        queue[r, i] = rate * wait[r, i]
        return sigma

    return _increments


def _kernel():
    global _JIT_KERNEL, _JIT_PROBED
    if not _JIT_PROBED:
        _JIT_KERNEL = _build_kernel() if numba_available() else None
        _JIT_PROBED = True
    return _JIT_KERNEL


def jit_ready() -> bool:
    """True when the JIT kernels are importable (without compiling yet)."""
    return numba_available()


def compiled_increments(
    scaled: np.ndarray,
    populations: np.ndarray,
    delay_mask: np.ndarray,
    plan: Optional[tuple] = None,
) -> np.ndarray:
    """Drop-in replacement for :func:`~repro.mva.heuristic.batched_increments`.

    Same signature, same contract; routes through the fused numba kernel
    when one is available and otherwise *delegates verbatim* to the NumPy
    recursion (making the compiled tier bit-identical to vectorized in
    numba-less environments).  A chain whose population exceeds ``1`` but
    never matches a recursion step keeps ``sigma = 0`` in both paths.
    """
    kernel = _kernel()
    if kernel is None:
        return batched_increments(scaled, populations, delay_mask, plan)
    if plan is None:
        plan = plan_increments(scaled.sum(axis=1) > 0, populations, delay_mask)
    queueing, dead_offset, _finish_at, max_population = plan
    # The NumPy plan keeps ``queueing`` as a broadcastable mask (a (1, L)
    # row, or (rows, L) for heterogeneous SoA packs) and captures sigma
    # through a {population: row-mask} dict; the JIT kernel wants dense
    # arrays.  Dead chains (dead_offset == 1) must never capture, so
    # their population is pinned to an impossible step.
    scaled = np.ascontiguousarray(scaled, dtype=np.float64)
    alive = np.asarray(dead_offset, dtype=np.float64) == 0.0
    capture = np.where(alive, np.asarray(populations, dtype=np.int64), -1)
    return kernel(
        scaled,
        np.ascontiguousarray(
            np.broadcast_to(np.asarray(queueing, dtype=np.bool_), scaled.shape)
        ),
        np.ascontiguousarray(dead_offset, dtype=np.float64),
        capture,
        int(max_population),
    )


# ----------------------------------------------------------------------
# full-sweep kernels
# ----------------------------------------------------------------------

def _build_full_kernels():
    """Define every full-sweep njit kernel (None when numba is absent).

    Definition is cheap (compilation is lazy, per concrete signature, and
    served from the fingerprinted on-disk cache when one exists); the
    cache directory must be activated *before* the first definition so
    numba's locator picks it up.
    """
    try:
        import numba
    except ImportError:  # pragma: no cover - exercised only without numba
        return None
    from repro.mva.kernelcache import activate_numba_cache

    activate_numba_cache()
    njit = numba.njit

    @njit(cache=True, fastmath=False)
    def _heuristic_solve(
        demands, populations, capture, dead_offset, queueing, visit,
        active, queue0, max_pop, tol, max_iter, damping,
    ):
        chains, stations = demands.shape
        queue = queue0.copy()
        throughputs = np.zeros(chains)
        new_throughputs = np.zeros(chains)
        waiting = np.zeros((chains, stations))
        sigma = np.zeros((chains, stations))
        aux_queue = np.zeros((chains, stations))
        aux_wait = np.zeros((chains, stations))
        scaled = np.zeros((chains, stations))
        total = np.zeros(stations)
        converged = False
        residual = np.inf
        iterations = 0
        for iterations in range(1, max_iter + 1):
            # STEP 2 — own-chain increments from the isolated single-chain
            # problem with inflated service times (the inner recursion).
            for i in range(stations):
                t = 0.0
                for r in range(chains):
                    t += queue[r, i]
                total[i] = t
            for r in range(chains):
                for i in range(stations):
                    if queueing[i]:
                        scaled[r, i] = demands[r, i] * (
                            1.0 + (total[i] - queue[r, i])
                        )
                    else:
                        scaled[r, i] = demands[r, i]
                    aux_queue[r, i] = 0.0
                    sigma[r, i] = 0.0
            for d in range(1, max_pop + 1):
                for r in range(chains):
                    t = 0.0
                    for i in range(stations):
                        if queueing[i]:
                            w = scaled[r, i] * (1.0 + aux_queue[r, i])
                        else:
                            w = scaled[r, i]
                        aux_wait[r, i] = w
                        t += w
                    rate = d / (t + dead_offset[r])
                    if capture[r] == d:
                        for i in range(stations):
                            stepped = rate * aux_wait[r, i]
                            sigma[r, i] = stepped - aux_queue[r, i]
                            aux_queue[r, i] = stepped
                    else:
                        for i in range(stations):
                            aux_queue[r, i] = rate * aux_wait[r, i]
            # STEPS 3+4 — arrival theorem, then Little's law for chains.
            for r in range(chains):
                cycle = 0.0
                for i in range(stations):
                    if visit[r, i]:
                        if queueing[i]:
                            seen = total[i] - sigma[r, i]
                            if seen < 0.0:
                                seen = 0.0
                            w = demands[r, i] * (1.0 + seen)
                        else:
                            w = demands[r, i]
                    else:
                        w = 0.0
                    waiting[r, i] = w
                    cycle += w
                if active[r]:
                    if cycle > 0.0:
                        new_throughputs[r] = populations[r] / cycle
                    else:
                        new_throughputs[r] = populations[r]
                else:
                    new_throughputs[r] = 0.0
                if damping < 1.0:
                    new_throughputs[r] = (
                        damping * new_throughputs[r]
                        + (1.0 - damping) * throughputs[r]
                    )
            # STEPS 5+6 — Little's law for queues; throughput residual.
            acc = 0.0
            for r in range(chains):
                diff = new_throughputs[r] - throughputs[r]
                acc += diff * diff
                throughputs[r] = new_throughputs[r]
                for i in range(stations):
                    queue[r, i] = throughputs[r] * waiting[r, i]
            residual = np.sqrt(acc)
            if residual < tol:
                converged = True
                break
        return throughputs, queue, waiting, iterations, converged, residual

    @njit(cache=True, fastmath=False)
    def _schweitzer_solve(
        demands, populations, shrink, inactive_offset, queueing, visit,
        queue0, tol, max_iter, damping,
    ):
        chains, stations = demands.shape
        queue = queue0.copy()
        throughputs = np.zeros(chains)
        new_throughputs = np.zeros(chains)
        waiting = np.zeros((chains, stations))
        total = np.zeros(stations)
        converged = False
        residual = np.inf
        iterations = 0
        for iterations in range(1, max_iter + 1):
            for i in range(stations):
                t = 0.0
                for r in range(chains):
                    t += queue[r, i]
                total[i] = t
            for r in range(chains):
                cycle = 0.0
                for i in range(stations):
                    if visit[r, i]:
                        if queueing[i]:
                            seen = total[i] - queue[r, i] * (1.0 - shrink[r])
                            w = demands[r, i] * (1.0 + seen)
                        else:
                            w = demands[r, i]
                    else:
                        w = 0.0
                    waiting[r, i] = w
                    cycle += w
                new_throughputs[r] = populations[r] / (
                    cycle + inactive_offset[r]
                )
                if damping < 1.0:
                    new_throughputs[r] = (
                        damping * new_throughputs[r]
                        + (1.0 - damping) * throughputs[r]
                    )
            acc = 0.0
            for r in range(chains):
                diff = new_throughputs[r] - throughputs[r]
                acc += diff * diff
                throughputs[r] = new_throughputs[r]
                for i in range(stations):
                    queue[r, i] = throughputs[r] * waiting[r, i]
            residual = np.sqrt(acc)
            if residual < tol:
                converged = True
                break
        return throughputs, queue, waiting, iterations, converged, residual

    @njit(cache=True, fastmath=False)
    def _asymptotic_solve(
        demands, populations, active, queueing, visit, queue0,
        tol, max_iter, damping,
    ):
        chains, stations = demands.shape
        queue = queue0.copy()
        throughputs = np.zeros(chains)
        new_throughputs = np.zeros(chains)
        waiting = np.zeros((chains, stations))
        total = np.zeros(stations)
        converged = False
        residual = np.inf
        iterations = 0
        for iterations in range(1, max_iter + 1):
            for i in range(stations):
                t = 0.0
                for r in range(chains):
                    t += queue[r, i]
                total[i] = t
            for r in range(chains):
                cycle = 0.0
                for i in range(stations):
                    if visit[r, i]:
                        if queueing[i]:
                            w = demands[r, i] * (1.0 + total[i])
                        else:
                            w = demands[r, i]
                    else:
                        w = 0.0
                    waiting[r, i] = w
                    cycle += w
                if active[r]:
                    if cycle > 0.0:
                        new_throughputs[r] = populations[r] / cycle
                    else:
                        new_throughputs[r] = populations[r]
                else:
                    new_throughputs[r] = 0.0
                if damping < 1.0:
                    new_throughputs[r] = (
                        damping * new_throughputs[r]
                        + (1.0 - damping) * throughputs[r]
                    )
            acc = 0.0
            for r in range(chains):
                diff = new_throughputs[r] - throughputs[r]
                acc += diff * diff
                throughputs[r] = new_throughputs[r]
                for i in range(stations):
                    queue[r, i] = throughputs[r] * waiting[r, i]
            residual = np.sqrt(acc)
            if residual < tol:
                converged = True
                break
        return throughputs, queue, waiting, iterations, converged, residual

    @njit(cache=True, fastmath=False)
    def _heuristic_solve_pack(
        demands, populations, capture, dead_offset, queueing, visit,
        active, queue0, max_pops, tol, max_iter, damping,
        out_thr, out_queue, out_wait, out_iters, out_conv, out_res,
    ):
        for b in range(demands.shape[0]):
            thr, queue, waiting, iters, conv, res = _heuristic_solve(
                demands[b], populations[b], capture[b], dead_offset[b],
                queueing[b], visit[b], active[b], queue0[b], max_pops[b],
                tol, max_iter, damping,
            )
            out_thr[b] = thr
            out_queue[b] = queue
            out_wait[b] = waiting
            out_iters[b] = iters
            out_conv[b] = conv
            out_res[b] = res

    @njit(cache=True, fastmath=False)
    def _schweitzer_solve_pack(
        demands, populations, shrink, inactive_offset, queueing, visit,
        queue0, tol, max_iter, damping,
        out_thr, out_queue, out_wait, out_iters, out_conv, out_res,
    ):
        for b in range(demands.shape[0]):
            thr, queue, waiting, iters, conv, res = _schweitzer_solve(
                demands[b], populations[b], shrink[b], inactive_offset[b],
                queueing[b], visit[b], queue0[b], tol, max_iter, damping,
            )
            out_thr[b] = thr
            out_queue[b] = queue
            out_wait[b] = waiting
            out_iters[b] = iters
            out_conv[b] = conv
            out_res[b] = res

    return {
        "heuristic": _heuristic_solve,
        "schweitzer": _schweitzer_solve,
        "asymptotic": _asymptotic_solve,
        "heuristic_pack": _heuristic_solve_pack,
        "schweitzer_pack": _schweitzer_solve_pack,
    }


def _full_kernels():
    global _FULL_KERNELS, _FULL_PROBED
    if not _FULL_PROBED:
        _FULL_KERNELS = _build_full_kernels() if numba_available() else None
        _FULL_PROBED = True
    return _FULL_KERNELS


def full_sweep_engaged(
    resolved: str,
    control: IterationControl,
    warm_start: Optional[np.ndarray] = None,
) -> bool:
    """True when a solve may run as one compiled full-sweep kernel call.

    Requires the resolved ``"compiled"`` backend with numba importable, a
    cold start (warm-started solves use the Aitken accelerator, a Python-
    side state machine the kernel cannot host), and a *plain*
    :class:`IterationControl` — subclasses may override ``residual`` /
    ``apply_damping`` / ``on_exhausted``, which the kernel inlines, so
    they keep the NumPy loop where those overrides are honoured.
    """
    return (
        resolved == "compiled"
        and warm_start is None
        and type(control) is IterationControl
        and numba_available()
    )


def _chain_masks(demands: np.ndarray, populations) -> tuple:
    """(capture, dead_offset, active, pops_float) for the sweep kernels.

    Mirrors :func:`~repro.mva.heuristic.plan_increments`: ``alive`` from
    raw demand positivity; dead chains get a unit denominator offset and
    an impossible capture step.  A zero-population chain keeps its true
    capture step (0), which never matches ``d >= 1`` — exactly the NumPy
    ``finish_at`` behaviour.
    """
    pops = np.asarray(populations, dtype=np.int64)
    alive = demands.sum(axis=-1) > 0
    dead_offset = np.where(alive, 0.0, 1.0)
    capture = np.where(alive, pops, -1)
    pops_float = pops.astype(np.float64)
    active = np.ascontiguousarray(pops_float > 0)
    return capture, dead_offset, active, pops_float


def heuristic_full_sweep(
    demands: np.ndarray,
    populations,
    delay_mask: np.ndarray,
    visit_mask: np.ndarray,
    queue0: np.ndarray,
    control: IterationControl,
) -> Optional[tuple]:
    """Run the whole §4.2 heuristic fixed point in one compiled call.

    Returns ``(throughputs, queue_lengths, waiting, iterations,
    converged, residual)``, or ``None`` when numba is absent (callers
    fall through to the NumPy loop).  The caller performs model
    validation (zero-demand checks) and owns ``control.on_exhausted``.
    """
    kernels = _full_kernels()
    if kernels is None:
        return None
    demands = np.ascontiguousarray(demands, dtype=np.float64)
    capture, dead_offset, active, pops_float = _chain_masks(demands, populations)
    pops = np.asarray(populations, dtype=np.int64)
    max_pop = int(pops.max()) if pops.size else 0
    thr, queue, waiting, iterations, converged, residual = kernels["heuristic"](
        demands,
        pops_float,
        capture,
        dead_offset,
        np.ascontiguousarray(~np.asarray(delay_mask, dtype=bool)),
        np.ascontiguousarray(np.asarray(visit_mask, dtype=bool)),
        active,
        np.ascontiguousarray(queue0, dtype=np.float64),
        max_pop,
        control.tolerance,
        control.max_iterations,
        control.damping,
    )
    return thr, queue, waiting, int(iterations), bool(converged), float(residual)


def schweitzer_full_sweep(
    demands: np.ndarray,
    populations,
    delay_mask: np.ndarray,
    visit_mask: np.ndarray,
    queue0: np.ndarray,
    control: IterationControl,
) -> Optional[tuple]:
    """Run the whole Schweitzer–Bard fixed point in one compiled call."""
    kernels = _full_kernels()
    if kernels is None:
        return None
    demands = np.ascontiguousarray(demands, dtype=np.float64)
    pops_float = np.asarray(populations, dtype=np.float64)
    active = pops_float > 0
    shrink = np.where(
        active, (pops_float - 1.0) / np.where(active, pops_float, 1.0), 1.0
    )
    inactive_offset = np.where(active, 0.0, 1.0)
    thr, queue, waiting, iterations, converged, residual = kernels["schweitzer"](
        demands,
        pops_float,
        np.ascontiguousarray(shrink),
        np.ascontiguousarray(inactive_offset),
        np.ascontiguousarray(~np.asarray(delay_mask, dtype=bool)),
        np.ascontiguousarray(np.asarray(visit_mask, dtype=bool)),
        np.ascontiguousarray(queue0, dtype=np.float64),
        control.tolerance,
        control.max_iterations,
        control.damping,
    )
    return thr, queue, waiting, int(iterations), bool(converged), float(residual)


def asymptotic_full_sweep(
    demands: np.ndarray,
    populations,
    delay_mask: np.ndarray,
    visit_mask: np.ndarray,
    queue0: np.ndarray,
    control: IterationControl,
) -> Optional[tuple]:
    """Run the whole mean-field (CLT) fixed point in one compiled call."""
    kernels = _full_kernels()
    if kernels is None:
        return None
    demands = np.ascontiguousarray(demands, dtype=np.float64)
    pops_float = np.asarray(populations, dtype=np.float64)
    thr, queue, waiting, iterations, converged, residual = kernels["asymptotic"](
        demands,
        pops_float,
        np.ascontiguousarray(pops_float > 0),
        np.ascontiguousarray(~np.asarray(delay_mask, dtype=bool)),
        np.ascontiguousarray(np.asarray(visit_mask, dtype=bool)),
        np.ascontiguousarray(queue0, dtype=np.float64),
        control.tolerance,
        control.max_iterations,
        control.damping,
    )
    return thr, queue, waiting, int(iterations), bool(converged), float(residual)


def _pack_outputs(batch: int, chains: int, stations: int) -> tuple:
    return (
        np.zeros((batch, chains)),
        np.zeros((batch, chains, stations)),
        np.zeros((batch, chains, stations)),
        np.zeros(batch, dtype=np.int64),
        np.zeros(batch, dtype=np.bool_),
        np.zeros(batch),
    )


def heuristic_pack_sweep(
    demands: np.ndarray,
    populations: np.ndarray,
    delay_mask: np.ndarray,
    visit_mask: np.ndarray,
    queue0: np.ndarray,
    control: IterationControl,
) -> Optional[tuple]:
    """Solve B stacked networks with the compiled heuristic, one per slice.

    ``demands``/``visit_mask`` are dense ``(B, R, L)``, ``delay_mask``
    ``(B, L)``, ``populations`` ``(B, R)``, ``queue0`` ``(B, R, L)``.
    Each network runs the per-network kernel to *its own* convergence —
    serially inside one compiled call — so results equal B separate
    :func:`heuristic_full_sweep` calls on the padded slices.  Returns
    ``(throughputs, queues, waiting, iterations, converged, residuals)``
    batched on axis 0, or ``None`` when numba is absent.
    """
    kernels = _full_kernels()
    if kernels is None:
        return None
    demands = np.ascontiguousarray(demands, dtype=np.float64)
    batch, chains, stations = demands.shape
    capture, dead_offset, active, pops_float = _chain_masks(demands, populations)
    pops = np.asarray(populations, dtype=np.int64)
    max_pops = (
        pops.max(axis=1).astype(np.int64)
        if pops.size
        else np.zeros(batch, dtype=np.int64)
    )
    outputs = _pack_outputs(batch, chains, stations)
    kernels["heuristic_pack"](
        demands,
        np.ascontiguousarray(pops_float),
        np.ascontiguousarray(capture),
        np.ascontiguousarray(dead_offset),
        np.ascontiguousarray(~np.asarray(delay_mask, dtype=bool)),
        np.ascontiguousarray(np.asarray(visit_mask, dtype=bool)),
        active,
        np.ascontiguousarray(queue0, dtype=np.float64),
        max_pops,
        control.tolerance,
        control.max_iterations,
        control.damping,
        *outputs,
    )
    return outputs


def schweitzer_pack_sweep(
    demands: np.ndarray,
    populations: np.ndarray,
    delay_mask: np.ndarray,
    visit_mask: np.ndarray,
    queue0: np.ndarray,
    control: IterationControl,
) -> Optional[tuple]:
    """Solve B stacked networks with the compiled Schweitzer–Bard kernel."""
    kernels = _full_kernels()
    if kernels is None:
        return None
    demands = np.ascontiguousarray(demands, dtype=np.float64)
    batch, chains, stations = demands.shape
    pops_float = np.asarray(populations, dtype=np.float64)
    active = pops_float > 0
    shrink = np.where(
        active, (pops_float - 1.0) / np.where(active, pops_float, 1.0), 1.0
    )
    inactive_offset = np.where(active, 0.0, 1.0)
    outputs = _pack_outputs(batch, chains, stations)
    kernels["schweitzer_pack"](
        demands,
        np.ascontiguousarray(pops_float),
        np.ascontiguousarray(shrink),
        np.ascontiguousarray(inactive_offset),
        np.ascontiguousarray(~np.asarray(delay_mask, dtype=bool)),
        np.ascontiguousarray(np.asarray(visit_mask, dtype=bool)),
        np.ascontiguousarray(queue0, dtype=np.float64),
        control.tolerance,
        control.max_iterations,
        control.damping,
        *outputs,
    )
    return outputs


def warmup() -> dict:
    """Compile (or cache-load) every JIT kernel on tiny inputs.

    Returns ``{kernel name: seconds}`` (empty without numba) and records
    each timing in the kernel-cache manifest: the first process on a
    machine pays real compilation, later processes load machine code from
    the fingerprinted directory and their timings collapse — the ratio CI
    checks and uploads (see :func:`repro.mva.kernelcache.warmup_stats`).
    """
    if not numba_available():
        return {}
    from repro.mva.kernelcache import record_warmup

    control = IterationControl(max_iterations=50)
    demands = np.asarray([[0.2, 0.1], [0.1, 0.3]])
    populations = np.asarray([2, 1])
    delay = np.asarray([True, False])
    visit = np.ones((2, 2), dtype=bool)
    queue0 = np.full((2, 2), 0.5)
    timings = {}

    t0 = time.perf_counter()
    compiled_increments(demands, populations, delay)
    timings["increments"] = time.perf_counter() - t0

    for name, sweep in (
        ("heuristic", heuristic_full_sweep),
        ("schweitzer", schweitzer_full_sweep),
        ("asymptotic", asymptotic_full_sweep),
    ):
        t0 = time.perf_counter()
        sweep(demands, populations, delay, visit, queue0, control)
        timings[name] = time.perf_counter() - t0

    for name, sweep in (
        ("heuristic_pack", heuristic_pack_sweep),
        ("schweitzer_pack", schweitzer_pack_sweep),
    ):
        t0 = time.perf_counter()
        sweep(
            demands[None, :, :],
            populations[None, :],
            delay[None, :],
            visit[None, :, :],
            queue0[None, :, :],
            control,
        )
        timings[name] = time.perf_counter() - t0

    for name, seconds in timings.items():
        record_warmup(name, seconds)
    return timings
