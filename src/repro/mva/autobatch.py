"""Calibrated auto-engagement for cross-network SoA batching.

PR 8 gated automatic batching (:attr:`repro.core.objective.
WindowObjective.soa_batchable`) on a single hardcoded constant,
``SOA_DENSE_LIMIT = 8192`` per-network elements — a number measured on
one development machine.  The regime boundary it encodes is real
(batching wins while a single network's per-iteration tensors are small
enough that NumPy dispatch overhead dominates; once one network's state
is itself cache-sized, stacking B of them only evicts the cache — the
120-chain fixture ran at 0.5x batched), but its *location* is a property
of the host: cache sizes, memory bandwidth and BLAS builds move it by an
order of magnitude across machines.

This module replaces the constant with an empirical crossover:

* :func:`calibrate` times a representative batched fixed-point step
  against the equivalent per-network loop over a ladder of per-network
  tensor sizes and locates the size where batching stops winning.  It
  runs once per machine (a few tens of milliseconds) and the result is
  persisted through :mod:`repro.mva.kernelcache`, keyed by the same
  machine fingerprint as the JIT kernels.
* :func:`assess` is the single engagement decision every caller
  consults — ``WindowObjective``, the evaluation planes, and the
  campaign sweeps.  It returns ``(engage, reason)`` so a declined batch
  is never silent: callers log the reason through
  :func:`record_declined`, and :func:`batch_stats` exposes the running
  engaged/declined counters for solver-mix reporting.
* ``REPRO_SOA_CROSSOVER`` pins the crossover explicitly (an integer
  element count), bypassing both the probe and the persisted value —
  the reproducibility escape hatch for benchmarks and tests.

On the ``"compiled"`` tier with numba importable the crossover is moot:
the pack kernel advances each network *serially inside one JIT call*
(see :func:`repro.mva.compiled.heuristic_pack_sweep`), so there is no
cache-thrash regime and batching always engages.
"""

from __future__ import annotations

import logging
import os
import time
from collections import Counter
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "assess",
    "crossover",
    "calibrate",
    "record_engaged",
    "record_declined",
    "batch_stats",
    "reset_stats",
    "reset_crossover",
    "DEFAULT_CROSSOVER",
    "CROSSOVER_ENV_VAR",
]

logger = logging.getLogger("repro.mva.autobatch")

#: Environment variable pinning the crossover (per-network R*L elements).
CROSSOVER_ENV_VAR = "REPRO_SOA_CROSSOVER"

#: Fallback when neither a pin nor a probe result is available (the PR 8
#: constant, kept only as the calibration-failure safety net).
DEFAULT_CROSSOVER = 8_192

#: Per-network element sizes probed by :func:`calibrate`, ascending.
PROBE_LADDER = (64, 256, 1_024, 4_096, 16_384, 65_536)

#: Networks per probe batch and fixed-point steps timed per measurement.
PROBE_BATCH = 8
PROBE_STEPS = 4

#: Minimum batched speedup for a ladder size to count as a win — guards
#: against declaring a crossover on timer noise.
PROBE_MARGIN = 1.05

#: Key under which the calibration persists in the kernel-cache manifest.
CALIBRATION_KEY = "soa-crossover"

#: Session-cached crossover (None until first consulted).
_CROSSOVER: Optional[int] = None

#: Running engagement counters (reset with :func:`reset_stats`).
_STATS: Dict[str, object] = {
    "engaged_batches": 0,
    "engaged_networks": 0,
    "declined_batches": 0,
    "declined_networks": 0,
    "declined_reasons": Counter(),
}


def _probe_step_batched(demands, delay, queue, populations):
    """One representative SoA fixed-point step on ``(B, R, L)`` tensors."""
    total = queue.sum(axis=1)
    seen = total[:, None, :] - queue
    waiting = np.where(delay[:, None, :], demands, demands * (1.0 + seen))
    cycle = waiting.sum(axis=2)
    throughput = populations / np.maximum(cycle, 1.0)
    return throughput[:, :, None] * waiting


def _probe_step_serial(demands, delay, queue, populations):
    """The same step as a per-network Python loop (the serial dispatch)."""
    out = np.empty_like(queue)
    for b in range(queue.shape[0]):
        total = queue[b].sum(axis=0)
        seen = total[None, :] - queue[b]
        waiting = np.where(delay[b][None, :], demands[b], demands[b] * (1.0 + seen))
        cycle = waiting.sum(axis=1)
        throughput = populations[b] / np.maximum(cycle, 1.0)
        out[b] = throughput[:, None] * waiting
    return out


def _time_steps(step, demands, delay, queue, populations) -> float:
    """Best-of-two wall time for :data:`PROBE_STEPS` iterations of ``step``."""
    best = float("inf")
    for _ in range(2):
        state = queue
        t0 = time.perf_counter()
        for _ in range(PROBE_STEPS):
            state = step(demands, delay, state, populations)
        best = min(best, time.perf_counter() - t0)
    return best


def calibrate(persist: bool = True) -> int:
    """Locate the per-network element count where batching stops winning.

    Walks :data:`PROBE_LADDER` timing the batched step against the
    per-network loop; the crossover is the geometric midpoint between the
    last winning and first losing rung (clamped to the ladder ends when
    batching always or never wins).  The probe and its per-rung speedups
    are persisted via :func:`repro.mva.kernelcache.record_calibration`
    so later processes skip the measurement.
    """
    rng = np.random.default_rng(0)
    speedups = []
    last_win: Optional[int] = None
    first_loss: Optional[int] = None
    for elements in PROBE_LADDER:
        stations = max(4, int(np.sqrt(elements / 4)))
        chains = max(1, elements // stations)
        demands = rng.uniform(0.01, 1.0, size=(PROBE_BATCH, chains, stations))
        delay = np.zeros((PROBE_BATCH, stations), dtype=bool)
        delay[:, 0] = True
        populations = rng.integers(1, 9, size=(PROBE_BATCH, chains)).astype(float)
        queue = rng.uniform(0.0, 1.0, size=(PROBE_BATCH, chains, stations))
        batched = _time_steps(_probe_step_batched, demands, delay, queue, populations)
        serial = _time_steps(_probe_step_serial, demands, delay, queue, populations)
        speedup = serial / batched if batched > 0 else float("inf")
        speedups.append({"elements": elements, "speedup": round(speedup, 3)})
        if speedup >= PROBE_MARGIN:
            last_win = elements
        elif first_loss is None:
            first_loss = elements
            break  # the regime boundary is monotone; no need to probe on
    if last_win is None:
        chosen = PROBE_LADDER[0] // 2
    elif first_loss is None:
        chosen = PROBE_LADDER[-1] * 4
    else:
        chosen = int(np.sqrt(float(last_win) * float(first_loss)))
    logger.info(
        "SoA crossover calibrated at %d elements/network (probe: %s)",
        chosen,
        speedups,
    )
    if persist:
        try:
            from repro.mva import kernelcache

            kernelcache.record_calibration(
                CALIBRATION_KEY, {"crossover": chosen, "probe": speedups}
            )
        except Exception:  # pragma: no cover - unwritable cache is benign
            pass
    return chosen


def crossover() -> int:
    """The per-network element count below which batching auto-engages.

    Resolution order: session cache, ``REPRO_SOA_CROSSOVER`` pin, the
    persisted calibration, then a fresh :func:`calibrate` run (whose
    result persists for later processes).  Falls back to
    :data:`DEFAULT_CROSSOVER` if the probe itself fails.
    """
    global _CROSSOVER
    if _CROSSOVER is not None:
        return _CROSSOVER
    pinned = os.environ.get(CROSSOVER_ENV_VAR, "").strip()
    if pinned:
        try:
            _CROSSOVER = max(0, int(pinned))
            return _CROSSOVER
        except ValueError:
            logger.warning(
                "%s=%r is not an integer; ignoring the pin",
                CROSSOVER_ENV_VAR,
                pinned,
            )
    try:
        from repro.mva import kernelcache

        saved = kernelcache.load_calibration(CALIBRATION_KEY)
    except Exception:  # pragma: no cover - unreadable cache is benign
        saved = None
    if saved is not None and isinstance(saved.get("crossover"), int):
        _CROSSOVER = saved["crossover"]
        return _CROSSOVER
    try:
        _CROSSOVER = calibrate()
    except Exception:  # pragma: no cover - probe failure safety net
        logger.warning(
            "SoA crossover probe failed; using the default %d",
            DEFAULT_CROSSOVER,
        )
        _CROSSOVER = DEFAULT_CROSSOVER
    return _CROSSOVER


def reset_crossover() -> None:
    """Drop the session-cached crossover (tests re-pin via the env var)."""
    global _CROSSOVER
    _CROSSOVER = None


def assess(
    solver_name: Optional[str],
    has_reuse: bool,
    backend: Optional[str],
    per_network_elements: int,
    batch_size: int,
) -> Tuple[bool, str]:
    """The single SoA engagement decision: ``(engage, reason)``.

    ``reason`` explains the decision either way; callers pass declines to
    :func:`record_declined` so every batch that stays serial is logged.
    """
    from repro.backend import is_dense, numba_available, resolve_backend
    from repro.mva.soa import BATCHABLE_SOLVERS

    if solver_name not in BATCHABLE_SOLVERS:
        return False, (
            f"solver {solver_name!r} has no batched SoA kernel "
            f"(batchable: {list(BATCHABLE_SOLVERS)})"
        )
    if has_reuse:
        return False, (
            "reuse engine active: warm starts are per-key (a solve may "
            "seed from a neighbour in the same batch), so batches stay "
            "serial"
        )
    resolved = resolve_backend(backend)
    if not is_dense(resolved):
        return False, f"backend {resolved!r} runs the scalar reference loops"
    if batch_size < 2:
        return False, "batch of one network: nothing to batch"
    if resolved == "compiled" and numba_available():
        # The JIT pack kernel advances networks serially inside one
        # compiled call — per-network cache locality, no dispatch
        # overhead — so the cache-thrash regime the crossover guards
        # against does not exist on this tier.
        return True, "jit pack kernel (no crossover on the compiled tier)"
    limit = crossover()
    if per_network_elements <= limit:
        return True, (
            f"{per_network_elements} elements/network <= calibrated "
            f"crossover {limit}"
        )
    return False, (
        f"{per_network_elements} elements/network > calibrated crossover "
        f"{limit}: per-network tensors are compute-bound and stacking "
        "them would evict the cache"
    )


def record_engaged(networks: int) -> None:
    """Count one engaged batch of ``networks`` solves."""
    _STATS["engaged_batches"] += 1
    _STATS["engaged_networks"] += networks
    logger.debug("SoA batching engaged for %d networks", networks)


def record_declined(reason: str, networks: int) -> None:
    """Count — and log — one declined batch of ``networks`` solves."""
    _STATS["declined_batches"] += 1
    _STATS["declined_networks"] += networks
    _STATS["declined_reasons"][reason.split(":")[0]] += 1
    logger.info("SoA batching declined for %d networks: %s", networks, reason)


def batch_stats() -> Dict[str, object]:
    """Running engagement counters (solver-mix observability)."""
    return {
        "engaged_batches": _STATS["engaged_batches"],
        "engaged_networks": _STATS["engaged_networks"],
        "declined_batches": _STATS["declined_batches"],
        "declined_networks": _STATS["declined_networks"],
        "declined_reasons": dict(_STATS["declined_reasons"]),
        "crossover": _CROSSOVER,
    }


def reset_stats() -> None:
    """Zero the engagement counters (benchmark/test isolation)."""
    _STATS["engaged_batches"] = 0
    _STATS["engaged_networks"] = 0
    _STATS["declined_batches"] = 0
    _STATS["declined_networks"] = 0
    _STATS["declined_reasons"] = Counter()
