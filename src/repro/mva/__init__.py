"""Mean Value Analysis solvers (thesis §4.2).

* :func:`~repro.mva.single_chain.solve_single_chain` — exact single-chain
  MVA recursion (also the auxiliary subproblem of the heuristic).
* :func:`~repro.mva.heuristic.solve_mva_heuristic` — the thesis multichain
  heuristic (the function-evaluation engine of WINDIM).
* :func:`~repro.mva.schweitzer.solve_schweitzer` — Schweitzer–Bard AMVA,
  included as a comparison baseline.
* :class:`~repro.mva.convergence.IterationControl` — iteration policy.
"""

from repro.mva.bounds import (
    ThroughputBounds,
    asymptotic_bounds,
    balanced_job_bounds,
    saturation_population,
)
from repro.mva.convergence import IterationControl
from repro.mva.heuristic import initial_queue_lengths, solve_mva_heuristic
from repro.mva.linearizer import solve_linearizer
from repro.mva.schweitzer import solve_schweitzer
from repro.mva.single_chain import SingleChainTrace, solve_single_chain

__all__ = [
    "IterationControl",
    "solve_mva_heuristic",
    "initial_queue_lengths",
    "solve_linearizer",
    "solve_schweitzer",
    "solve_single_chain",
    "SingleChainTrace",
    "ThroughputBounds",
    "asymptotic_bounds",
    "balanced_job_bounds",
    "saturation_population",
]
