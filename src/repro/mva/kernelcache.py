"""Persistent on-disk kernel/warmup cache for the compiled tier.

Numba JIT compilation of the full-sweep kernels (:mod:`repro.mva.
compiled`) costs seconds — acceptable once, ruinous when every worker
process, CI shard and CLI invocation pays it again.  Numba can cache
compiled machine code on disk (``@njit(cache=True)``), but by default it
writes next to the source file (read-only in many installs) and keys the
cache only per function, so a numba upgrade or a CPU change silently
invalidates everything with no way to *observe* whether the cache is
working.

This module gives the compiled tier a managed cache directory:

* :func:`machine_fingerprint` hashes everything that legitimately
  invalidates compiled kernels — numba/NumPy/Python versions, the CPU
  architecture, and the kernel-set version
  (:data:`repro.mva.compiled.JIT_KERNEL_VERSION`) — so one machine's
  artifacts are never served to another regime.
* :func:`activate_numba_cache` points numba's on-disk cache at the
  fingerprinted directory **before** any kernel is compiled, which is
  what makes a second process's warmup a cache *load* (milliseconds)
  instead of a recompile (seconds).
* :func:`record_warmup` / :func:`warmup_stats` keep a small JSON
  manifest of per-kernel warmup timings (first vs latest), the evidence
  CI uploads to prove the cache is actually being hit.

Everything degrades gracefully: without numba the module is inert
bookkeeping, and ``REPRO_KERNEL_CACHE=off`` disables persistence
entirely (warmups are still timed in-process).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import platform
import tempfile
from typing import Dict, Optional

__all__ = [
    "cache_root",
    "machine_fingerprint",
    "kernel_dir",
    "activate_numba_cache",
    "record_warmup",
    "record_calibration",
    "load_calibration",
    "warmup_stats",
]

#: Environment variable selecting the cache root (a directory path, or
#: ``off`` to disable on-disk persistence).
CACHE_ENV_VAR = "REPRO_KERNEL_CACHE"

#: Manifest schema version (bumped on incompatible layout changes).
MANIFEST_VERSION = 1


def _numba_version() -> Optional[str]:
    try:
        import numba

        return str(numba.__version__)
    except ImportError:
        return None


def cache_root() -> Optional[pathlib.Path]:
    """The cache root directory, or None when persistence is disabled.

    ``REPRO_KERNEL_CACHE`` overrides the default
    ``~/.cache/repro-windim``; the literal value ``off`` (or ``0``)
    disables on-disk persistence without disabling the compiled tier.
    """
    raw = os.environ.get(CACHE_ENV_VAR, "").strip()
    if raw.lower() in ("off", "0", "none", "disabled"):
        return None
    if raw:
        return pathlib.Path(raw)
    return pathlib.Path.home() / ".cache" / "repro-windim"


def machine_fingerprint() -> str:
    """Hash of everything that legitimately invalidates compiled kernels.

    Covers the numba and NumPy versions (codegen changes), the Python
    version (bytecode keys numba's own cache), the CPU architecture and
    the kernel-set version — the same facts that define the ``jit``
    parity tier, so a cache directory and a persistent evaluation store
    invalidate together.
    """
    import numpy

    from repro.mva.compiled import JIT_KERNEL_VERSION

    digest = hashlib.sha256()
    digest.update(b"repro-kernel-cache-v1")
    digest.update(str(_numba_version()).encode())
    digest.update(numpy.__version__.encode())
    digest.update(platform.python_version().encode())
    digest.update(platform.machine().encode())
    digest.update(platform.processor().encode())
    digest.update(f"kernel-set-v{JIT_KERNEL_VERSION}".encode())
    return digest.hexdigest()[:16]


def kernel_dir(create: bool = True) -> Optional[pathlib.Path]:
    """The fingerprinted per-machine kernel directory (None when disabled)."""
    root = cache_root()
    if root is None:
        return None
    path = root / "kernels" / machine_fingerprint()
    if create:
        try:
            path.mkdir(parents=True, exist_ok=True)
        except OSError:  # pragma: no cover - unwritable home
            return None
    return path


def activate_numba_cache() -> Optional[pathlib.Path]:
    """Point numba's on-disk function cache at the fingerprinted directory.

    Must run *before* the ``@njit(cache=True)`` kernels are defined —
    numba resolves its cache locator when a function is first compiled.
    Returns the directory in use, or None when persistence is disabled
    (numba then falls back to its default per-source-file location,
    which still persists across processes where writable).
    """
    path = kernel_dir()
    if path is None:
        return None
    try:
        import numba

        os.environ.setdefault("NUMBA_CACHE_DIR", str(path))
        numba.config.CACHE_DIR = str(path)
    except ImportError:
        pass
    return path


# ----------------------------------------------------------------------
# warmup manifest
# ----------------------------------------------------------------------

def _manifest_path() -> Optional[pathlib.Path]:
    path = kernel_dir()
    if path is None:
        return None
    return path / "warmup.json"


def _load_manifest() -> Dict:
    path = _manifest_path()
    if path is None or not path.exists():
        return {
            "version": MANIFEST_VERSION,
            "fingerprint": None,
            "numba": _numba_version(),
            "kernels": {},
            "calibration": {},
        }
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        data = {}
    if not isinstance(data, dict) or data.get("version") != MANIFEST_VERSION:
        data = {"version": MANIFEST_VERSION, "kernels": {}, "calibration": {}}
    data.setdefault("kernels", {})
    data.setdefault("calibration", {})
    return data


def _save_manifest(data: Dict) -> None:
    path = _manifest_path()
    if path is None:
        return
    data["fingerprint"] = machine_fingerprint()
    data["numba"] = _numba_version()
    try:
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".warmup-", suffix=".json"
        )
        with os.fdopen(fd, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
        os.replace(tmp, str(path))
    except OSError:  # pragma: no cover - unwritable cache dir
        pass


def record_warmup(kernel: str, seconds: float) -> None:
    """Record one kernel warmup timing in the on-disk manifest.

    ``first_warmup_s`` is preserved across runs — the second process's
    much smaller ``last_warmup_s`` against it is the cache-hit evidence
    the acceptance bar reads.
    """
    manifest = _load_manifest()
    entry = manifest["kernels"].setdefault(
        kernel, {"first_warmup_s": float(seconds), "warmups": 0}
    )
    entry["last_warmup_s"] = float(seconds)
    entry["warmups"] = int(entry.get("warmups", 0)) + 1
    _save_manifest(manifest)


def record_calibration(key: str, payload: Dict) -> None:
    """Persist a calibration result (e.g. the SoA batching crossover)."""
    manifest = _load_manifest()
    manifest["calibration"][key] = payload
    _save_manifest(manifest)


def load_calibration(key: str) -> Optional[Dict]:
    """A previously persisted calibration payload, or None."""
    value = _load_manifest()["calibration"].get(key)
    return value if isinstance(value, dict) else None


def warmup_stats() -> Dict:
    """The manifest as a plain dict (CI uploads this as an artifact).

    ``persistent`` is False when ``REPRO_KERNEL_CACHE=off``; ``kernels``
    maps kernel name to ``{first_warmup_s, last_warmup_s, warmups}``.
    A kernel whose ``last_warmup_s`` is a small fraction of its
    ``first_warmup_s`` after a process restart is loading machine code
    from the cache rather than recompiling.
    """
    manifest = _load_manifest()
    return {
        "persistent": _manifest_path() is not None,
        "fingerprint": machine_fingerprint(),
        "numba": _numba_version(),
        "kernels": manifest["kernels"],
        "calibration": manifest["calibration"],
    }
