"""WINDIM — window dimensioning for message-switched networks.

A full reproduction of J. Y. K. Chan, *Dimensioning of Message-Switched
Computer-Communication Networks with End-to-End Window Flow Control*
(University of Ottawa, 1979): closed multichain queueing models, exact
product-form solvers, the Reiser–Lavenberg MVA heuristic, integer pattern
search, the WINDIM dimensioning algorithm, and a discrete-event simulator
of store-and-forward networks with end-to-end, local and isarithmic flow
control.

Quickstart::

    from repro import canadian_two_class, windim

    network = canadian_two_class(s1=18.0, s2=18.0)
    result = windim(network)
    print(result.summary())
"""

from repro._version import __version__
from repro.core import (
    PowerReport,
    WindimResult,
    WindowObjective,
    hop_count_windows,
    initial_windows,
    inverse_power,
    network_power,
    power_report,
    windim,
)
from repro.errors import (
    ConvergenceError,
    ModelError,
    ReproError,
    SearchError,
    SimulationError,
    SolverError,
    StabilityError,
)
from repro.exact import (
    solve_convolution,
    solve_ctmc,
    solve_gordon_newell,
    solve_jackson,
    solve_mixed,
    solve_mva_exact,
    solve_semiclosed,
    station_queue_distribution,
)
from repro.mva import (
    IterationControl,
    solve_linearizer,
    solve_mva_heuristic,
    solve_schweitzer,
    solve_single_chain,
)
from repro.netmodel import (
    Channel,
    Duplex,
    Topology,
    TrafficClass,
    arpanet_fragment,
    build_closed_network,
    canadian_four_class,
    canadian_topology,
    canadian_two_class,
    tandem_network,
)
from repro.queueing import ClosedChain, ClosedNetwork, Discipline, OpenChain, Station
from repro.search import (
    EvaluationCache,
    IntegerBox,
    SearchResult,
    coordinate_descent,
    exhaustive_search,
    pattern_search,
)
from repro.solution import NetworkSolution

__all__ = [
    "__version__",
    # core
    "windim",
    "WindimResult",
    "network_power",
    "inverse_power",
    "power_report",
    "PowerReport",
    "WindowObjective",
    "initial_windows",
    "hop_count_windows",
    # model
    "Station",
    "Discipline",
    "ClosedChain",
    "OpenChain",
    "ClosedNetwork",
    "NetworkSolution",
    # solvers
    "solve_mva_heuristic",
    "solve_schweitzer",
    "solve_linearizer",
    "solve_single_chain",
    "IterationControl",
    "solve_mva_exact",
    "solve_convolution",
    "solve_ctmc",
    "solve_gordon_newell",
    "solve_jackson",
    "solve_mixed",
    "solve_semiclosed",
    "station_queue_distribution",
    # search
    "pattern_search",
    "exhaustive_search",
    "coordinate_descent",
    "EvaluationCache",
    "IntegerBox",
    "SearchResult",
    # netmodel
    "Topology",
    "Channel",
    "Duplex",
    "TrafficClass",
    "build_closed_network",
    "canadian_topology",
    "canadian_two_class",
    "canadian_four_class",
    "arpanet_fragment",
    "tandem_network",
    # errors
    "ReproError",
    "ModelError",
    "SolverError",
    "ConvergenceError",
    "StabilityError",
    "SearchError",
    "SimulationError",
]
