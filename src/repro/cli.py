"""Command-line interface: ``windim <subcommand>``.

Subcommands
-----------
``solve`` (alias ``run``)
    Run the WINDIM dimensioning algorithm on a named example network.
    Supports the resilience runtime: ``--resilient`` (retry/escalation
    ladder), ``--deadline`` (graceful best-so-far on expiry) and
    ``--checkpoint PATH`` / ``--resume`` (crash-safe checkpointing; a
    SIGINT/SIGTERM flushes a final checkpoint before exiting 130), and
    the reuse engine: ``--reuse`` (warm-started fixed points, shared
    exact lattices, bound-based pruning) and ``--store PATH`` (persistent
    cross-run evaluation store, fingerprinted to the model).  With
    ``--workers N`` evaluations run on a worker pool; ``--pool``
    selects the strategy (``persistent`` shared-memory fleet with the
    speculative scheduler — the default — or ``per-batch`` executors).
``evaluate``
    Solve a network at explicit window settings and print the power report.
``sweep``
    Run WINDIM over a list of arrival-rate vectors (Table 4.7-style).
``simulate``
    Run the discrete-event simulator and print measured statistics.
``buffers``
    Recommend per-queue buffer sizes for given windows (thesis §2.3).
``multistart``
    WINDIM from multiple starting points (global-gap mitigation).
``verify``
    Differential verification: fuzz random networks through every
    applicable solver pair and replay the golden thesis fixtures.
``planes``
    List the registered evaluation-plane backends (the execution paths
    ``solve``/``multistart`` pick from — serial, per-batch pool,
    persistent fleet, resilient ladder) and what each requires.  Every
    listed backend is certified by the cross-backend conformance suite
    (``tests/evalplane/``) to walk the bitwise-identical search
    trajectory as the serial reference.
``chaos``
    Run the named fault-injection battery (worker crashes/hangs, store
    and checkpoint corruption, slow IO, clock skew — see
    :mod:`repro.chaos.battery`) against a small WINDIM instance and
    print a survival report.  ``--list`` shows the plans; ``--plans``
    selects a subset.

Exit codes
----------
The CLI distinguishes *how* a run ended, so supervisors can branch on
``$?`` instead of scraping the report:

====  ==========================================================
code  meaning
====  ==========================================================
0     success (``chaos``: every plan survived)
1     verification/battery failures (``verify``, ``chaos``)
2     usage or runtime error (:class:`~repro.errors.ReproError`)
3     completed, but degraded: the evaluation plane stepped down
      its ladder mid-search (result is still trajectory-exact)
4     budget exhausted: best-so-far windows under a deadline or
      evaluation cap
5     resilient ladder exhausted: no solver rung converged
130   interrupted (checkpointed state flushed when configured)
====  ==========================================================

Examples
--------
::

    windim solve --network canadian2 --rates 18 18
    windim run --network canadian2 --rates 18 18 --resilient \
        --checkpoint run.ckpt --resume --deadline 300
    windim run --network arpanet --rates 8 8 6 6 --reuse --store run.store
    windim evaluate --network canadian4 --rates 6 6 6 12 --windows 1 1 1 4
    windim sweep --network canadian2 --rates "12.5,12.5;25,25;50,50"
    windim simulate --network canadian2 --rates 18 18 --windows 4 4 --seed 3
    windim verify --seed 0 --cases 25
    windim verify --record-golden
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import render_table
from repro.backend import BACKENDS, BACKEND_ENV_VAR
from repro.core.objective import SOLVERS
from repro.core.power import power_report
from repro.core.windim import windim
from repro.errors import LadderExhaustedError, ReproError
from repro.netmodel.examples import (
    arpanet_fragment,
    canadian_four_class,
    canadian_two_class,
    four_class_traffic,
    tandem_network,
    two_class_traffic,
    canadian_topology,
)
from repro.queueing.network import ClosedNetwork

__all__ = [
    "EXIT_BUDGET_EXHAUSTED",
    "EXIT_DEGRADED",
    "EXIT_ERROR",
    "EXIT_INTERRUPTED",
    "EXIT_LADDER_EXHAUSTED",
    "EXIT_OK",
    "build_parser",
    "main",
]

#: Documented process exit codes (see the module docstring).
EXIT_OK = 0
EXIT_ERROR = 2
EXIT_DEGRADED = 3
EXIT_BUDGET_EXHAUSTED = 4
EXIT_LADDER_EXHAUSTED = 5
EXIT_INTERRUPTED = 130

#: name -> (expected number of rates, factory)
NETWORKS: Dict[str, Tuple[int, Callable[..., ClosedNetwork]]] = {
    "canadian2": (2, canadian_two_class),
    "canadian4": (4, canadian_four_class),
    "arpanet": (4, lambda *rates: arpanet_fragment(rates)),
    "tandem4": (1, lambda rate: tandem_network(4, rate)),
}


def _network_from_args(args: argparse.Namespace) -> ClosedNetwork:
    if getattr(args, "spec", None):
        from repro.netmodel.spec import network_from_spec

        if args.rates:
            raise ReproError("give either --spec or --rates, not both")
        return network_from_spec(args.spec)
    if not args.rates:
        raise ReproError("--rates is required (or pass --spec <file.json>)")
    expected, factory = NETWORKS[args.network]
    if len(args.rates) != expected:
        raise ReproError(
            f"network {args.network!r} needs {expected} arrival rates, "
            f"got {len(args.rates)}"
        )
    return factory(*args.rates)


def _cmd_solve(args: argparse.Namespace) -> int:
    network = _network_from_args(args)
    result = windim(
        network,
        solver=args.solver,
        backend=args.solver_backend,
        workers=args.workers,
        pool_mode=args.pool,
        max_window=args.max_window,
        start=args.start,
        max_evaluations=args.max_evaluations,
        resilient=args.resilient,
        reuse=args.reuse,
        store_path=args.store,
        max_seconds=args.deadline,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        handle_signals=args.checkpoint is not None,
    )
    print(result.summary())
    return _exit_code_for(result)


def _exit_code_for(result) -> int:
    """Map a finished run onto the documented degraded-completion codes."""
    if getattr(result, "status", "completed") == "budget_exhausted":
        return EXIT_BUDGET_EXHAUSTED
    if getattr(result, "degradations", ()):
        return EXIT_DEGRADED
    return EXIT_OK


def _cmd_evaluate(args: argparse.Namespace) -> int:
    network = _network_from_args(args)
    if len(args.windows) != network.num_chains:
        raise ReproError(
            f"need {network.num_chains} windows, got {len(args.windows)}"
        )
    solver = SOLVERS[args.solver]
    solution = solver(
        network.with_populations(args.windows), backend=args.solver_backend
    )
    print(solution.summary())
    report = power_report(solution)
    print(report.summary())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    expected, factory = NETWORKS[args.network]
    rate_vectors: List[List[float]] = []
    for chunk in args.rates_list.split(";"):
        rates = [float(x) for x in chunk.split(",") if x.strip()]
        if len(rates) != expected:
            raise ReproError(
                f"rate vector {chunk!r} has {len(rates)} entries; "
                f"{args.network!r} needs {expected}"
            )
        rate_vectors.append(rates)
    rows = []
    for rates in rate_vectors:
        result = windim(
            factory(*rates), solver=args.solver, max_window=args.max_window
        )
        rows.append(
            tuple(rates)
            + (sum(rates), " ".join(str(w) for w in result.windows), result.power)
        )
    headers = [f"S{i + 1}" for i in range(expected)] + [
        "total",
        "optimal windows",
        "power",
    ]
    print(render_table(headers, rows, title=f"WINDIM sweep on {args.network}"))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim import FlowControlConfig, simulate

    if getattr(args, "spec", None):
        from repro.netmodel.spec import load_spec

        if args.rates:
            raise ReproError("give either --spec or --rates, not both")
        topology, classes = load_spec(args.spec)
    else:
        expected, _factory = NETWORKS.get(args.network, (0, None))
        if len(args.rates) != expected:
            raise ReproError(
                f"network {args.network!r} needs {expected} arrival rates"
            )
        if args.network == "canadian2":
            topology, classes = canadian_topology(), two_class_traffic(*args.rates)
        elif args.network == "canadian4":
            topology, classes = canadian_topology(), four_class_traffic(*args.rates)
        else:
            raise ReproError(
                "simulate supports --spec or the canadian2/canadian4 networks"
            )
    if len(args.windows) != len(classes):
        raise ReproError(f"need {len(classes)} windows, got {len(args.windows)}")
    result = simulate(
        topology,
        classes,
        FlowControlConfig.end_to_end(args.windows),
        duration=args.duration,
        warmup=args.warmup,
        source_model=args.source_model,
        seed=args.seed,
        ack_delay=args.ack_delay,
    )
    print(result.summary())
    return 0


def _cmd_buffers(args: argparse.Namespace) -> int:
    from repro.analysis.buffers import recommend_buffers

    network = _network_from_args(args)
    if len(args.windows) != network.num_chains:
        raise ReproError(
            f"need {network.num_chains} windows, got {len(args.windows)}"
        )
    network = network.with_populations(args.windows)
    recommendations = recommend_buffers(network, args.target)
    rows = [
        (
            rec.station,
            round(rec.mean_queue_length, 3),
            rec.buffer_size,
            rec.hard_bound,
            f"{rec.overflow_probability:.2e}",
        )
        for rec in sorted(recommendations.values(), key=lambda r: r.station)
    ]
    print(
        render_table(
            ["queue", "mean length", "buffer", "hard bound", "P(overflow)"],
            rows,
            title=f"buffer sizes for P(overflow) <= {args.target:g}",
        )
    )
    return 0


def _cmd_multistart(args: argparse.Namespace) -> int:
    from repro.core.multistart import windim_multistart

    network = _network_from_args(args)
    result = windim_multistart(
        network,
        solver=args.solver,
        backend=args.solver_backend,
        workers=args.workers,
        pool_mode=args.pool,
        max_window=args.max_window,
        reuse=args.reuse,
        store_path=args.store,
    )
    print(result.summary())
    return _exit_code_for(result)


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos.battery import builtin_plans, run_battery

    if args.list:
        plans = builtin_plans()
        width = max(len(name) for name in plans)
        for name, plan in plans.items():
            runtime = plan.pool or "serial"
            print(f"{name:<{width}}  [{runtime}] {plan.description}")
        return 0
    network = _network_from_args(args)
    report = run_battery(
        network,
        plan_names=args.plans,
        max_window=args.max_window,
        network_label=args.network,
    )
    print(report.summary())
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(report.to_json() + "\n")
        print(f"report written to {args.json}")
    return 0 if report.ok else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import (
        generate_cases,
        record_fixtures,
        run_differential,
        verify_fixtures,
    )

    if args.record_golden:
        for path in record_fixtures(args.golden_dir):
            print(f"recorded {path}")
        return 0

    if args.cases < 0:
        print(f"windim verify: --cases must be >= 0, got {args.cases}", file=sys.stderr)
        return 2
    if args.cases == 0 and not args.golden:
        print("nothing to do: --cases 0 and no --golden", file=sys.stderr)
        return 0

    ok = True
    if args.cases > 0:
        cases = generate_cases(args.seed, args.cases)
        report = run_differential(cases, include_simulation=args.sim)
        print(report.summary())
        if args.json:
            from pathlib import Path

            Path(args.json).write_text(report.to_json() + "\n")
            print(f"report written to {args.json}")
        ok = ok and report.ok

    if args.golden:
        results = verify_fixtures(args.golden_dir)
        failed = {name: issues for name, issues in results.items() if issues}
        print(
            f"golden fixtures: {len(results) - len(failed)}/{len(results)} match"
        )
        for name, issues in failed.items():
            for issue in issues:
                print(f"  !! {name}: {issue}")
        ok = ok and not failed

    return 0 if ok else 1


def _cmd_planes(args: argparse.Namespace) -> int:
    from repro.evalplane import plane_specs

    rows = []
    for spec in plane_specs():
        needs = []
        if spec.needs_parallel:
            needs.append("workers > 1")
        if spec.pool_mode is not None:
            needs.append(f"pool={spec.pool_mode}")
        if spec.needs_ladder:
            needs.append("resilient ladder")
        rows.append((spec.name, spec.description, ", ".join(needs) or "-"))
    print(
        render_table(
            ["plane", "description", "requires"],
            rows,
            title="registered evaluation planes",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="windim",
        description="WINDIM window dimensioning (Chan, 1979 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--network",
            choices=sorted(NETWORKS),
            default="canadian2",
            help="example network to operate on",
        )
        p.add_argument(
            "--rates",
            type=float,
            nargs="+",
            default=[],
            help="per-class Poisson arrival rates (msg/s)",
        )
        p.add_argument(
            "--spec",
            default=None,
            help="JSON network-spec file (replaces --network/--rates)",
        )
        p.add_argument(
            "--solver",
            choices=sorted(SOLVERS),
            default="mva-heuristic",
            help="performance solver",
        )
        p.add_argument(
            "--solver-backend",
            choices=BACKENDS,
            default=None,
            dest="solver_backend",
            help="solver kernel: vectorized dense arrays (default), the "
            "scalar reference loops, or compiled (numba JIT over the same "
            "dense kernels; falls back to vectorized bit-for-bit when "
            "numba is not installed); also settable via "
            f"{BACKEND_ENV_VAR}",
        )

    solve = sub.add_parser(
        "solve",
        aliases=["run"],
        help="run WINDIM (alias: run)",
    )
    add_common(solve)
    solve.add_argument("--max-window", type=int, default=32)
    solve.add_argument(
        "--start",
        type=int,
        nargs="+",
        default=None,
        help="initial windows (default: hop counts)",
    )
    solve.add_argument(
        "--max-evaluations",
        type=int,
        default=10_000,
        help="cap on fresh objective evaluations",
    )
    solve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="evaluate objective points on a pool of N worker processes "
        "(default: in-process)",
    )
    solve.add_argument(
        "--pool",
        choices=("persistent", "per-batch"),
        default=None,
        help="worker-pool strategy with --workers: 'persistent' (default; "
        "long-lived shared-memory pool driven by the speculative "
        "scheduler) or 'per-batch' (fresh executor per neighborhood "
        "batch); default also honours $REPRO_POOL",
    )
    solve.add_argument(
        "--resilient",
        action="store_true",
        help="wrap the solver in the retry/escalation ladder",
    )
    solve.add_argument(
        "--reuse",
        action="store_true",
        help="cross-evaluation reuse: warm-started fixed points, shared "
        "exact lattices, and bound-based pruning (same optimum, fewer "
        "iterations/solves)",
    )
    solve.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="persistent evaluation store: preload previous runs' "
        "evaluations and warm-start seeds, append this run's "
        "(fingerprinted to the network+solver)",
    )
    solve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget; on expiry the best-so-far windows are "
        "reported instead of hanging",
    )
    solve.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write atomic JSON checkpoints of the search state here "
        "(also flushed on SIGINT/SIGTERM)",
    )
    solve.add_argument(
        "--checkpoint-every",
        type=int,
        default=25,
        metavar="N",
        help="fresh evaluations between periodic checkpoints",
    )
    solve.add_argument(
        "--resume",
        action="store_true",
        help="seed the evaluation cache from --checkpoint before searching",
    )
    solve.set_defaults(handler=_cmd_solve)

    evaluate = sub.add_parser("evaluate", help="solve at fixed windows")
    add_common(evaluate)
    evaluate.add_argument("--windows", type=int, nargs="+", required=True)
    evaluate.set_defaults(handler=_cmd_evaluate)

    sweep = sub.add_parser("sweep", help="WINDIM over many load points")
    sweep.add_argument(
        "--network", choices=sorted(NETWORKS), default="canadian2"
    )
    sweep.add_argument(
        "--rates-list",
        required=True,
        help="semicolon-separated rate vectors, e.g. '12.5,12.5;25,25'",
    )
    sweep.add_argument(
        "--solver", choices=sorted(SOLVERS), default="mva-heuristic"
    )
    sweep.add_argument("--max-window", type=int, default=32)
    sweep.set_defaults(handler=_cmd_sweep)

    simulate_p = sub.add_parser("simulate", help="discrete-event simulation")
    simulate_p.add_argument(
        "--network", choices=("canadian2", "canadian4"), default="canadian2"
    )
    simulate_p.add_argument("--rates", type=float, nargs="+", default=[])
    simulate_p.add_argument(
        "--spec", default=None, help="JSON network-spec file"
    )
    simulate_p.add_argument("--windows", type=int, nargs="+", required=True)
    simulate_p.add_argument("--duration", type=float, default=2000.0)
    simulate_p.add_argument("--warmup", type=float, default=200.0)
    simulate_p.add_argument(
        "--source-model", choices=("closed", "poisson"), default="closed"
    )
    simulate_p.add_argument("--seed", type=int, default=0)
    simulate_p.add_argument(
        "--ack-delay",
        type=float,
        default=0.0,
        help="mean acknowledgement transit time (s); 0 = instantaneous",
    )
    simulate_p.set_defaults(handler=_cmd_simulate)

    buffers = sub.add_parser(
        "buffers", help="recommend buffer sizes for given windows"
    )
    add_common(buffers)
    buffers.add_argument("--windows", type=int, nargs="+", required=True)
    buffers.add_argument(
        "--target",
        type=float,
        default=1e-3,
        help="overflow probability target (default 1e-3)",
    )
    buffers.set_defaults(handler=_cmd_buffers)

    multistart = sub.add_parser(
        "multistart", help="WINDIM from several starting points"
    )
    add_common(multistart)
    multistart.add_argument("--max-window", type=int, default=32)
    multistart.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="batch-solve seeds and neighborhoods on N worker processes",
    )
    multistart.add_argument(
        "--pool",
        choices=("persistent", "per-batch"),
        default=None,
        help="worker-pool strategy with --workers (see 'solve --pool')",
    )
    multistart.add_argument(
        "--reuse",
        action="store_true",
        help="cross-evaluation reuse across all starts (warm starts, "
        "shared lattices, bound pruning)",
    )
    multistart.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="persistent evaluation store shared across runs",
    )
    multistart.set_defaults(handler=_cmd_multistart)

    verify = sub.add_parser(
        "verify", help="cross-solver differential verification"
    )
    verify.add_argument(
        "--seed", type=int, default=0, help="master fuzz seed (default 0)"
    )
    verify.add_argument(
        "--cases",
        type=int,
        default=25,
        help="number of fuzzed networks to check (0 = skip fuzzing)",
    )
    verify.add_argument(
        "--sim",
        action="store_true",
        help="also validate the discrete-event simulator (slow)",
    )
    verify.add_argument(
        "--golden",
        action="store_true",
        help="also replay the golden thesis fixtures",
    )
    verify.add_argument(
        "--record-golden",
        action="store_true",
        help="(re)record the golden fixtures instead of verifying",
    )
    verify.add_argument(
        "--golden-dir",
        default=None,
        help="golden fixture directory (default: tests/golden)",
    )
    verify.add_argument(
        "--json", default=None, help="write the JSON report to this path"
    )
    verify.set_defaults(handler=_cmd_verify)

    planes = sub.add_parser(
        "planes", help="list registered evaluation-plane backends"
    )
    planes.set_defaults(handler=_cmd_planes)

    chaos = sub.add_parser(
        "chaos",
        help="run the fault-injection battery and print a survival report",
    )
    chaos.add_argument(
        "--network",
        choices=sorted(NETWORKS),
        default="canadian2",
        help="example network the battery dimensions",
    )
    chaos.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[18.0, 18.0],
        help="per-class arrival rates (default: 18 18 for canadian2)",
    )
    chaos.add_argument(
        "--max-window",
        type=int,
        default=6,
        help="search-space bound (small keeps each scenario fast)",
    )
    chaos.add_argument(
        "--plans",
        nargs="+",
        default=None,
        metavar="NAME",
        help="run only these named plans (default: the full battery)",
    )
    chaos.add_argument(
        "--list",
        action="store_true",
        help="list the builtin fault plans and exit",
    )
    chaos.add_argument(
        "--json", default=None, help="write the JSON report to this path"
    )
    chaos.set_defaults(handler=_cmd_chaos, spec=None)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except LadderExhaustedError as exc:
        # Every rung of the resilient solver ladder failed: distinct from
        # a generic error so supervisors can park the instance instead of
        # retrying a hopeless configuration.
        print(f"error: resilient ladder exhausted: {exc}", file=sys.stderr)
        return EXIT_LADDER_EXHAUSTED
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except KeyboardInterrupt as exc:
        # A checkpointed solve flushes its state before unwinding here;
        # tell the operator where to pick the run back up.
        detail = str(exc)
        message = "interrupted"
        if detail:
            message += f": {detail}"
        if getattr(args, "checkpoint", None):
            message += f" (resume with --checkpoint {args.checkpoint} --resume)"
        print(message, file=sys.stderr)
        return EXIT_INTERRUPTED


if __name__ == "__main__":
    sys.exit(main())
