"""Crash-safe checkpoint/resume for pattern searches.

The state a WINDIM pattern search accumulates is, almost entirely, its
:class:`~repro.search.cache.EvaluationCache` — every window vector solved
so far and its objective value (the APL ``XCMP``/``FXCMP`` arrays).  The
search itself is deterministic, so *cache + search parameters* is a
complete checkpoint: a resumed run replays the identical trajectory, pays
cache hits for everything already solved, and performs fresh evaluations
only past the interruption point.

Format (JSON, one object):

``version``
    Schema version (currently 1); mismatches are rejected.
``meta``
    Free-form run description (dimensions, solver, knobs); on resume the
    chain count is validated against the network being solved.
``evaluations`` / ``best_point`` / ``best_value``
    Progress snapshot at save time (informational).
``cache``
    List of ``[[w1, ..., wR], value]`` pairs — the whole evaluation cache.

Writes are atomic: the JSON is written to a same-directory temp file,
fsynced, then ``os.replace``-d over the target, so a crash (or SIGKILL)
mid-write leaves either the previous checkpoint or a complete new one —
never a torn file.  A truncated/corrupt file found at *load* time (e.g.
written by a non-atomic foreign tool) is rejected with
:class:`~repro.errors.SearchError`.
"""

from __future__ import annotations

import json
import math
import os
import signal
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import SearchError
from repro.resilience.retry import RetryPolicy

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointCorruptError",
    "SearchCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointManager",
    "signal_checkpoint_guard",
]

CHECKPOINT_VERSION = 1

#: Retries for the atomic checkpoint write itself: transient IO errors
#: (full-ish disk, NFS hiccup, injected faults) get two quick retries
#: before the failure propagates.
DEFAULT_CHECKPOINT_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.01, multiplier=4.0, max_delay=0.2
)


class CheckpointCorruptError(SearchError):
    """A checkpoint file exists but its *bytes* are damaged.

    Distinguished from other :class:`SearchError` cases (missing file,
    version mismatch, wrong network) so resume logic can treat damage as
    recoverable — quarantine the file and start fresh — while still
    failing loudly on genuine mis-use.
    """

Point = Tuple[int, ...]


@dataclass
class SearchCheckpoint:
    """In-memory form of one checkpoint file."""

    cache_entries: List[Tuple[Point, float]]
    best_point: Optional[Point] = None
    best_value: float = math.inf
    evaluations: int = 0
    meta: Dict[str, object] = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    def to_json(self) -> str:
        """Serialise to the on-disk JSON format."""
        payload = {
            "version": self.version,
            "meta": self.meta,
            "evaluations": self.evaluations,
            "best_point": list(self.best_point) if self.best_point else None,
            "best_value": self.best_value if math.isfinite(self.best_value) else None,
            "cache": [[list(point), value] for point, value in self.cache_entries],
        }
        return json.dumps(payload, indent=None, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str, source: str = "<string>") -> "SearchCheckpoint":
        """Parse and validate; raises :class:`SearchError` on any defect."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointCorruptError(
                f"checkpoint {source} is not valid JSON (truncated or "
                f"corrupted write?): {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise CheckpointCorruptError(
                f"checkpoint {source}: top level must be an object"
            )
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise SearchError(
                f"checkpoint {source}: unsupported version {version!r} "
                f"(expected {CHECKPOINT_VERSION})"
            )
        raw_cache = payload.get("cache")
        if not isinstance(raw_cache, list):
            raise CheckpointCorruptError(
                f"checkpoint {source}: missing 'cache' list"
            )
        entries: List[Tuple[Point, float]] = []
        dimensions: Optional[int] = None
        for item in raw_cache:
            try:
                raw_point, raw_value = item
                point = tuple(int(x) for x in raw_point)
                value = float(raw_value)
            except (TypeError, ValueError) as exc:
                raise CheckpointCorruptError(
                    f"checkpoint {source}: malformed cache entry {item!r}"
                ) from exc
            if dimensions is None:
                dimensions = len(point)
            elif len(point) != dimensions:
                raise SearchError(
                    f"checkpoint {source}: inconsistent point dimensions "
                    f"({len(point)} vs {dimensions})"
                )
            entries.append((point, value))
        best_point = payload.get("best_point")
        best_value = payload.get("best_value")
        meta = payload.get("meta") or {}
        if not isinstance(meta, dict):
            raise SearchError(f"checkpoint {source}: 'meta' must be an object")
        return cls(
            cache_entries=entries,
            best_point=tuple(int(x) for x in best_point) if best_point else None,
            best_value=float(best_value) if best_value is not None else math.inf,
            evaluations=int(payload.get("evaluations") or 0),
            meta=meta,
            version=int(version),
        )

    def seed_cache(self, cache) -> int:
        """Load the saved entries into an ``EvaluationCache``.

        Entries are inserted directly into ``cache.values`` so they count
        as neither hits nor misses: the resumed run's ``evaluations``
        figure then measures *fresh* work only.  Returns the number of
        entries seeded.
        """
        for point, value in self.cache_entries:
            cache.values[point] = value
        return len(self.cache_entries)


def save_checkpoint(path: str, checkpoint: SearchCheckpoint) -> str:
    """Atomically write ``checkpoint`` to ``path``; returns the path."""
    from repro.chaos import hooks as chaos_hooks

    text = checkpoint.to_json()
    action = chaos_hooks.perform("checkpoint.write")
    if action is not None and action.action == "corrupt":
        # Simulate a torn / bit-rotted write reaching the final file: the
        # atomic rename below publishes damaged bytes.
        text = text[: max(1, len(text) // 2)]
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def load_checkpoint(path: str) -> SearchCheckpoint:
    """Read and validate a checkpoint file.

    Raises
    ------
    SearchError
        When the file is missing, unreadable, truncated, or fails schema
        validation.
    """
    try:
        with open(path, "r") as handle:
            text = handle.read()
    except OSError as exc:
        raise SearchError(f"cannot read checkpoint {path}: {exc}") from exc
    return SearchCheckpoint.from_json(text, source=path)


class CheckpointManager:
    """Periodic checkpointing hook for a running search.

    Wire :meth:`note_evaluation` as the search's per-evaluation callback:
    every ``every`` fresh evaluations the current cache contents are
    flushed to ``path`` atomically.  :meth:`flush` forces a write (used on
    normal completion and from signal handlers).

    Parameters
    ----------
    path:
        Checkpoint file location.
    every:
        Fresh evaluations between automatic saves (>= 1).
    meta:
        Run description stored in the file (validated on resume).
    policy:
        :class:`~repro.resilience.retry.RetryPolicy` for the write itself
        (transient ``OSError`` retried with backoff before propagating).
    """

    def __init__(
        self,
        path: str,
        every: int = 25,
        meta: Optional[Dict[str, object]] = None,
        policy: Optional[RetryPolicy] = None,
    ):
        if every < 1:
            raise SearchError(f"checkpoint interval must be >= 1, got {every}")
        self.path = str(path)
        self.every = every
        self.meta = dict(meta or {})
        self.policy = policy or DEFAULT_CHECKPOINT_RETRY
        self.saves = 0
        self.write_retries = 0
        self._cache = None
        self._since_save = 0

    def attach(self, cache) -> None:
        """Bind the live :class:`EvaluationCache` snapshots are taken from."""
        self._cache = cache

    def note_evaluation(self, cache) -> None:
        """Per-fresh-evaluation hook; saves every ``every`` calls."""
        self._cache = cache
        self._since_save += 1
        if self._since_save >= self.every:
            self.flush()

    def flush(self) -> Optional[str]:
        """Write a checkpoint now (no-op before any cache is attached).

        The cache state is captured in one atomic ``snapshot()`` so a
        flush racing concurrent batch inserts always serialises a
        mutually consistent (entries, best, evaluations) triple.
        """
        if self._cache is None:
            return None
        entries, best_point, best_value, evaluations = self._cache.snapshot()
        checkpoint = SearchCheckpoint(
            cache_entries=entries,
            best_point=best_point,
            best_value=best_value,
            evaluations=evaluations,
            meta=self.meta,
        )
        def _note_retry(attempt: int, error: BaseException) -> None:
            self.write_retries += 1

        self.policy.call(
            lambda: save_checkpoint(self.path, checkpoint),
            retry_on=(OSError,),
            salt=self.path,
            on_retry=_note_retry,
        )
        self.saves += 1
        self._since_save = 0
        return self.path


@contextmanager
def signal_checkpoint_guard(manager: CheckpointManager) -> Iterator[None]:
    """Flush a final checkpoint on SIGINT/SIGTERM, then stop normally.

    While the context is active, SIGINT and SIGTERM first flush the
    manager's current state to disk and then raise ``KeyboardInterrupt``
    so the interrupted search unwinds through ordinary exception handling
    (the CLI converts it into exit code 130).  Previous handlers are
    restored on exit.  Outside the main thread — where Python forbids
    ``signal.signal`` — the guard degrades to a no-op.
    """
    previous = {}
    signals = (signal.SIGINT, signal.SIGTERM)

    def handler(signum, frame):
        try:
            manager.flush()
        finally:
            raise KeyboardInterrupt(
                f"interrupted by signal {signum}; checkpoint flushed to "
                f"{manager.path}"
            )

    try:
        for sig in signals:
            previous[sig] = signal.signal(sig, handler)
    except ValueError:  # not the main thread
        for sig, old in previous.items():
            signal.signal(sig, old)
        previous = {}
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)
