"""Resilient solver runtime (retry ladder, budgets, checkpoint/resume).

Long-running WINDIM jobs must survive three failure modes the bare
algorithms do not handle:

* a *diverging fixed point* at one window vector — contained by the
  :class:`~repro.resilience.ladder.ResilientSolver` escalation ladder
  (damped retries, then algorithm escalation, with structured
  :class:`~repro.resilience.health.SolveHealth` records);
* an *unbounded run* — contained by
  :class:`~repro.resilience.budget.SearchBudget` deadlines and evaluation
  budgets that degrade a search to best-so-far instead of hanging;
* a *crash or kill signal* — contained by atomic JSON checkpoints and
  resume (:mod:`repro.resilience.checkpoint`), wired into
  ``windim run --checkpoint PATH --resume``.

Every bounded-retry decision across these layers (ladder rungs, pool
respawns, store IO, checkpoint writes) shares one
:class:`~repro.resilience.retry.RetryPolicy`.
"""

from repro.resilience.budget import BudgetExhausted, SearchBudget
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointCorruptError,
    CheckpointManager,
    SearchCheckpoint,
    load_checkpoint,
    save_checkpoint,
    signal_checkpoint_guard,
)
from repro.resilience.health import (
    AttemptOutcome,
    DegradationEvent,
    PoolEvent,
    PoolHealth,
    SolveAttempt,
    SolveHealth,
)
from repro.resilience.retry import RetryPolicy
from repro.resilience.ladder import (
    DEFAULT_DAMPING_SCHEDULE,
    DEFAULT_ESCALATION,
    ResilientSolver,
    solve_resilient,
)

__all__ = [
    "AttemptOutcome",
    "DegradationEvent",
    "PoolEvent",
    "PoolHealth",
    "RetryPolicy",
    "SolveAttempt",
    "SolveHealth",
    "ResilientSolver",
    "solve_resilient",
    "DEFAULT_DAMPING_SCHEDULE",
    "DEFAULT_ESCALATION",
    "SearchBudget",
    "BudgetExhausted",
    "CHECKPOINT_VERSION",
    "CheckpointCorruptError",
    "SearchCheckpoint",
    "CheckpointManager",
    "save_checkpoint",
    "load_checkpoint",
    "signal_checkpoint_guard",
]
