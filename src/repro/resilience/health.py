"""Structured health records for resilient solves.

A :class:`SolveHealth` record tells the full story of one objective
evaluation under the escalation ladder: every solver/damping rung that was
tried, how it failed (or why it was skipped), and which rung finally
produced the accepted solution.  WINDIM runs evaluate the solver hundreds
of times, so these records are what turns "one point misbehaved somewhere"
into an actionable post-mortem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "AttemptOutcome",
    "DegradationEvent",
    "SolveAttempt",
    "SolveHealth",
    "PoolEvent",
    "PoolHealth",
]


class AttemptOutcome:
    """String constants classifying how one ladder rung ended."""

    OK = "ok"
    NON_CONVERGED = "non-converged"
    NAN_OUTPUT = "nan-output"
    ERROR = "error"
    SKIPPED = "skipped"


@dataclass(frozen=True)
class SolveAttempt:
    """One rung of the ladder, tried (or skipped) for one network.

    Attributes
    ----------
    solver:
        Backend name (``"mva-heuristic"``, ``"schweitzer"``, ...).
    damping:
        Damping factor the rung used (1.0 for undamped / non-iterative).
    outcome:
        One of the :class:`AttemptOutcome` constants.
    detail:
        Error message or skip reason; empty on success.
    iterations:
        Iteration count reported by the solver (0 when unavailable).
    duration:
        Wall-clock seconds spent in the rung.
    """

    solver: str
    damping: float
    outcome: str
    detail: str = ""
    iterations: int = 0
    duration: float = 0.0

    @property
    def succeeded(self) -> bool:
        """True when this rung produced the accepted solution."""
        return self.outcome == AttemptOutcome.OK

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "solver": self.solver,
            "damping": self.damping,
            "outcome": self.outcome,
            "detail": self.detail,
            "iterations": self.iterations,
            "duration": self.duration,
        }


@dataclass
class SolveHealth:
    """Everything that happened while resiliently solving one network.

    Attributes
    ----------
    windows:
        The chain populations (window vector) of the solved network.
    attempts:
        Every rung tried or skipped, in ladder order.
    """

    windows: Tuple[int, ...]
    attempts: List[SolveAttempt] = field(default_factory=list)

    def record(self, attempt: SolveAttempt) -> None:
        """Append one rung's outcome."""
        self.attempts.append(attempt)

    @property
    def succeeded(self) -> bool:
        """True when some rung produced an accepted solution."""
        return any(a.succeeded for a in self.attempts)

    @property
    def final_solver(self) -> Optional[str]:
        """Name of the rung that succeeded (None when all failed)."""
        for attempt in self.attempts:
            if attempt.succeeded:
                return attempt.solver
        return None

    @property
    def retries(self) -> int:
        """Rungs actually *tried* before the accepted one (skips excluded).

        Zero means the first attempt succeeded; for a fully failed solve
        this counts every tried rung.
        """
        tried = 0
        for attempt in self.attempts:
            if attempt.outcome == AttemptOutcome.SKIPPED:
                continue
            if attempt.succeeded:
                return tried
            tried += 1
        return tried

    @property
    def escalated(self) -> bool:
        """True when the accepted solution came from a non-primary backend.

        The primary backend is the solver of the first attempt; any success
        under a different name means the ladder had to switch algorithms
        (not merely re-damp the same one).
        """
        if not self.attempts:
            return False
        primary = self.attempts[0].solver
        final = self.final_solver
        return final is not None and final != primary

    @property
    def total_duration(self) -> float:
        """Wall-clock seconds across all rungs."""
        return math.fsum(a.duration for a in self.attempts)

    def summary(self) -> str:
        """One line per rung, post-mortem style."""
        lines = [f"solve health for windows {list(self.windows)}:"]
        for attempt in self.attempts:
            line = (
                f"  {attempt.solver} (damping {attempt.damping:g}): "
                f"{attempt.outcome}"
            )
            if attempt.detail:
                line += f" — {attempt.detail}"
            lines.append(line)
        if not self.succeeded:
            lines.append("  => every rung failed")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (used by reports and checkpoints)."""
        return {
            "windows": list(self.windows),
            "succeeded": self.succeeded,
            "final_solver": self.final_solver,
            "retries": self.retries,
            "escalated": self.escalated,
            "attempts": [a.to_dict() for a in self.attempts],
        }


@dataclass(frozen=True)
class PoolEvent:
    """One lifecycle event of the persistent evaluation pool.

    Attributes
    ----------
    kind:
        ``"spawn"``, ``"death"``, ``"respawn"``, ``"requeue"``,
        ``"drop"`` (a task requeued too many times, completed as failed)
        or ``"hung"`` (the watchdog killed a worker that exceeded its
        per-task deadline).
    worker:
        Index of the worker slot the event concerns.
    pid:
        Process id involved (the dead pid for ``"death"``, the new one
        for ``"respawn"``; 0 when not applicable).
    detail:
        Free-form context (exit code, task key, ...).
    """

    kind: str
    worker: int
    pid: int = 0
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "worker": self.worker,
            "pid": self.pid,
            "detail": self.detail,
        }


@dataclass
class PoolHealth:
    """Aggregate state of one persistent evaluation pool.

    The pool-side counterpart of :class:`SolveHealth`: where a ladder
    record tells the story of one evaluation, this tells the story of
    the worker fleet that evaluated everything — how many processes were
    spawned, which died and were replaced, how many in-flight tasks had
    to be requeued, and how small the per-task payloads stayed.
    """

    workers: int
    start_method: str
    worker_pids: List[int] = field(default_factory=list)
    events: List[PoolEvent] = field(default_factory=list)
    tasks_completed: int = 0
    tasks_skipped: int = 0
    tasks_requeued: int = 0
    tasks_dropped: int = 0
    respawns: int = 0
    hung: int = 0
    payload_bytes_total: int = 0

    def record(self, event: PoolEvent) -> None:
        """Append one lifecycle event (and bump its aggregate counter)."""
        self.events.append(event)
        if event.kind == "respawn":
            self.respawns += 1
        elif event.kind == "requeue":
            self.tasks_requeued += 1
        elif event.kind == "drop":
            self.tasks_dropped += 1
        elif event.kind == "hung":
            self.hung += 1

    @property
    def payload_bytes_per_task(self) -> float:
        """Mean pickled micro-task size shipped to workers (bytes)."""
        submitted = self.tasks_completed + self.tasks_skipped
        if submitted <= 0:
            return 0.0
        return self.payload_bytes_total / submitted

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (benchmarks, summaries)."""
        return {
            "workers": self.workers,
            "start_method": self.start_method,
            "worker_pids": list(self.worker_pids),
            "tasks_completed": self.tasks_completed,
            "tasks_skipped": self.tasks_skipped,
            "tasks_requeued": self.tasks_requeued,
            "tasks_dropped": self.tasks_dropped,
            "respawns": self.respawns,
            "hung": self.hung,
            "payload_bytes_total": self.payload_bytes_total,
            "payload_bytes_per_task": self.payload_bytes_per_task,
            "events": [e.to_dict() for e in self.events],
        }

    def summary(self) -> str:
        """One line for result summaries."""
        line = (
            f"{self.workers} workers ({self.start_method}), "
            f"{self.tasks_completed} tasks, {self.respawns} respawns, "
            f"{self.payload_bytes_per_task:.0f} B/task"
        )
        if self.hung:
            line += f", {self.hung} hung"
        return line


@dataclass(frozen=True)
class DegradationEvent:
    """One rung taken on the plane degradation ladder.

    Recorded when an evaluation plane abandons a broken execution mode
    mid-search (persistent pool → per-batch executor → serial) while
    preserving the bitwise search trajectory through the shared
    evaluation cache.

    Attributes
    ----------
    from_mode / to_mode:
        The execution modes before and after the rung
        (``"persistent"``, ``"batch"``, ``"serial"``).
    reason:
        Why the plane degraded (the pool failure message, the failure
        budget summary, ...).
    evaluations:
        Cache evaluation count at the moment of degradation, locating
        the rung on the search trajectory.
    """

    from_mode: str
    to_mode: str
    reason: str
    evaluations: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "from_mode": self.from_mode,
            "to_mode": self.to_mode,
            "reason": self.reason,
            "evaluations": self.evaluations,
        }
