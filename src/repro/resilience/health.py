"""Structured health records for resilient solves.

A :class:`SolveHealth` record tells the full story of one objective
evaluation under the escalation ladder: every solver/damping rung that was
tried, how it failed (or why it was skipped), and which rung finally
produced the accepted solution.  WINDIM runs evaluate the solver hundreds
of times, so these records are what turns "one point misbehaved somewhere"
into an actionable post-mortem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["AttemptOutcome", "SolveAttempt", "SolveHealth"]


class AttemptOutcome:
    """String constants classifying how one ladder rung ended."""

    OK = "ok"
    NON_CONVERGED = "non-converged"
    NAN_OUTPUT = "nan-output"
    ERROR = "error"
    SKIPPED = "skipped"


@dataclass(frozen=True)
class SolveAttempt:
    """One rung of the ladder, tried (or skipped) for one network.

    Attributes
    ----------
    solver:
        Backend name (``"mva-heuristic"``, ``"schweitzer"``, ...).
    damping:
        Damping factor the rung used (1.0 for undamped / non-iterative).
    outcome:
        One of the :class:`AttemptOutcome` constants.
    detail:
        Error message or skip reason; empty on success.
    iterations:
        Iteration count reported by the solver (0 when unavailable).
    duration:
        Wall-clock seconds spent in the rung.
    """

    solver: str
    damping: float
    outcome: str
    detail: str = ""
    iterations: int = 0
    duration: float = 0.0

    @property
    def succeeded(self) -> bool:
        """True when this rung produced the accepted solution."""
        return self.outcome == AttemptOutcome.OK

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "solver": self.solver,
            "damping": self.damping,
            "outcome": self.outcome,
            "detail": self.detail,
            "iterations": self.iterations,
            "duration": self.duration,
        }


@dataclass
class SolveHealth:
    """Everything that happened while resiliently solving one network.

    Attributes
    ----------
    windows:
        The chain populations (window vector) of the solved network.
    attempts:
        Every rung tried or skipped, in ladder order.
    """

    windows: Tuple[int, ...]
    attempts: List[SolveAttempt] = field(default_factory=list)

    def record(self, attempt: SolveAttempt) -> None:
        """Append one rung's outcome."""
        self.attempts.append(attempt)

    @property
    def succeeded(self) -> bool:
        """True when some rung produced an accepted solution."""
        return any(a.succeeded for a in self.attempts)

    @property
    def final_solver(self) -> Optional[str]:
        """Name of the rung that succeeded (None when all failed)."""
        for attempt in self.attempts:
            if attempt.succeeded:
                return attempt.solver
        return None

    @property
    def retries(self) -> int:
        """Rungs actually *tried* before the accepted one (skips excluded).

        Zero means the first attempt succeeded; for a fully failed solve
        this counts every tried rung.
        """
        tried = 0
        for attempt in self.attempts:
            if attempt.outcome == AttemptOutcome.SKIPPED:
                continue
            if attempt.succeeded:
                return tried
            tried += 1
        return tried

    @property
    def escalated(self) -> bool:
        """True when the accepted solution came from a non-primary backend.

        The primary backend is the solver of the first attempt; any success
        under a different name means the ladder had to switch algorithms
        (not merely re-damp the same one).
        """
        if not self.attempts:
            return False
        primary = self.attempts[0].solver
        final = self.final_solver
        return final is not None and final != primary

    @property
    def total_duration(self) -> float:
        """Wall-clock seconds across all rungs."""
        return math.fsum(a.duration for a in self.attempts)

    def summary(self) -> str:
        """One line per rung, post-mortem style."""
        lines = [f"solve health for windows {list(self.windows)}:"]
        for attempt in self.attempts:
            line = (
                f"  {attempt.solver} (damping {attempt.damping:g}): "
                f"{attempt.outcome}"
            )
            if attempt.detail:
                line += f" — {attempt.detail}"
            lines.append(line)
        if not self.succeeded:
            lines.append("  => every rung failed")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (used by reports and checkpoints)."""
        return {
            "windows": list(self.windows),
            "succeeded": self.succeeded,
            "final_solver": self.final_solver,
            "retries": self.retries,
            "escalated": self.escalated,
            "attempts": [a.to_dict() for a in self.attempts],
        }
