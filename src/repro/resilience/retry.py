"""Unified retry policy for every bounded-retry decision in the runtime.

Ladder rungs, pool respawns, store IO, and checkpoint writes all used to
carry their own ad-hoc retry counters.  :class:`RetryPolicy` centralises
the decision: bounded attempts, exponential backoff, and *deterministic*
jitter derived from a caller-supplied salt so two processes retrying the
same resource desynchronise without any randomness entering the search
trajectory.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type

__all__ = ["RetryPolicy"]


def _jitter_fraction(salt: str, attempt: int) -> float:
    """Deterministic pseudo-random fraction in [0, 1] for backoff jitter."""
    digest = hashlib.sha256(f"{salt}:{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") / 0xFFFFFFFF


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with exponential backoff and deterministic jitter.

    Attempts are 1-based: ``allows(1)`` is the first try, so a policy with
    ``max_attempts=3`` performs at most two retries.  ``delay(attempt)``
    returns the pause *before* the given attempt — zero for the first
    attempt and for zero-base-delay policies (pool respawns inject a small
    pause; in-process ladder rungs retry immediately).
    """

    max_attempts: int = 3
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def allows(self, attempt: int) -> bool:
        """True when the 1-based ``attempt`` is within budget."""
        return 1 <= attempt <= self.max_attempts

    def delay(self, attempt: int, salt: str = "") -> float:
        """Backoff before ``attempt`` (1-based); 0 for the first attempt."""
        if attempt <= 1 or self.base_delay <= 0:
            return 0.0
        raw = self.base_delay * self.multiplier ** (attempt - 2)
        capped = min(raw, self.max_delay)
        if self.jitter <= 0:
            return capped
        return capped * (1.0 + self.jitter * _jitter_fraction(salt, attempt))

    def call(
        self,
        fn: Callable[[], object],
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        salt: str = "",
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> object:
        """Run ``fn`` under this policy, re-raising once attempts run out.

        ``on_retry(attempt, error)`` fires before each retry sleep so the
        caller can record the failure (e.g. in a health log).
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except retry_on as error:
                if not self.allows(attempt + 1):
                    raise
                if on_retry is not None:
                    on_retry(attempt, error)
                pause = self.delay(attempt + 1, salt=salt)
                if pause > 0:
                    sleep(pause)
