"""Solver escalation ladder: retry with damping, then switch algorithms.

The thesis §4.2 heuristic is an undamped fixed-point iteration; on strongly
coupled chains it can cycle or diverge, and one bad window vector inside a
WINDIM pattern search then poisons the whole run.  :class:`ResilientSolver`
wraps any backend behind the standard ``ClosedNetwork -> NetworkSolution``
interface and contains such failures:

1. **Damping schedule** — the primary backend is retried with progressively
   heavier damping (default 1.0 -> 0.5 -> 0.25 via
   :class:`~repro.mva.convergence.IterationControl`), which restores
   convergence for most oscillating fixed points.
2. **Algorithm escalation** — if every damped retry fails, the ladder
   switches backend: heuristic -> Schweitzer-Bard -> Linearizer -> exact
   MVA (the last only when the population lattice is small enough to be
   tractable, mirroring the oracle's applicability gate).
3. **Structured health records** — every attempt (tried or skipped) is
   logged in a :class:`~repro.resilience.health.SolveHealth`, retrievable
   via :attr:`ResilientSolver.last_health` / :attr:`health_log`.

A rung *fails* when it raises ``SolverError`` (including convergence and
stability errors), returns ``converged=False``, or returns non-finite
throughputs/queue lengths.  ``ModelError`` — a broken model, not a broken
solve — propagates immediately: no amount of retrying fixes a bad input.
"""

from __future__ import annotations

import time
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend import resolve_backend
from repro.errors import (
    ConvergenceWarning,
    LadderExhaustedError,
    ModelError,
    SolverError,
)
from repro.mva.convergence import IterationControl
from repro.queueing.network import ClosedNetwork
from repro.solution import NetworkSolution

from repro.resilience.health import AttemptOutcome, SolveAttempt, SolveHealth

__all__ = [
    "DEFAULT_DAMPING_SCHEDULE",
    "DEFAULT_ESCALATION",
    "ResilientSolver",
    "solve_resilient",
]

#: Damping factors tried on the primary backend, in order.
DEFAULT_DAMPING_SCHEDULE: Tuple[float, ...] = (1.0, 0.5, 0.25)

#: Backend escalation order after the damping schedule is exhausted.
DEFAULT_ESCALATION: Tuple[str, ...] = (
    "mva-heuristic",
    "schweitzer",
    "linearizer",
    "mva-exact",
)

#: Largest population lattice the ladder will hand to exact MVA (same
#: spirit as the oracle's ``LATTICE_LIMIT``: a last resort must not hang).
EXACT_LATTICE_LIMIT = 250_000

Solver = Callable[..., NetworkSolution]


def _backend(name: str) -> Solver:
    """Resolve a ladder backend name to its solver function (lazily)."""
    if name == "mva-heuristic":
        from repro.mva.heuristic import solve_mva_heuristic

        return solve_mva_heuristic
    if name == "schweitzer":
        from repro.mva.schweitzer import solve_schweitzer

        return solve_schweitzer
    if name == "linearizer":
        from repro.mva.linearizer import solve_linearizer

        return solve_linearizer
    if name == "mva-exact":
        from repro.exact.mva_exact import solve_mva_exact

        return solve_mva_exact
    if name == "convolution":
        from repro.exact.convolution import solve_convolution

        return solve_convolution
    if name == "asymptotic":
        from repro.mva.asymptotic import solve_asymptotic

        return solve_asymptotic
    raise ModelError(
        f"unknown ladder backend {name!r}; expected one of "
        f"{sorted(('mva-heuristic', 'schweitzer', 'linearizer', 'mva-exact', 'convolution', 'asymptotic'))}"
    )


#: Backends whose solve function accepts an ``IterationControl`` (and can
#: therefore be re-tried under the damping schedule).
_ITERATIVE_BACKENDS = frozenset(
    {"mva-heuristic", "schweitzer", "linearizer", "asymptotic"}
)

#: Backends whose solve function accepts a kernel ``backend=`` keyword
#: (see :mod:`repro.backend`); the others own a single kernel.
_KERNEL_AWARE_BACKENDS = frozenset(
    {"mva-heuristic", "schweitzer", "linearizer", "mva-exact", "asymptotic"}
)

#: Backends accepting a ``warm_start=`` queue-length seed
#: (see :mod:`repro.mva.warmstart`).
_WARMSTART_BACKENDS = frozenset(
    {"mva-heuristic", "schweitzer", "linearizer", "asymptotic"}
)

#: Backends accepting a ``lattice_cache=``
#: (see :mod:`repro.exact.lattice_cache`).
_LATTICE_BACKENDS = frozenset({"mva-exact"})


def _accepts_keyword(solver: Solver, keyword: str) -> bool:
    """True when a custom callable takes the given keyword argument."""
    import inspect

    try:
        return keyword in inspect.signature(solver).parameters
    except (TypeError, ValueError):
        return False


def _accepts_control(solver: Solver) -> bool:
    """True when a custom callable takes a ``control`` keyword."""
    return _accepts_keyword(solver, "control")


def _exact_applicability(network: ClosedNetwork, limit: int) -> Optional[str]:
    """Why exact MVA cannot be used as the last rung (None = it can)."""
    if not network.is_fixed_rate():
        return "needs fixed-rate single-server / IS stations"
    from repro.exact.states import lattice_size

    size = lattice_size([int(p) for p in network.populations])
    if size > limit:
        return f"population lattice too large ({size} > {limit})"
    return None


def _judge(solution: NetworkSolution) -> Optional[Tuple[str, str]]:
    """Inspect a returned solution; None when healthy, else (outcome, detail)."""
    if not (
        np.all(np.isfinite(solution.throughputs))
        and np.all(np.isfinite(solution.queue_lengths))
    ):
        return (
            AttemptOutcome.NAN_OUTPUT,
            "solver returned non-finite throughputs or queue lengths",
        )
    if not solution.converged:
        return (
            AttemptOutcome.NON_CONVERGED,
            f"stopped at iteration budget (iterations={solution.iterations})",
        )
    return None


class ResilientSolver:
    """A ``ClosedNetwork -> NetworkSolution`` backend that refuses to die.

    Parameters
    ----------
    solver:
        Primary backend: a ladder backend name (``"mva-heuristic"``,
        ``"schweitzer"``, ``"linearizer"``, ``"mva-exact"``,
        ``"convolution"``) or any solver callable.  Callables accepting a
        ``control`` keyword get the damping schedule; others are simply
        retried once per rung (useful for transiently flaky backends).
    damping_schedule:
        Damping factors tried on the primary backend, in order.
    escalation:
        Backend names tried after the primary is exhausted (the primary is
        skipped if it reappears here).  ``"mva-exact"`` is attempted only
        when the population lattice is below ``exact_lattice_limit``.
    control:
        Base iteration policy; tolerance/max_iterations are kept, damping
        is overridden per rung, and failures always raise internally so
        the ladder sees them (``raise_on_failure`` is forced True).
    exact_lattice_limit:
        State-space gate for the exact-MVA rung.
    backend:
        Kernel backend (``"scalar"``/``"vectorized"``; ``None`` = process
        default) forwarded to every rung whose solver has dual kernels —
        the ladder escalates *algorithms*, never silently switches kernel.
    max_health_records:
        Cap on :attr:`health_log` (oldest dropped first) so a very long
        pattern search cannot grow memory without bound.
    asymptotic_chain_threshold:
        Chain-count floor for the scale rung: networks with at least this
        many chains are first handed to the CLT/asymptotic solver
        (:mod:`repro.mva.asymptotic`), whose cost has no per-population
        recursion.  Defaults to
        :data:`repro.mva.asymptotic.ASYMPTOTIC_AUTO_CHAINS` — far inside
        the solver's validity regime, so the substitution is never made
        where its calibrated bands do not hold, and every substitution is
        recorded in the health log (never silent).  Pass a smaller value
        to pull the rung in, or ``0``/``False`` to disable it entirely.

    Notes
    -----
    The wrapper is itself registry-compatible: pass an instance anywhere a
    solver callable is accepted (``WindowObjective``, ``windim``, the
    verification oracle).
    """

    def __init__(
        self,
        solver: Union[str, Solver] = "mva-heuristic",
        damping_schedule: Sequence[float] = DEFAULT_DAMPING_SCHEDULE,
        escalation: Optional[Sequence[str]] = None,
        control: Optional[IterationControl] = None,
        exact_lattice_limit: int = EXACT_LATTICE_LIMIT,
        backend: Optional[str] = None,
        max_health_records: int = 10_000,
        asymptotic_chain_threshold: Optional[int] = None,
    ):
        if not damping_schedule:
            raise ModelError("damping_schedule must not be empty")
        if backend is not None:
            resolve_backend(backend)  # validate eagerly
        self.backend = backend
        if isinstance(solver, str):
            self.primary_name = solver
            self._primary = _backend(solver)
            self._primary_iterative = solver in _ITERATIVE_BACKENDS
            self._primary_kernel_aware = solver in _KERNEL_AWARE_BACKENDS
            self._primary_warm = solver in _WARMSTART_BACKENDS
            self._primary_lattice = solver in _LATTICE_BACKENDS
        else:
            self.primary_name = getattr(solver, "__name__", "custom")
            self._primary = solver
            self._primary_iterative = _accepts_control(solver)
            self._primary_kernel_aware = _accepts_keyword(solver, "backend")
            self._primary_warm = _accepts_keyword(solver, "warm_start")
            self._primary_lattice = _accepts_keyword(solver, "lattice_cache")
        self.damping_schedule = tuple(float(d) for d in damping_schedule)
        self.escalation = tuple(
            DEFAULT_ESCALATION if escalation is None else escalation
        )
        base = control if control is not None else IterationControl()
        if not base.raise_on_failure:
            # The ladder must *see* convergence failures to act on them.
            from dataclasses import replace

            base = replace(base, raise_on_failure=True)
        self._control = base
        self.exact_lattice_limit = exact_lattice_limit
        self.max_health_records = max_health_records
        if asymptotic_chain_threshold is None:
            from repro.mva.asymptotic import ASYMPTOTIC_AUTO_CHAINS

            asymptotic_chain_threshold = ASYMPTOTIC_AUTO_CHAINS
        self.asymptotic_chain_threshold = int(asymptotic_chain_threshold or 0)
        self.health_log: List[SolveHealth] = []

    # ------------------------------------------------------------------
    @property
    def last_health(self) -> Optional[SolveHealth]:
        """Health record of the most recent solve (None before any)."""
        return self.health_log[-1] if self.health_log else None

    def health_statistics(self) -> Dict[str, float]:
        """Aggregate retry/escalation statistics over :attr:`health_log`."""
        total = len(self.health_log)
        if total == 0:
            return {
                "solves": 0,
                "retried": 0,
                "escalated": 0,
                "failed": 0,
                "retry_rate": 0.0,
                "escalation_rate": 0.0,
            }
        retried = sum(1 for h in self.health_log if h.retries > 0)
        escalated = sum(1 for h in self.health_log if h.escalated)
        failed = sum(1 for h in self.health_log if not h.succeeded)
        return {
            "solves": total,
            "retried": retried,
            "escalated": escalated,
            "failed": failed,
            "retry_rate": retried / total,
            "escalation_rate": escalated / total,
        }

    # ------------------------------------------------------------------
    def _record(self, health: SolveHealth) -> None:
        self.health_log.append(health)
        if len(self.health_log) > self.max_health_records:
            del self.health_log[: -self.max_health_records]

    def _attempt(
        self,
        health: SolveHealth,
        name: str,
        solver: Solver,
        network: ClosedNetwork,
        damping: float,
        iterative: bool,
        kernel_aware: bool = False,
        extra: Optional[Dict[str, object]] = None,
    ) -> Optional[NetworkSolution]:
        """Run one rung; record the outcome; return the solution if healthy."""
        started = time.perf_counter()
        iterations = 0
        kwargs: Dict[str, object] = {}
        if iterative:
            kwargs["control"] = self._control.damped(damping)
        if kernel_aware:
            kwargs["backend"] = self.backend
        if extra:
            kwargs.update(extra)
        try:
            # Non-converged iterates must surface as ConvergenceError here,
            # not as a ConvergenceWarning the ladder cannot catch.
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ConvergenceWarning)
                solution = solver(network, **kwargs)
            iterations = solution.iterations
        except SolverError as exc:
            health.record(
                SolveAttempt(
                    solver=name,
                    damping=damping,
                    outcome=AttemptOutcome.ERROR,
                    detail=f"{type(exc).__name__}: {exc}",
                    iterations=getattr(exc, "iterations", 0),
                    duration=time.perf_counter() - started,
                )
            )
            return None
        verdict = _judge(solution)
        if verdict is not None:
            outcome, detail = verdict
            health.record(
                SolveAttempt(
                    solver=name,
                    damping=damping,
                    outcome=outcome,
                    detail=detail,
                    iterations=iterations,
                    duration=time.perf_counter() - started,
                )
            )
            return None
        health.record(
            SolveAttempt(
                solver=name,
                damping=damping,
                outcome=AttemptOutcome.OK,
                iterations=iterations,
                duration=time.perf_counter() - started,
            )
        )
        return solution

    def __call__(
        self,
        network: ClosedNetwork,
        warm_start: Optional[np.ndarray] = None,
        lattice_cache=None,
    ) -> NetworkSolution:
        """Solve ``network``, climbing the ladder until a rung holds.

        ``warm_start`` (a queue-length seed, see
        :mod:`repro.mva.warmstart`) is forwarded to every rung whose
        solver iterates from a seed; ``lattice_cache`` to the exact-MVA
        rung.  Both are pure accelerators — rung outcomes and the ladder's
        escalation decisions are judged on the same convergence criteria
        either way.

        Raises
        ------
        LadderExhaustedError
            When every rung failed; ``.health`` carries the full record.
        """

        def reuse_kwargs(warm: bool, lattice: bool) -> Dict[str, object]:
            extra: Dict[str, object] = {}
            if warm and warm_start is not None:
                extra["warm_start"] = warm_start
            if lattice and lattice_cache is not None:
                extra["lattice_cache"] = lattice_cache
            return extra

        health = SolveHealth(
            windows=tuple(int(p) for p in network.populations)
        )
        self._record(health)

        # Rung 0 — scale auto-selection.  Far inside the CLT regime
        # (chains >= threshold >> the validity floor) the mean-field
        # solver is both covered by its calibrated bands and free of the
        # per-population recursion, so internet-scale networks go to it
        # first.  The substitution is recorded as an explicit
        # "asymptotic" attempt in the health log — it is never silent —
        # and a failure simply falls through to the normal ladder.
        if (
            self.asymptotic_chain_threshold > 0
            and network.num_chains >= self.asymptotic_chain_threshold
            and self.primary_name != "asymptotic"
        ):
            from repro.mva.asymptotic import solve_asymptotic

            solution = self._attempt(
                health,
                "asymptotic",
                solve_asymptotic,
                network,
                self.damping_schedule[0],
                True,
                True,
                reuse_kwargs(True, False),
            )
            if solution is not None:
                return solution

        # Rungs 1..k — the primary backend under the damping schedule.  A
        # backend that cannot be damped gets exactly one retry (transient
        # faults), not the whole schedule.
        if self._primary_iterative:
            primary_dampings: Tuple[float, ...] = self.damping_schedule
        else:
            primary_dampings = (1.0,) * min(2, len(self.damping_schedule))
        for damping in primary_dampings:
            solution = self._attempt(
                health,
                self.primary_name,
                self._primary,
                network,
                damping,
                self._primary_iterative,
                self._primary_kernel_aware,
                reuse_kwargs(self._primary_warm, self._primary_lattice),
            )
            if solution is not None:
                return solution

        # Escalation rungs — switch algorithms.
        for name in self.escalation:
            if name == self.primary_name:
                continue
            if name == "mva-exact":
                reason = _exact_applicability(network, self.exact_lattice_limit)
                if reason is not None:
                    health.record(
                        SolveAttempt(
                            solver=name,
                            damping=1.0,
                            outcome=AttemptOutcome.SKIPPED,
                            detail=reason,
                        )
                    )
                    continue
            solver = _backend(name)
            iterative = name in _ITERATIVE_BACKENDS
            # Escalation backends start damped: an undamped retry of a
            # *different* AMVA on a network that already defeated one
            # undamped iteration is the least promising rung to spend on.
            damping = self.damping_schedule[-1] if iterative else 1.0
            solution = self._attempt(
                health,
                name,
                solver,
                network,
                damping,
                iterative,
                name in _KERNEL_AWARE_BACKENDS,
                reuse_kwargs(
                    name in _WARMSTART_BACKENDS, name in _LATTICE_BACKENDS
                ),
            )
            if solution is not None:
                return solution

        raise LadderExhaustedError(
            "resilient solve failed on every rung:\n" + health.summary(),
            health=health,
        )


def solve_resilient(
    network: ClosedNetwork,
    solver: Union[str, Solver] = "mva-heuristic",
    warm_start: Optional[np.ndarray] = None,
    lattice_cache=None,
    **kwargs: object,
) -> NetworkSolution:
    """One-shot functional form of :class:`ResilientSolver`.

    ``warm_start`` / ``lattice_cache`` are call-time reuse accelerators
    (forwarded to the solve); everything else configures the ladder.
    """
    return ResilientSolver(solver, **kwargs)(
        network, warm_start=warm_start, lattice_cache=lattice_cache
    )
