"""Wall-clock and evaluation budgets for long-running searches.

A WINDIM pattern search evaluates the MVA solver hundreds of times; on a
pathological network one evaluation can take arbitrarily long, and without
a deadline the whole dimensioning job hangs.  :class:`SearchBudget` is a
small policy object threaded through :func:`repro.search.pattern.
pattern_search` (and :func:`repro.core.windim.windim`): the search checks
it before every fresh objective evaluation and, when exhausted, returns
its best-so-far result flagged ``status="budget_exhausted"`` instead of
continuing.

The check is cooperative — an evaluation already in flight is never
interrupted (analytic solves cannot be safely preempted), so the real
stopping time overshoots the deadline by at most one evaluation.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SearchError

__all__ = ["SearchBudget", "BudgetExhausted"]


class BudgetExhausted(Exception):
    """Internal control-flow signal: the budget ran out mid-search.

    Deliberately *not* a :class:`~repro.errors.ReproError`: it must never
    escape the search loop that installed the budget (the loop converts it
    into a graceful best-so-far result).
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class SearchBudget:
    """Deadline + evaluation-count budget for one search run.

    Parameters
    ----------
    max_seconds:
        Wall-clock allowance measured from construction (or the last
        :meth:`restart`); None = unlimited.
    max_evaluations:
        Allowance of *fresh* objective evaluations (cache hits are free);
        None = unlimited.
    clock:
        Injectable time source (monotonic seconds) for deterministic
        tests.  Defaults to :func:`repro.chaos.clock.monotonic`, which is
        ``time.monotonic`` plus any fault-plan-injected skew.
    """

    def __init__(
        self,
        max_seconds: Optional[float] = None,
        max_evaluations: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if clock is None:
            from repro.chaos.clock import monotonic as clock
        if max_seconds is not None and max_seconds <= 0:
            raise SearchError(f"max_seconds must be positive, got {max_seconds}")
        if max_evaluations is not None and max_evaluations < 1:
            raise SearchError(
                f"max_evaluations must be >= 1, got {max_evaluations}"
            )
        self.max_seconds = max_seconds
        self.max_evaluations = max_evaluations
        self._clock = clock
        self._started = clock()

    def restart(self) -> None:
        """Restart the wall clock (evaluation allowance is unaffected)."""
        self._started = self._clock()

    @property
    def elapsed(self) -> float:
        """Seconds since construction / the last :meth:`restart`."""
        return self._clock() - self._started

    def exhausted_reason(self, evaluations: int) -> Optional[str]:
        """Why the budget is spent, or None while allowance remains.

        Parameters
        ----------
        evaluations:
            Fresh objective evaluations performed so far (cache misses).
        """
        if self.max_evaluations is not None and evaluations >= self.max_evaluations:
            return (
                f"evaluation budget spent ({evaluations} >= "
                f"{self.max_evaluations})"
            )
        if self.max_seconds is not None:
            elapsed = self.elapsed
            if elapsed >= self.max_seconds:
                return (
                    f"deadline passed ({elapsed:.2f}s >= {self.max_seconds:g}s)"
                )
        return None

    def check(self, evaluations: int) -> None:
        """Raise :class:`BudgetExhausted` when the budget is spent."""
        reason = self.exhausted_reason(evaluations)
        if reason is not None:
            raise BudgetExhausted(reason)
