"""Solver kernel backend selection.

Every MVA-family solver in :mod:`repro.mva` and :mod:`repro.exact` ships
two interchangeable kernel implementations:

``"scalar"``
    The reference implementation: per-chain Python loops mirroring the
    thesis recurrences line by line.  Kept verbatim so the vectorized
    path always has an executable specification to be diffed against
    (the parity test wall pins agreement to ≤ 1e-8 relative error).
``"vectorized"``
    Dense-array kernels that carry the whole per-(station, chain) state
    as NumPy arrays and replace the per-chain loops with batched
    elementwise operations.  Numerically it performs the same floating-
    point operations in the same order, so results agree with the scalar
    path to machine precision; it is simply much faster when the number
    of chains or the window sizes grow.

The process-wide default is ``"vectorized"``; it can be overridden per
call (every solver takes a ``backend=`` keyword), per process via the
``REPRO_SOLVER_BACKEND`` environment variable, or from the CLI via
``--solver-backend``.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ModelError

__all__ = ["BACKENDS", "DEFAULT_BACKEND", "default_backend", "resolve_backend"]

#: The recognised kernel backends.
BACKENDS = ("scalar", "vectorized")

#: Library-wide default when neither the call site nor the environment
#: chooses one.
DEFAULT_BACKEND = "vectorized"

#: Environment variable consulted by :func:`default_backend`.
BACKEND_ENV_VAR = "REPRO_SOLVER_BACKEND"


def default_backend() -> str:
    """The backend used when a solver is called with ``backend=None``.

    ``REPRO_SOLVER_BACKEND`` overrides the library default (useful for
    running an entire test suite or CI job against one kernel family
    without touching call sites).
    """
    chosen = os.environ.get(BACKEND_ENV_VAR, "").strip()
    if not chosen:
        return DEFAULT_BACKEND
    if chosen not in BACKENDS:
        raise ModelError(
            f"{BACKEND_ENV_VAR}={chosen!r} is not a valid backend; "
            f"expected one of {BACKENDS}"
        )
    return chosen


def resolve_backend(backend: Optional[str]) -> str:
    """Validate an explicit backend choice (None = process default)."""
    if backend is None:
        return default_backend()
    if backend not in BACKENDS:
        raise ModelError(
            f"unknown solver backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend
