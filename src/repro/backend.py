"""Solver kernel backend selection.

Every MVA-family solver in :mod:`repro.mva` and :mod:`repro.exact` ships
interchangeable kernel implementations:

``"scalar"``
    The reference implementation: per-chain Python loops mirroring the
    thesis recurrences line by line.  Kept verbatim so the dense paths
    always have an executable specification to be diffed against
    (the parity test wall pins agreement to ≤ 1e-8 relative error).
``"vectorized"``
    Dense-array kernels that carry the whole per-(station, chain) state
    as NumPy arrays and replace the per-chain loops with batched
    elementwise operations.  Numerically it performs the same floating-
    point operations in the same order, so results agree with the scalar
    path to machine precision; it is simply much faster when the number
    of chains or the window sizes grow.
``"compiled"``
    The vectorized dense path with its hottest inner recursion (the
    per-population single-chain step of
    :func:`repro.mva.heuristic.batched_increments`) JIT-compiled via
    numba when that package is importable.  Without numba the tier falls
    back to the *same* NumPy operations as ``"vectorized"`` and is
    therefore bit-identical to it; with numba the fused loops reorder
    floating-point reductions, so agreement is pinned to the parity
    wall's 1e-8 band instead (see :mod:`repro.mva.compiled` and
    :func:`parity_tier`).

The process-wide default is ``"vectorized"``; it can be overridden per
call (every solver takes a ``backend=`` keyword), per process via the
``REPRO_SOLVER_BACKEND`` environment variable, or from the CLI via
``--solver-backend``.
"""

from __future__ import annotations

import importlib.util
import os
from typing import Optional

from repro.errors import ModelError

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "default_backend",
    "resolve_backend",
    "is_dense",
    "numba_available",
    "parity_tier",
]

#: The recognised kernel backends.
BACKENDS = ("scalar", "vectorized", "compiled")

#: Backends that run the dense NumPy array kernels (everything except the
#: per-chain scalar reference loops).
DENSE_BACKENDS = frozenset({"vectorized", "compiled"})

#: Library-wide default when neither the call site nor the environment
#: chooses one.
DEFAULT_BACKEND = "vectorized"

#: Environment variable consulted by :func:`default_backend`.
BACKEND_ENV_VAR = "REPRO_SOLVER_BACKEND"


def default_backend() -> str:
    """The backend used when a solver is called with ``backend=None``.

    ``REPRO_SOLVER_BACKEND`` overrides the library default (useful for
    running an entire test suite or CI job against one kernel family
    without touching call sites).
    """
    chosen = os.environ.get(BACKEND_ENV_VAR, "").strip()
    if not chosen:
        return DEFAULT_BACKEND
    if chosen not in BACKENDS:
        raise ModelError(
            f"{BACKEND_ENV_VAR}={chosen!r} is not a valid backend; "
            f"expected one of {BACKENDS}"
        )
    return chosen


def resolve_backend(backend: Optional[str]) -> str:
    """Validate an explicit backend choice (None = process default)."""
    if backend is None:
        return default_backend()
    if backend not in BACKENDS:
        raise ModelError(
            f"unknown solver backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def is_dense(backend: str) -> bool:
    """True when a *resolved* backend runs the dense array kernels.

    The ``"compiled"`` tier is the vectorized dense path with a JIT inner
    kernel swapped in where one exists, so every ``backend ==
    "vectorized"`` branch in the solvers is really a dense-vs-scalar
    branch; this predicate is that branch's single source of truth.
    """
    return backend in DENSE_BACKENDS


def numba_available() -> bool:
    """True when the optional numba JIT dependency is importable.

    Checked via ``find_spec`` so merely *asking* never pays numba's
    import cost (or fails in environments without it — the compiled
    tier is designed to degrade to pure NumPy there).
    """
    return importlib.util.find_spec("numba") is not None


def parity_tier(backend: Optional[str]) -> str:
    """The bitwise-equivalence class of a backend choice.

    ``"reference"``
        scalar, vectorized, and compiled-without-numba: all perform the
        same floating-point operations in the same order, so cached or
        persisted values computed under any of them are interchangeable
        to the last bit.
    ``"jit-v<N>"``
        compiled *with* numba importable: the fused JIT loops reorder
        reductions, so values agree with the reference tier only to the
        parity wall's 1e-8 band — close enough for any search decision,
        but not bit-identical, so persistent stores keep the tiers apart
        (see :func:`repro.search.store.model_fingerprint`).  ``<N>`` is
        :data:`repro.mva.compiled.JIT_KERNEL_VERSION`: whenever the
        kernel set changes in a way that can move results within the
        band (v1 = JIT inner increments only, v2 = full-sweep kernels),
        the tier label changes with it, so a store written under one
        kernel era is never silently served to another.
    """
    resolved = resolve_backend(backend)
    if resolved == "compiled" and numba_available():
        from repro.mva.compiled import JIT_KERNEL_VERSION

        return f"jit-v{JIT_KERNEL_VERSION}"
    return "reference"
