"""The unified evaluation plane interface.

Before this module, every execution path — the serial objective, the
per-batch ``ProcessPoolExecutor`` fan-out, the persistent shared-memory
pool with its speculative scheduler, the resilient ladder — was wired
into :func:`~repro.search.pattern.pattern_search`, ``windim`` and
``windim_multistart`` with bespoke glue (``prefetch=`` callables,
``scheduler=`` objects, per-caller cache/store/checkpoint merging).
:class:`EvaluationPlane` is the single interface all of them now sit
behind:

* :meth:`~EvaluationPlane.submit` — blocking ``windows -> EvalResult``
  through the shared evaluation cache, with budget/cap enforcement and
  the checkpoint hook fired exactly once per fresh evaluation;
* :meth:`~EvaluationPlane.submit_many` — best-effort batch evaluation
  (multistart seed lists), trimmed to the remaining budget room;
* speculation *hints* (:meth:`hint_sweep` / :meth:`hint_accept` /
  :meth:`hint_step`) — never change what a search observes, only let a
  parallel plane warm the cache ahead of demand;
* :meth:`prune` — certified-bound candidate rejection, counted centrally;
* :meth:`drain` / :meth:`close` lifecycle — every in-flight result is
  banked into the cache before resources are released, on **all** exit
  paths (the planes are context managers; an exceptional exit skips the
  drain so a hung worker cannot block shutdown).

The contract certified by the conformance suite (``tests/evalplane/``):
a pattern search driven through any plane walks the bitwise-identical
accepted-move trajectory and returns the identical optimum as the serial
plane, budgets and checkpoints count the same fresh evaluations, and
warm seeds / bound certificates propagate equivalently.  A new backend
is added by subclassing this class and registering a factory in
:mod:`repro.evalplane.registry` — the battery then certifies it with no
new glue tests.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ModelError, SearchError
from repro.evalplane.result import EvalResult
from repro.resilience.budget import BudgetExhausted, SearchBudget
from repro.resilience.health import DegradationEvent
from repro.search.cache import EvaluationCache
from repro.search.space import IntegerBox

__all__ = ["EvaluationPlane", "build_plane"]

Point = Tuple[int, ...]


class EvaluationPlane:
    """Base class: serial-semantics evaluation through a shared cache.

    Parameters
    ----------
    objective:
        The function being minimised — any ``point -> float`` callable;
        a :class:`~repro.core.objective.WindowObjective` additionally
        supplies retained solutions, warm seeds, and pool plumbing.
    cache:
        Shared :class:`~repro.search.cache.EvaluationCache`; created
        fresh when omitted.  Must wrap the same ``objective``.
    space:
        Feasible :class:`~repro.search.space.IntegerBox` (required by
        planes that speculate; optional for purely serial ones).
    budget:
        Optional :class:`~repro.resilience.budget.SearchBudget`; checked
        before every *fresh* evaluation (:class:`BudgetExhausted`
        propagates to the search, which converts it to best-so-far).
    max_evaluations:
        Hard cap on fresh evaluations through this plane.
    on_evaluation:
        Fired with the cache after every fresh evaluation — exactly once
        each, whether the value was computed in-process, prefetched in a
        batch, or merged from a speculative pool completion.  This is
        where checkpointing and the persistent store plug in; callers no
        longer wire them per execution path.
    bound:
        Optional certified lower bound ``point -> float`` (see
        :meth:`~repro.core.objective.WindowObjective.lower_bound`);
        enables :meth:`prune` and, in pooled planes, worker-side
        speculation skips.
    seed_for:
        Optional ``point -> queue-length matrix or None`` warm-start
        oracle, shipped to pool workers by the persistent plane.
    """

    #: Registry name of this execution path; subclasses override.
    name = "abstract"

    def __init__(
        self,
        objective: Callable[[Point], float],
        cache: Optional[EvaluationCache] = None,
        space: Optional[IntegerBox] = None,
        budget: Optional[SearchBudget] = None,
        max_evaluations: int = 10**9,
        on_evaluation: Optional[Callable[[EvaluationCache], None]] = None,
        bound: Optional[Callable[[Point], float]] = None,
        seed_for: Optional[Callable[[Point], object]] = None,
    ):
        self._objective = objective
        self.cache = cache if cache is not None else EvaluationCache(objective)
        if self.cache.objective is not objective:
            raise SearchError("plane cache wraps a different objective")
        self.space = space
        self.budget = budget
        self.max_evaluations = max_evaluations
        self.on_evaluation = on_evaluation
        self.bound = bound
        self.seed_for = seed_for
        self._closed = False
        self._pool_health = None
        #: Degradation-ladder rungs taken so far (empty in healthy runs).
        self.degradations: Tuple[DegradationEvent, ...] = ()

    # ------------------------------------------------------------------
    # core evaluation
    # ------------------------------------------------------------------
    @property
    def objective(self) -> Callable[[Point], float]:
        """The wrapped objective (shared by every plane over one run)."""
        return self._objective

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def evaluations(self) -> int:
        """Fresh evaluations performed through this plane's cache."""
        return self.cache.evaluations

    def _key(self, windows: Sequence[int]) -> Point:
        # Same strictness as EvaluationCache: a fractional coordinate is
        # rejected rather than silently truncated onto a different key.
        key = []
        for x in windows:
            i = int(x)
            if i != x:
                raise ValueError(
                    f"non-integral coordinate {x!r} in windows "
                    f"{tuple(windows)!r}; window vectors must be "
                    "integer-valued"
                )
            key.append(i)
        return tuple(key)

    def _check_caps(self) -> None:
        """Budget/cap gate before a fresh evaluation (raises when spent)."""
        if self.budget is not None:
            self.budget.check(self.cache.evaluations)
        if self.cache.evaluations >= self.max_evaluations:
            raise BudgetExhausted(
                f"evaluation cap reached ({self.cache.evaluations} >= "
                f"{self.max_evaluations})"
            )

    def _caps_spent(self) -> bool:
        """Quiet variant of :meth:`_check_caps` for speculation paths."""
        if self.cache.evaluations >= self.max_evaluations:
            return True
        if self.budget is not None:
            return self.budget.exhausted_reason(self.cache.evaluations) is not None
        return False

    def _fulfil(self, key: Point) -> Tuple[float, bool]:
        """Produce the value of an uncached ``key``.

        Returns ``(value, hook_fired)``: subclasses that merge through
        ``cache.prime`` with their own ``on_evaluation`` firing (the
        speculative scheduler) return ``hook_fired=True`` so the base
        class does not fire it twice.  The base implementation solves
        in-process through the cache.
        """
        return self.cache(key), False

    def submit(
        self,
        windows: Sequence[int],
        context: Optional[Mapping[str, object]] = None,
    ) -> EvalResult:
        """Evaluate one window vector, blocking until its value is known.

        The single choke point every search flows through: cache hits are
        free (no hooks, no budget), fresh evaluations are gated by the
        budget and the evaluation cap (raising
        :class:`~repro.resilience.budget.BudgetExhausted` *before* any
        work is started) and fire ``on_evaluation`` exactly once.

        ``context`` is optional caller metadata (e.g. ``{"phase":
        "sweep"}``); the built-in planes ignore it, custom backends may
        route on it.
        """
        if self._closed:
            raise SearchError(f"evaluation plane {self.name!r} is closed")
        key = self._key(windows)
        fresh = key not in self.cache
        if fresh:
            self._check_caps()
            value, hook_fired = self._fulfil(key)
            if not hook_fired and self.on_evaluation is not None:
                self.on_evaluation(self.cache)
        else:
            value = self.cache(key)
        return self._result(key, value, fresh)

    def submit_many(
        self, batch: Sequence[Sequence[int]]
    ) -> List[EvalResult]:
        """Best-effort batch evaluation (e.g. a multistart seed list).

        Unlike :meth:`submit`, caps are honoured *quietly*: the batch is
        trimmed to the remaining evaluation room and the call never
        raises ``BudgetExhausted`` — results are returned for whatever
        was evaluated (plus cache hits, which are always free).  Pooled
        planes override the fulfilment to fan the fresh slice out over
        their workers in one round trip.
        """
        results: List[EvalResult] = []
        for windows in batch:
            key = self._key(windows)
            if key not in self.cache and self._caps_spent():
                continue
            try:
                results.append(self.submit(key))
            except BudgetExhausted:  # deadline crossed mid-batch
                break
        return results

    def submit_networks(self, networks: Sequence[object]) -> List[EvalResult]:
        """Evaluate a mixed-topology batch of networks (best-effort).

        The heterogeneous counterpart of :meth:`submit_many`: the
        networks need not share the plane objective's topology, so the
        values bypass the window-keyed evaluation cache entirely — each
        result is always ``fresh`` and carries its solution directly.
        The engagement decision (padded SoA packs vs a serial loop, with
        every declined batch logged) lives in
        :meth:`~repro.core.objective.WindowObjective.
        batch_solve_networks`; plain callables without that method are
        rejected.  Caps are honoured quietly: a spent budget declines
        the whole batch (empty list) rather than raising.
        """
        if self._closed:
            raise SearchError(f"evaluation plane {self.name!r} is closed")
        networks = list(networks)
        if not networks or self._caps_spent():
            return []
        solve = getattr(self._objective, "batch_solve_networks", None)
        if solve is None:
            raise SearchError(
                "submit_networks requires an objective with "
                "batch_solve_networks (e.g. WindowObjective); "
                f"{type(self._objective).__name__} has none"
            )
        results: List[EvalResult] = []
        for network, (value, solution) in zip(networks, solve(networks)):
            warm_seed = None
            if solution is not None and getattr(solution, "converged", False):
                warm_seed = solution.queue_lengths
            results.append(
                EvalResult(
                    windows=tuple(int(p) for p in network.populations),
                    value=value,
                    fresh=True,
                    source=self.name,
                    solution=solution,
                    warm_seed=warm_seed,
                    bound=None,
                    health=self._health_record(),
                )
            )
        return results

    def _result(self, key: Point, value: float, fresh: bool) -> EvalResult:
        solution = None
        getter = getattr(self._objective, "cached_solution", None)
        if getter is not None:
            try:
                solution = getter(key)
            except ModelError:  # pragma: no cover - foreign-shape key
                solution = None
        warm_seed = None
        if solution is not None and getattr(solution, "converged", False):
            warm_seed = solution.queue_lengths
        certificate = None
        if self.bound is not None:
            certificate = self.bound(key)
        return EvalResult(
            windows=key,
            value=value,
            fresh=fresh,
            source=self.name,
            solution=solution,
            warm_seed=warm_seed,
            bound=certificate,
            health=self._health_record(),
        )

    def _health_record(self):
        """Per-evaluation health attached to results.

        The resilient plane overrides this with the ladder's
        :class:`~repro.resilience.health.SolveHealth`; the base class
        reports the degradation-ladder rungs taken so far (None while the
        plane is healthy), so a fault that forced a mid-search mode
        change is visible on every later result.
        """
        return self.degradations or None

    def _record_degradation(
        self, from_mode: str, to_mode: str, reason: str
    ) -> None:
        """Note one degradation-ladder rung and warn the operator."""
        event = DegradationEvent(
            from_mode=from_mode,
            to_mode=to_mode,
            reason=reason,
            evaluations=self.cache.evaluations,
        )
        self.degradations = self.degradations + (event,)
        warnings.warn(
            f"evaluation plane degraded {from_mode} -> {to_mode}: {reason}",
            RuntimeWarning,
            stacklevel=3,
        )

    # ------------------------------------------------------------------
    # shared batch helpers (used by the pooled planes and their rungs)
    # ------------------------------------------------------------------
    def _merge_batch(self, keys: Sequence[Point]) -> None:
        """Fan ``keys`` out via ``objective.batch_solve`` and prime the cache.

        Each primed value counts as one fresh evaluation and fires
        ``on_evaluation`` once — identical bookkeeping to an in-process
        solve, which is what keeps checkpoints and stores path-agnostic.
        """
        if not keys:
            return
        values = self._objective.batch_solve(keys)
        for key, value in zip(keys, values):
            if self.cache.prime(key, value) and self.on_evaluation is not None:
                self.on_evaluation(self.cache)

    def _uncached_cross(self, point: Point, step: int, point_value: float):
        """The not-yet-cached, not-bound-dominated ±step cross of ``point``."""
        fresh: List[Point] = []
        for axis in range(self.space.dimensions):
            for direction in (+1, -1):
                candidate = list(point)
                candidate[axis] += direction * step
                candidate_t = tuple(candidate)
                if (
                    candidate_t in self.space
                    and candidate_t not in self.cache
                    and candidate_t not in fresh
                    and not (
                        self.bound is not None
                        and self.bound(candidate_t) > point_value
                    )
                ):
                    fresh.append(candidate_t)
        return fresh

    # ------------------------------------------------------------------
    # bound pruning
    # ------------------------------------------------------------------
    def prune(self, candidate: Sequence[int], current_value: float) -> bool:
        """True when a certified bound proves ``candidate`` dominated.

        Only uncached candidates are ever pruned (a cached value is free
        to consult), and only on a *strict* bound excess: a candidate
        whose true value ties the current one would be rejected by the
        sweep's strict ``<`` test anyway, so skipping it cannot change
        the trajectory.  Pruned candidates are counted centrally in
        ``cache.pruned``.
        """
        key = self._key(candidate)
        if self.bound is None or key in self.cache:
            return False
        if self.bound(key) > current_value:
            self.cache.note_pruned()
            return True
        return False

    # ------------------------------------------------------------------
    # speculation hints (no-ops on serial planes)
    # ------------------------------------------------------------------
    def hint_sweep(self, point: Sequence[int], value: float, step: int) -> None:
        """An exploratory sweep around ``point`` (value, step) is starting."""

    def hint_accept(
        self,
        new_base: Sequence[int],
        previous: Sequence[int],
        value: float,
        step: int,
    ) -> None:
        """A move to ``new_base`` (from ``previous``) was just accepted."""

    def hint_step(self, step: int) -> None:
        """The exploration step was halved to ``step``."""

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Bank every in-flight result into the cache.  Idempotent.

        After this returns no paid-for evaluation is lost: best-so-far
        selection, checkpoints and the persistent store all see it.
        Serial planes have nothing in flight; pooled planes override.
        """

    def close(self, drain: bool = True) -> None:
        """Drain (unless told otherwise) and release resources.

        Idempotent.  Captures the backing pool's health snapshot first so
        :attr:`pool_health` stays readable after the workers are gone.
        ``drain=False`` is the exceptional-exit path: shutdown must not
        block on a wedged worker.
        """
        if self._closed:
            return
        if drain:
            self.drain()
        self._pool_health = getattr(self._objective, "pool_health", None)
        self._closed = True
        closer = getattr(self._objective, "close", None)
        if callable(closer):
            closer()

    @property
    def pool_health(self):
        """Live (or, after close, final) pool health; None when unpooled."""
        if self._closed:
            return self._pool_health
        return getattr(self._objective, "pool_health", None)

    def best(self) -> Tuple[Optional[Point], float]:
        """The best cached point so far (``(None, inf)`` when empty)."""
        return self.cache.best()

    def __enter__(self) -> "EvaluationPlane":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        # A clean exit banks in-flight speculation; an exceptional one
        # (KeyboardInterrupt, SearchError) must never block on the pool.
        self.close(drain=exc_type is None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"<{type(self).__name__} name={self.name!r} {state} "
            f"evaluations={self.cache.evaluations}>"
        )


def build_plane(
    objective,
    resilient_solver=None,
    **wiring,
) -> EvaluationPlane:
    """Pick the evaluation plane matching an objective's configuration.

    The decision mirrors what ``windim`` hand-wired before the planes
    existed: a :class:`~repro.evalplane.resilient.ResilientPlane` when
    the run wraps the escalation ladder, a
    :class:`~repro.evalplane.persistent.PersistentPlane` /
    :class:`~repro.evalplane.batch.BatchPlane` for parallel objectives
    (by pool mode), and the plain
    :class:`~repro.evalplane.serial.SerialPlane` otherwise.  ``wiring``
    is forwarded to the plane constructor (cache, space, budget, caps,
    hooks).
    """
    if resilient_solver is not None:
        from repro.evalplane.resilient import ResilientPlane

        return ResilientPlane(objective, resilient_solver, **wiring)
    if getattr(objective, "parallel", False):
        if getattr(objective, "pool_mode", "persistent") == "persistent":
            from repro.evalplane.persistent import PersistentPlane

            return PersistentPlane(objective, **wiring)
        from repro.evalplane.batch import BatchPlane

        return BatchPlane(objective, **wiring)
    from repro.evalplane.serial import SerialPlane

    return SerialPlane(objective, **wiring)
