"""The unit of currency of the evaluation plane: one finished evaluation.

Every execution path — serial objective call, per-batch process-pool
fan-out, persistent shared-memory fleet, resilient ladder — answers a
:meth:`~repro.evalplane.plane.EvaluationPlane.submit` with the same
:class:`EvalResult`, so callers (and the conformance suite) never need to
know which backend produced a number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.resilience.health import SolveHealth
    from repro.solution import NetworkSolution

__all__ = ["EvalResult"]

Point = Tuple[int, ...]


@dataclass(frozen=True)
class EvalResult:
    """One completed objective evaluation, backend-agnostic.

    Attributes
    ----------
    windows:
        The integer window vector that was evaluated (the cache key).
    value:
        Objective value ``F = 1/power`` (``inf`` where the solver failed).
    fresh:
        True when this submit paid for a new solve; False when the value
        was served from the shared :class:`~repro.search.cache.
        EvaluationCache` (a hit costs nothing and fires no hooks).
    source:
        Name of the plane that produced the value (``"serial"``,
        ``"batch"``, ``"persistent"``, ``"resilient"``, or a registered
        custom backend).
    solution:
        The full :class:`~repro.solution.NetworkSolution` when the
        objective retains one (named solvers via ``WindowObjective``);
        None for plain callables or failed solves.
    warm_seed:
        Converged queue-length matrix usable as a warm-start seed for
        neighbouring evaluations (None when the solve failed, did not
        converge, or the objective retains no solutions).  This is the
        same matrix the reuse engine and the persistent store harvest.
    bound:
        Certified lower bound on ``value`` when the plane was wired with
        a bound oracle (``WindowObjective.lower_bound``); None otherwise.
        Invariant certified by the conformance suite: ``bound <= value``.
    health:
        Per-evaluation health annotation.  The resilient ladder attaches
        its :class:`~repro.resilience.health.SolveHealth`; the pooled
        planes attach the tuple of
        :class:`~repro.resilience.health.DegradationEvent` rungs taken
        once the degradation ladder has fired.  None for healthy direct
        solves.
    """

    windows: Point
    value: float
    fresh: bool
    source: str
    solution: Optional["NetworkSolution"] = None
    warm_seed: Optional["np.ndarray"] = None
    bound: Optional[float] = None
    health: Optional["SolveHealth"] = None

    @property
    def ok(self) -> bool:
        """True when the solve produced a finite objective value."""
        return self.value != float("inf")
