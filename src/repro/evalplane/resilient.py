"""Resilient-ladder evaluation plane.

Serial-semantics evaluation whose objective solves through the
:class:`~repro.resilience.ladder.ResilientSolver` escalation ladder
(damping retries, solver escalation, exact-MVA last resort).  The plane
surfaces the ladder's per-evaluation :class:`~repro.resilience.health.
SolveHealth` record on every :class:`~repro.evalplane.result.EvalResult`
and exposes the accumulated :attr:`health_log`, so callers read health
through the plane instead of holding a side reference to the solver.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import SearchError
from repro.evalplane.plane import EvaluationPlane

__all__ = ["ResilientPlane"]


class ResilientPlane(EvaluationPlane):
    """In-process evaluation through the retry/escalation ladder."""

    name = "resilient"

    def __init__(self, objective, resilient_solver, **wiring):
        super().__init__(objective, **wiring)
        if resilient_solver is None or not hasattr(resilient_solver, "health_log"):
            raise SearchError(
                "ResilientPlane requires the ResilientSolver the objective "
                "was built around"
            )
        if getattr(objective, "parallel", False):
            raise SearchError(
                "ResilientPlane collects in-process health records and "
                "cannot drive a pooled objective"
            )
        self._ladder = resilient_solver

    @property
    def ladder(self):
        """The wrapped :class:`~repro.resilience.ladder.ResilientSolver`."""
        return self._ladder

    @property
    def health_log(self) -> Tuple:
        """Per-evaluation health records accumulated so far."""
        return tuple(self._ladder.health_log)

    def _health_record(self):
        return self._ladder.last_health
