"""Unified evaluation plane: one interface over every execution path.

See :mod:`repro.evalplane.plane` for the contract and
:mod:`repro.evalplane.registry` for adding backends.  The conformance
suite lives in ``tests/evalplane/`` and certifies every registered
backend against the serial reference.
"""

from repro.evalplane.plane import EvaluationPlane, build_plane
from repro.evalplane.registry import (
    PlaneSpec,
    create_plane,
    get_spec,
    plane_names,
    plane_specs,
    register_plane,
    temporary_plane,
    unregister_plane,
)
from repro.evalplane.result import EvalResult

__all__ = [
    "EvaluationPlane",
    "EvalResult",
    "build_plane",
    "PlaneSpec",
    "register_plane",
    "unregister_plane",
    "plane_names",
    "plane_specs",
    "get_spec",
    "create_plane",
    "temporary_plane",
]
