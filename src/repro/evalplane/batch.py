"""Per-batch process-pool evaluation plane.

Wraps the PR 3 execution path: each sweep's ±step cross is evaluated in
one synchronous :meth:`~repro.core.objective.WindowObjective.batch_solve`
fan-out over a ``ProcessPoolExecutor`` and primed into the shared cache,
so the sequential sweep that follows runs on cache hits.  This used to
live inside ``pattern_search`` as the ``prefetch=`` glue; it is now the
plane's :meth:`hint_sweep`, so budgets, caps and the checkpoint hook are
enforced in exactly one place.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import SearchError
from repro.evalplane.plane import EvaluationPlane
from repro.evalplane.result import EvalResult

__all__ = ["BatchPlane"]

Point = Tuple[int, ...]


class BatchPlane(EvaluationPlane):
    """Synchronous cross-prefetch over a per-batch process pool.

    Requires a parallel :class:`~repro.core.objective.WindowObjective`
    (``workers > 1``, named solver) in ``per-batch`` pool mode, and a
    ``space`` to enumerate sweep neighbourhoods.
    """

    name = "batch"

    def __init__(self, objective, **wiring):
        super().__init__(objective, **wiring)
        if not getattr(objective, "parallel", False):
            raise SearchError(
                "BatchPlane requires a parallel objective (workers > 1 "
                "and a named solver)"
            )
        if self.space is None:
            raise SearchError("BatchPlane requires a search space")

    # ------------------------------------------------------------------
    def _merge_batch(self, keys: Sequence[Point]) -> None:
        """Fan ``keys`` out over the pool and prime results into the cache.

        Each primed value counts as one fresh evaluation and fires
        ``on_evaluation`` once — identical bookkeeping to an in-process
        solve, which is what keeps checkpoints and stores path-agnostic.
        """
        if not keys:
            return
        values = self._objective.batch_solve(keys)
        for key, value in zip(keys, values):
            if self.cache.prime(key, value) and self.on_evaluation is not None:
                self.on_evaluation(self.cache)

    def _uncached_cross(self, point: Point, step: int, point_value: float):
        """The not-yet-cached, not-bound-dominated ±step cross of ``point``."""
        fresh: List[Point] = []
        for axis in range(self.space.dimensions):
            for direction in (+1, -1):
                candidate = list(point)
                candidate[axis] += direction * step
                candidate_t = tuple(candidate)
                if (
                    candidate_t in self.space
                    and candidate_t not in self.cache
                    and candidate_t not in fresh
                    and not (
                        self.bound is not None
                        and self.bound(candidate_t) > point_value
                    )
                ):
                    fresh.append(candidate_t)
        return fresh

    def hint_sweep(self, point: Sequence[int], value: float, step: int) -> None:
        """Batch-evaluate the uncached ±step cross before the sweep runs.

        Budget and cap are honoured quietly: the batch is trimmed to the
        remaining evaluation room and skipped entirely once the budget
        is spent (the search's next *demanded* fresh evaluation then
        raises with full best-so-far semantics).  Candidates whose
        certified bound already exceeds ``value`` are not worth a
        speculative solve — the sweep would prune them.
        """
        key = self._key(point)
        fresh = self._uncached_cross(key, step, value)
        room = self.max_evaluations - self.cache.evaluations
        fresh = fresh[: max(0, room)]
        if not fresh or self._caps_spent():
            return
        self._merge_batch(fresh)

    def submit_many(self, batch: Sequence[Sequence[int]]) -> List[EvalResult]:
        """One pool round trip for a whole seed list (deduplicated)."""
        keys = [self._key(w) for w in batch]
        seen = set()
        fresh: List[Point] = []
        for key in keys:
            if key in self.cache or key in seen:
                continue
            seen.add(key)
            fresh.append(key)
        room = self.max_evaluations - self.cache.evaluations
        fresh = fresh[: max(0, room)]
        if fresh and not self._caps_spent():
            self._merge_batch(fresh)
        return [
            self._result(key, self.cache.values[key], fresh=key in seen)
            for key in keys
            if key in self.cache
        ]
