"""Per-batch process-pool evaluation plane.

Wraps the PR 3 execution path: each sweep's ±step cross is evaluated in
one synchronous :meth:`~repro.core.objective.WindowObjective.batch_solve`
fan-out over a ``ProcessPoolExecutor`` and primed into the shared cache,
so the sequential sweep that follows runs on cache hits.  This used to
live inside ``pattern_search`` as the ``prefetch=`` glue; it is now the
plane's :meth:`hint_sweep`, so budgets, caps and the checkpoint hook are
enforced in exactly one place.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import PoolFailure, SearchError
from repro.evalplane.plane import EvaluationPlane
from repro.evalplane.result import EvalResult

__all__ = ["BatchPlane"]

Point = Tuple[int, ...]


class BatchPlane(EvaluationPlane):
    """Synchronous cross-prefetch over a per-batch process pool.

    Requires a parallel :class:`~repro.core.objective.WindowObjective`
    (``workers > 1``, named solver) in ``per-batch`` pool mode, and a
    ``space`` to enumerate sweep neighbourhoods.
    """

    name = "batch"

    def __init__(self, objective, **wiring):
        super().__init__(objective, **wiring)
        if not getattr(objective, "parallel", False):
            raise SearchError(
                "BatchPlane requires a parallel objective (workers > 1 "
                "and a named solver)"
            )
        if self.space is None:
            raise SearchError("BatchPlane requires a search space")

    # ------------------------------------------------------------------
    def _safe_merge(self, keys: Sequence[Point]) -> None:
        """``_merge_batch`` with the degradation ladder's last rung.

        A broken process pool (:class:`~repro.errors.PoolFailure`)
        demotes the objective to in-process serial solves and replays
        the same batch there, so the search sees identical values and
        the trajectory is preserved — just slower.
        """
        try:
            self._merge_batch(keys)
        except PoolFailure as error:
            self._record_degradation("batch", "serial", str(error))
            self._objective.demote_pool("serial")
            self._merge_batch([k for k in keys if k not in self.cache])

    def hint_sweep(self, point: Sequence[int], value: float, step: int) -> None:
        """Batch-evaluate the uncached ±step cross before the sweep runs.

        Budget and cap are honoured quietly: the batch is trimmed to the
        remaining evaluation room and skipped entirely once the budget
        is spent (the search's next *demanded* fresh evaluation then
        raises with full best-so-far semantics).  Candidates whose
        certified bound already exceeds ``value`` are not worth a
        speculative solve — the sweep would prune them.
        """
        key = self._key(point)
        fresh = self._uncached_cross(key, step, value)
        room = self.max_evaluations - self.cache.evaluations
        fresh = fresh[: max(0, room)]
        if not fresh or self._caps_spent():
            return
        self._safe_merge(fresh)

    def submit_many(self, batch: Sequence[Sequence[int]]) -> List[EvalResult]:
        """One pool round trip for a whole seed list (deduplicated)."""
        keys = [self._key(w) for w in batch]
        seen = set()
        fresh: List[Point] = []
        for key in keys:
            if key in self.cache or key in seen:
                continue
            seen.add(key)
            fresh.append(key)
        room = self.max_evaluations - self.cache.evaluations
        fresh = fresh[: max(0, room)]
        if fresh and not self._caps_spent():
            self._safe_merge(fresh)
        return [
            self._result(key, self.cache.values[key], fresh=key in seen)
            for key in keys
            if key in self.cache
        ]
