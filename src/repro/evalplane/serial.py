"""The serial evaluation plane — the reference semantics.

Every other plane is certified against this one: a fresh submit solves
in-process through the shared cache, hints are no-ops, and there is
never anything in flight.  It wraps *any* ``point -> float`` callable,
which is what lets :func:`~repro.search.pattern.pattern_search` keep its
plain-function interface.
"""

from __future__ import annotations

from repro.evalplane.plane import EvaluationPlane

__all__ = ["SerialPlane"]


class SerialPlane(EvaluationPlane):
    """In-process evaluation; the conformance suite's oracle plane."""

    name = "serial"
