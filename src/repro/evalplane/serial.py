"""The serial evaluation plane — the reference semantics.

Every other plane is certified against this one: a fresh submit solves
in-process through the shared cache, hints are no-ops, and there is
never anything in flight.  It wraps *any* ``point -> float`` callable,
which is what lets :func:`~repro.search.pattern.pattern_search` keep its
plain-function interface.

``submit_many`` has a cross-network SoA fast path: when the wrapped
objective is a :class:`~repro.core.objective.WindowObjective` whose
solver/backend pair is batchable (see
:attr:`~repro.core.objective.WindowObjective.soa_batchable`), the fresh
slice of a seed list is solved as *one* packed tensor pass instead of a
per-point loop.  The pass is bit-identical to the per-point solves, so
the plane's reference semantics are unchanged — only the dispatch count
drops.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.evalplane.plane import EvaluationPlane, Point
from repro.evalplane.result import EvalResult

__all__ = ["SerialPlane"]


class SerialPlane(EvaluationPlane):
    """In-process evaluation; the conformance suite's oracle plane."""

    name = "serial"

    def submit_many(self, batch: Sequence[Sequence[int]]) -> List[EvalResult]:
        """Batch evaluation, as one SoA tensor pass where the objective allows.

        Falls back to the base per-point loop for plain callables and for
        non-batchable solver/backend configurations.  Caps are honoured
        quietly either way (trim to room, never raise).
        """
        objective = self._objective
        if not (
            hasattr(objective, "batch_solve")
            and getattr(objective, "soa_batchable", False)
        ):
            # A declined batch must never be silent: log the engagement
            # reason before falling back to the per-point loop.
            assess = getattr(objective, "soa_assessment", None)
            if assess is not None and len(batch) >= 2:
                from repro.mva import autobatch

                engaged, reason = assess(len(batch))
                if not engaged:
                    autobatch.record_declined(reason, len(batch))
            return super().submit_many(batch)
        keys = [self._key(w) for w in batch]
        seen = set()
        fresh: List[Point] = []
        for key in keys:
            if key in self.cache or key in seen:
                continue
            seen.add(key)
            fresh.append(key)
        room = self.max_evaluations - self.cache.evaluations
        fresh = fresh[: max(0, room)]
        if fresh and not self._caps_spent():
            self._merge_batch(fresh)
        return [
            self._result(key, self.cache.values[key], fresh=key in seen)
            for key in keys
            if key in self.cache
        ]
