"""Registry of evaluation-plane backends.

Every execution path that wants the conformance suite's certification
registers a :class:`PlaneSpec` here: a factory plus the objective
configuration it needs (parallel workers? which pool mode? the resilient
ladder?).  The suite in ``tests/evalplane/`` parametrises over
:func:`plane_names` and builds each plane through :func:`create_plane`,
so a new backend gets the whole battery — golden parity, seeded fuzz
trajectory equivalence, budget/resume semantics, fault injection — by
adding one ``register_plane`` call and zero new test glue.

The built-in factories lazy-import their plane modules (and those
lazy-import the parallel stack), keeping ``import repro.evalplane``
cheap and cycle-free with :mod:`repro.core`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.errors import SearchError

__all__ = [
    "PlaneSpec",
    "register_plane",
    "unregister_plane",
    "plane_names",
    "plane_specs",
    "get_spec",
    "create_plane",
    "temporary_plane",
]


@dataclass(frozen=True)
class PlaneSpec:
    """How to build (and what to feed) one evaluation-plane backend.

    Attributes
    ----------
    name:
        Registry key; also the ``source`` tag on the plane's results.
    factory:
        ``factory(objective, **wiring) -> EvaluationPlane``.
    description:
        One line for ``repro windim planes`` and the docs.
    needs_parallel:
        The objective must be constructed with ``workers > 1`` and a
        *named* solver (pooled planes ship work to processes).
    pool_mode:
        Required :class:`~repro.core.objective.WindowObjective` pool
        mode (``"persistent"``/``"per-batch"``), or None when any will
        do.
    needs_ladder:
        The factory expects a ``resilient_solver`` in its wiring and the
        objective to solve through it.
    """

    name: str
    factory: Callable
    description: str
    needs_parallel: bool = False
    pool_mode: Optional[str] = None
    needs_ladder: bool = False


_REGISTRY: Dict[str, PlaneSpec] = {}


def register_plane(spec: PlaneSpec, replace: bool = False) -> PlaneSpec:
    """Add ``spec`` to the registry (``replace=True`` to overwrite)."""
    if not replace and spec.name in _REGISTRY:
        raise SearchError(f"evaluation plane {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_plane(name: str) -> None:
    """Remove a backend; unknown names are ignored (idempotent)."""
    _REGISTRY.pop(name, None)


def plane_names() -> Tuple[str, ...]:
    """Registered backend names, registration order (builtins first)."""
    return tuple(_REGISTRY)


def plane_specs() -> Tuple[PlaneSpec, ...]:
    """All registered specs, registration order."""
    return tuple(_REGISTRY.values())


def get_spec(name: str) -> PlaneSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SearchError(
            f"unknown evaluation plane {name!r}; registered: "
            f"{', '.join(_REGISTRY) or '(none)'}"
        ) from None


def create_plane(name: str, objective, **wiring):
    """Instantiate the registered backend ``name`` for ``objective``."""
    return get_spec(name).factory(objective, **wiring)


@contextmanager
def temporary_plane(spec: PlaneSpec) -> Iterator[PlaneSpec]:
    """Register ``spec`` for the duration of a ``with`` block.

    The conformance suite uses this to certify an in-test custom backend
    without leaking it into other tests; a pre-existing spec of the same
    name is restored on exit.
    """
    previous = _REGISTRY.get(spec.name)
    register_plane(spec, replace=True)
    try:
        yield spec
    finally:
        if previous is not None:
            _REGISTRY[spec.name] = previous
        else:
            _REGISTRY.pop(spec.name, None)


# ----------------------------------------------------------------------
# built-in backends
# ----------------------------------------------------------------------
def _serial_factory(objective, **wiring):
    from repro.evalplane.serial import SerialPlane

    return SerialPlane(objective, **wiring)


def _batch_factory(objective, **wiring):
    from repro.evalplane.batch import BatchPlane

    return BatchPlane(objective, **wiring)


def _persistent_factory(objective, **wiring):
    from repro.evalplane.persistent import PersistentPlane

    return PersistentPlane(objective, **wiring)


def _resilient_factory(objective, **wiring):
    from repro.evalplane.resilient import ResilientPlane

    ladder = wiring.pop("resilient_solver", None)
    return ResilientPlane(objective, ladder, **wiring)


register_plane(
    PlaneSpec(
        name="serial",
        factory=_serial_factory,
        description="in-process evaluation; the reference semantics",
    )
)
register_plane(
    PlaneSpec(
        name="batch",
        factory=_batch_factory,
        description="per-sweep cross prefetch over a per-batch process pool",
        needs_parallel=True,
        pool_mode="per-batch",
    )
)
register_plane(
    PlaneSpec(
        name="persistent",
        factory=_persistent_factory,
        description=(
            "persistent shared-memory worker fleet with speculative "
            "scheduling"
        ),
        needs_parallel=True,
        pool_mode="persistent",
    )
)
register_plane(
    PlaneSpec(
        name="resilient",
        factory=_resilient_factory,
        description="in-process evaluation through the retry/escalation ladder",
        needs_ladder=True,
    )
)
