"""Persistent shared-memory pool plane (speculative scheduler path).

Wraps the PR 5 execution stack — a long-lived
:class:`~repro.parallel.pool.PersistentEvalPool` kept saturated by a
:class:`~repro.parallel.scheduler.SpeculativeScheduler` — behind the
:class:`~repro.evalplane.plane.EvaluationPlane` interface.  The search's
hints feed the scheduler's priority frontier; a demanded value blocks
only until the pool merges it into the shared cache.  The trajectory
contract is inherited from the scheduler: accepted moves and the chosen
optimum are bitwise-identical to the serial plane.

One scheduler serves one search run: :meth:`drain` banks every in-flight
completion and retires the scheduler, and the next hint or demand lazily
creates a fresh one against the same pool — which is how a multistart
shares a single worker fleet across all of its starts.

Degradation ladder
------------------
The plane owns the first two rungs of the mid-search degradation ladder
(``persistent -> per-batch -> serial``).  A pool that raises
:class:`~repro.errors.PoolFailure` (respawn budget exhausted), loses a
demanded task, or exceeds the cumulative ``failure_budget`` of respawns
plus dropped tasks is retired; the plane demotes the objective to
per-batch fan-out and continues the same search against the same cache.
If the per-batch pool breaks too, the last rung is in-process serial
solving.  Every rung taken is recorded as a
:class:`~repro.resilience.health.DegradationEvent` (surfaced on
``EvalResult.health`` and the final ``WindimResult``), and because every
rung reports through the same :class:`~repro.search.cache.EvaluationCache`
prime-once bookkeeping, the search trajectory stays bitwise identical to
a fault-free run.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.errors import PoolFailure, SearchError
from repro.evalplane.plane import EvaluationPlane

__all__ = ["PersistentPlane", "DEFAULT_FAILURE_BUDGET"]

Point = Tuple[int, ...]

#: Cumulative (respawns + dropped tasks) tolerated before the plane
#: stops trusting the persistent pool and steps down a rung.
DEFAULT_FAILURE_BUDGET = 8


def _env_failure_budget(default: int) -> int:
    raw = os.environ.get("REPRO_POOL_FAILURE_BUDGET", "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


class PersistentPlane(EvaluationPlane):
    """Asynchronous speculative evaluation on a persistent worker fleet."""

    name = "persistent"

    def __init__(self, objective, failure_budget: Optional[int] = None, **wiring):
        super().__init__(objective, **wiring)
        if not getattr(objective, "parallel", False):
            raise SearchError(
                "PersistentPlane requires a parallel objective (workers > 1 "
                "and a named solver)"
            )
        if getattr(objective, "pool_mode", None) != "persistent":
            raise SearchError(
                "PersistentPlane requires pool_mode='persistent', not "
                f"{getattr(objective, 'pool_mode', None)!r}"
            )
        if self.space is None:
            raise SearchError("PersistentPlane requires a search space")
        self._scheduler = None
        self._mode = "persistent"
        if failure_budget is None:
            failure_budget = _env_failure_budget(DEFAULT_FAILURE_BUDGET)
        self.failure_budget = failure_budget

    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """Current ladder rung: ``persistent``, ``batch`` or ``serial``."""
        return self._mode

    def _live_scheduler(self):
        """The scheduler for the current search run (created lazily)."""
        if self._scheduler is None:
            from repro.parallel.scheduler import SpeculativeScheduler

            self._scheduler = SpeculativeScheduler(
                self._objective.ensure_pool(),
                self.cache,
                self.space,
                merge_hook=self._objective.absorb_remote,
                on_evaluation=self.on_evaluation,
                budget=self.budget,
                max_evaluations=self.max_evaluations,
                bound=self.bound,
                seed_for=self.seed_for,
            )
        return self._scheduler

    @property
    def scheduler_stats(self) -> Optional[dict]:
        """Speculation counters of the current scheduler (None when idle)."""
        return self._scheduler.stats if self._scheduler is not None else None

    # ------------------------------------------------------------------
    # degradation ladder
    # ------------------------------------------------------------------
    def _over_budget(self) -> bool:
        """Has the pool burned through its cumulative failure budget?"""
        if self._mode != "persistent" or self.failure_budget <= 0:
            return False
        health = getattr(self._objective, "pool_health", None)
        if health is None:
            return False
        return (health.respawns + health.tasks_dropped) >= self.failure_budget

    def _degrade(self, to_mode: str, reason: str) -> None:
        """Step down one rung; the broken pool is abandoned, not drained."""
        self._record_degradation(self._mode, to_mode, reason)
        # The scheduler fronted a pool we no longer trust: drop it without
        # finish() — in-flight speculation on a broken fleet is forfeit.
        self._scheduler = None
        self._objective.demote_pool(
            "per-batch" if to_mode == "batch" else "serial"
        )
        self._mode = to_mode

    def _check_budget(self) -> None:
        if self._over_budget():
            health = self._objective.pool_health
            self._degrade(
                "batch",
                f"pool failure budget exhausted ({health.respawns} respawns"
                f" + {health.tasks_dropped} dropped >= {self.failure_budget})",
            )

    # ------------------------------------------------------------------
    def _fulfil(self, key: Point):
        if self._mode == "persistent":
            self._check_budget()
        if self._mode == "persistent":
            # demand() blocks until the pool's value for this point is
            # merged into the cache; the scheduler fires on_evaluation on
            # every merge, so the base class must not fire it again.
            try:
                self._live_scheduler().demand(key)
                return self.cache(key), True
            except (PoolFailure, SearchError) as error:
                self._degrade("batch", str(error))
        if self._mode == "batch" and key not in self.cache:
            try:
                self._merge_batch([key])
            except PoolFailure as error:
                self._degrade("serial", str(error))
        if key in self.cache.values:
            # merged by a rung above (hook already fired there)
            return self.cache.values[key], True
        # last rung: plain in-process solve, base class fires the hook
        return self.cache(key), False

    # ------------------------------------------------------------------
    # speculation
    # ------------------------------------------------------------------
    def hint_sweep(self, point: Sequence[int], value: float, step: int) -> None:
        if self._mode == "persistent":
            self._check_budget()
        if self._mode == "persistent":
            try:
                self._live_scheduler().begin_sweep(
                    self._key(point), value, step
                )
                return
            except (PoolFailure, SearchError) as error:
                self._degrade("batch", str(error))
        if self._mode == "batch":
            key = self._key(point)
            fresh = self._uncached_cross(key, step, value)
            room = self.max_evaluations - self.cache.evaluations
            fresh = fresh[: max(0, room)]
            if not fresh or self._caps_spent():
                return
            try:
                self._merge_batch(fresh)
            except PoolFailure as error:
                self._degrade("serial", str(error))
        # serial rung: no speculation worth prepaying for

    def hint_accept(
        self,
        new_base: Sequence[int],
        previous: Sequence[int],
        value: float,
        step: int,
    ) -> None:
        if self._mode != "persistent":
            return
        self._check_budget()
        if self._mode != "persistent":
            return
        try:
            self._live_scheduler().note_accept(
                self._key(new_base), self._key(previous), value, step
            )
        except (PoolFailure, SearchError) as error:
            self._degrade("batch", str(error))

    def hint_step(self, step: int) -> None:
        if self._mode != "persistent" or self._scheduler is None:
            return
        try:
            self._scheduler.note_step(step)
        except (PoolFailure, SearchError) as error:
            self._degrade("batch", str(error))

    def submit_many(self, batch: Sequence[Sequence[int]]):
        """Seed-list fan-out on the current rung (one barrier batch).

        Uses the objective's pool ``map`` path — warm seeds travel by
        arena slot — then reports through the cache like every other
        merge.  Caps are honoured quietly, as in the base class.  A pool
        failure mid-batch degrades one rung and replays the remaining
        keys there.
        """
        if self._mode == "serial":
            return super().submit_many(batch)
        keys = [self._key(w) for w in batch]
        fresh: List[Point] = []
        seen = set()
        for key in keys:
            if key in self.cache or key in seen:
                continue
            seen.add(key)
            fresh.append(key)
        room = self.max_evaluations - self.cache.evaluations
        fresh = fresh[: max(0, room)]
        if fresh and not self._caps_spent():
            try:
                values = self._objective.batch_solve(fresh)
            except (PoolFailure, SearchError) as error:
                self._degrade(
                    "batch" if self._mode == "persistent" else "serial",
                    str(error),
                )
                return self.submit_many(batch)
            for key, value in zip(fresh, values):
                if self.cache.prime(key, value) and self.on_evaluation is not None:
                    self.on_evaluation(self.cache)
        return [
            self._result(key, self.cache.values[key], fresh=key in seen)
            for key in keys
            if key in self.cache
        ]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Bank all in-flight speculation, then retire the scheduler.

        Idempotent; called by the search when a run ends (normally or on
        budget exhaustion) and by :meth:`close` on clean exits, so no
        exit path can leave paid-for pool results unmerged.  The next
        demand starts a fresh scheduler on the same fleet.  If the pool
        breaks while draining, the plane degrades instead of raising —
        a drain must never lose an otherwise-complete search.
        """
        if self._scheduler is not None:
            scheduler, self._scheduler = self._scheduler, None
            try:
                scheduler.finish()
            except (PoolFailure, SearchError) as error:
                self._degrade("batch", f"pool failed during drain: {error}")
