"""Persistent shared-memory pool plane (speculative scheduler path).

Wraps the PR 5 execution stack — a long-lived
:class:`~repro.parallel.pool.PersistentEvalPool` kept saturated by a
:class:`~repro.parallel.scheduler.SpeculativeScheduler` — behind the
:class:`~repro.evalplane.plane.EvaluationPlane` interface.  The search's
hints feed the scheduler's priority frontier; a demanded value blocks
only until the pool merges it into the shared cache.  The trajectory
contract is inherited from the scheduler: accepted moves and the chosen
optimum are bitwise-identical to the serial plane.

One scheduler serves one search run: :meth:`drain` banks every in-flight
completion and retires the scheduler, and the next hint or demand lazily
creates a fresh one against the same pool — which is how a multistart
shares a single worker fleet across all of its starts.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import SearchError
from repro.evalplane.plane import EvaluationPlane

__all__ = ["PersistentPlane"]

Point = Tuple[int, ...]


class PersistentPlane(EvaluationPlane):
    """Asynchronous speculative evaluation on a persistent worker fleet."""

    name = "persistent"

    def __init__(self, objective, **wiring):
        super().__init__(objective, **wiring)
        if not getattr(objective, "parallel", False):
            raise SearchError(
                "PersistentPlane requires a parallel objective (workers > 1 "
                "and a named solver)"
            )
        if getattr(objective, "pool_mode", None) != "persistent":
            raise SearchError(
                "PersistentPlane requires pool_mode='persistent', not "
                f"{getattr(objective, 'pool_mode', None)!r}"
            )
        if self.space is None:
            raise SearchError("PersistentPlane requires a search space")
        self._scheduler = None

    # ------------------------------------------------------------------
    def _live_scheduler(self):
        """The scheduler for the current search run (created lazily)."""
        if self._scheduler is None:
            from repro.parallel.scheduler import SpeculativeScheduler

            self._scheduler = SpeculativeScheduler(
                self._objective.ensure_pool(),
                self.cache,
                self.space,
                merge_hook=self._objective.absorb_remote,
                on_evaluation=self.on_evaluation,
                budget=self.budget,
                max_evaluations=self.max_evaluations,
                bound=self.bound,
                seed_for=self.seed_for,
            )
        return self._scheduler

    @property
    def scheduler_stats(self) -> Optional[dict]:
        """Speculation counters of the current scheduler (None when idle)."""
        return self._scheduler.stats if self._scheduler is not None else None

    def _fulfil(self, key: Point):
        # demand() blocks until the pool's value for this point is merged
        # into the cache; the scheduler fires on_evaluation on every
        # merge, so the base class must not fire it again.
        self._live_scheduler().demand(key)
        return self.cache(key), True

    # ------------------------------------------------------------------
    # speculation
    # ------------------------------------------------------------------
    def hint_sweep(self, point: Sequence[int], value: float, step: int) -> None:
        self._live_scheduler().begin_sweep(self._key(point), value, step)

    def hint_accept(
        self,
        new_base: Sequence[int],
        previous: Sequence[int],
        value: float,
        step: int,
    ) -> None:
        self._live_scheduler().note_accept(
            self._key(new_base), self._key(previous), value, step
        )

    def hint_step(self, step: int) -> None:
        if self._scheduler is not None:
            self._scheduler.note_step(step)

    def submit_many(self, batch: Sequence[Sequence[int]]):
        """Seed-list fan-out on the persistent fleet (one barrier batch).

        Uses the objective's pool ``map`` path — warm seeds travel by
        arena slot — then reports through the cache like every other
        merge.  Caps are honoured quietly, as in the base class.
        """
        keys = [self._key(w) for w in batch]
        fresh = []
        seen = set()
        for key in keys:
            if key in self.cache or key in seen:
                continue
            seen.add(key)
            fresh.append(key)
        room = self.max_evaluations - self.cache.evaluations
        fresh = fresh[: max(0, room)]
        if fresh and not self._caps_spent():
            values = self._objective.batch_solve(fresh)
            for key, value in zip(fresh, values):
                if self.cache.prime(key, value) and self.on_evaluation is not None:
                    self.on_evaluation(self.cache)
        return [
            self._result(key, self.cache.values[key], fresh=key in seen)
            for key in keys
            if key in self.cache
        ]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Bank all in-flight speculation, then retire the scheduler.

        Idempotent; called by the search when a run ends (normally or on
        budget exhaustion) and by :meth:`close` on clean exits, so no
        exit path can leave paid-for pool results unmerged.  The next
        demand starts a fresh scheduler on the same fleet.
        """
        if self._scheduler is not None:
            self._scheduler.finish()
            self._scheduler = None
