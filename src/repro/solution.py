"""Common result record produced by every network solver.

Exact solvers (:mod:`repro.exact`), the approximate MVA solvers
(:mod:`repro.mva`) and the discrete-event simulator (:mod:`repro.sim`) all
report a :class:`NetworkSolution`, so downstream code (power metric, WINDIM,
benchmarks, comparisons) is solver-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.queueing.network import ClosedNetwork

__all__ = ["NetworkSolution"]


@dataclass(frozen=True)
class NetworkSolution:
    """Steady-state performance measures of a closed multichain network.

    Attributes
    ----------
    network:
        The solved network (with the populations that were solved for).
    throughputs:
        ``(R,)`` — cycle throughput ``lambda_r`` of each chain (cycles/s).
        For WINDIM networks this equals the class message throughput.
    queue_lengths:
        ``(R, L)`` — mean number of chain-``r`` customers at station ``i``
        (including any in service).
    waiting_times:
        ``(R, L)`` — mean time a chain-``r`` customer spends per *cycle* at
        station ``i`` (queueing + service, summed over its visits there);
        zero where the chain does not visit.
    method:
        Name of the solver that produced this solution.
    iterations:
        Iteration count for iterative solvers (0 for direct ones).
    converged:
        False only when an iterative solver stopped at its budget; direct
        solvers always set True.
    extras:
        Free-form solver diagnostics (e.g. normalisation constant).
    """

    network: ClosedNetwork
    throughputs: np.ndarray
    queue_lengths: np.ndarray
    waiting_times: np.ndarray
    method: str
    iterations: int = 0
    converged: bool = True
    extras: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # derived measures
    # ------------------------------------------------------------------
    @property
    def network_throughput(self) -> float:
        """Total network throughput ``lambda = sum_r lambda_r`` (msg/s)."""
        return float(self.throughputs.sum())

    def chain_delay(self, chain: int) -> float:
        """Mean network delay of chain ``chain`` (seconds).

        By Little's law over the chain's non-source stations:
        ``T_r = sum_{i in V(r)} N_ir / lambda_r``.
        """
        lam = self.throughputs[chain]
        if lam <= 0:
            return float("inf")
        mask = self.network.delay_mask()[chain]
        return float(self.queue_lengths[chain, mask].sum() / lam)

    @property
    def chain_delays(self) -> np.ndarray:
        """``(R,)`` mean network delay of each chain (seconds)."""
        return np.asarray(
            [self.chain_delay(r) for r in range(self.network.num_chains)]
        )

    @property
    def mean_network_delay(self) -> float:
        """Throughput-weighted mean network delay ``T`` (seconds).

        ``T = sum_r sum_{i in V(r)} N_ir / sum_r lambda_r`` — Little's law
        over all non-source queues, matching the thesis APL program ``FCT``
        (line [105]: ``D <- (+/NMCLS) / +/LMBDA``).
        """
        lam = self.network_throughput
        if lam <= 0:
            return float("inf")
        mask = self.network.delay_mask()
        return float(self.queue_lengths[mask].sum() / lam)

    def station_queue_length(self, station: int) -> float:
        """Total mean queue length at ``station`` over all chains."""
        return float(self.queue_lengths[:, station].sum())

    def utilization(self, station: int) -> float:
        """Utilisation of ``station``: ``sum_r lambda_r * demand_ri``.

        Meaningful for single-server fixed-rate stations, where it equals
        the probability the server is busy.
        """
        demand = self.network.demands[:, station]
        return float(np.dot(self.throughputs, demand))

    @property
    def utilizations(self) -> np.ndarray:
        """``(L,)`` utilisation of each station."""
        return self.network.demands.T @ self.throughputs

    def total_customers(self) -> float:
        """Total mean customer count; should equal the total population."""
        return float(self.queue_lengths.sum())

    def summary(self) -> str:
        """Human-readable multi-line report (mirrors the APL ``FCT`` output)."""
        lines = [f"solution by {self.method}"]
        lines.append(f"  windows            = {self.network.populations.tolist()}")
        lines.append(
            "  class throughputs  = "
            + ", ".join(f"{x:.4f}" for x in self.throughputs)
        )
        lines.append(
            "  class delays       = "
            + ", ".join(f"{x:.5f}" for x in self.chain_delays)
        )
        lines.append(f"  network throughput = {self.network_throughput:.4f}")
        lines.append(f"  avg network delay  = {self.mean_network_delay:.5f}")
        delay = self.mean_network_delay
        power = self.network_throughput / delay if delay > 0 else 0.0
        lines.append(f"  power              = {power:.2f}")
        if not self.converged:
            lines.append(
                f"  WARNING: not converged after {self.iterations} iterations; "
                "figures are the last iterate"
            )
        return "\n".join(lines)
