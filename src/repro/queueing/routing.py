"""Routing matrices and traffic equations.

Thesis §3.2.3/§3.3.2: a chain's routing is a Markov chain over stations.
For open chains the aggregate arrival rates solve the *traffic equations*

    lambda_i = gamma_i + sum_j lambda_j * p_ji          (eq. 3.1)

and for closed chains the *visit ratios* solve the same system with
``gamma = 0``, determined up to a multiplicative constant (eq. 3.15a).

These helpers let models be specified by probabilistic routing rather than
explicit visit sequences; the deterministic cyclic routes used by WINDIM are
the special case of a permutation-like routing matrix.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ModelError, SolverError

__all__ = [
    "validate_routing_matrix",
    "open_chain_arrival_rates",
    "closed_chain_visit_ratios",
    "cyclic_routing_matrix",
]


def validate_routing_matrix(routing: np.ndarray, allow_exit: bool = True) -> None:
    """Check that ``routing`` is a valid sub-stochastic routing matrix.

    Parameters
    ----------
    routing:
        Square matrix; ``routing[i, j]`` is the probability that a customer
        finishing service at station ``i`` proceeds to station ``j``.
    allow_exit:
        If True, row sums may be less than one (the deficit is the exit
        probability, open networks).  If False, every row must sum to one
        (closed networks; the thesis stability condition of §3.2.5).
    """
    routing = np.asarray(routing, dtype=float)
    if routing.ndim != 2 or routing.shape[0] != routing.shape[1]:
        raise ModelError(f"routing matrix must be square, got shape {routing.shape}")
    if np.any(routing < -1e-12):
        raise ModelError("routing probabilities must be non-negative")
    row_sums = routing.sum(axis=1)
    if np.any(row_sums > 1.0 + 1e-9):
        raise ModelError("routing matrix row sums must not exceed 1")
    if not allow_exit and np.any(np.abs(row_sums - 1.0) > 1e-9):
        raise ModelError("closed-chain routing matrix rows must sum to 1")


def open_chain_arrival_rates(
    routing: np.ndarray, external_rates: Sequence[float]
) -> np.ndarray:
    """Solve the open-network traffic equations (thesis eq. 3.1).

    Parameters
    ----------
    routing:
        ``(N, N)`` sub-stochastic routing matrix.
    external_rates:
        ``gamma_i`` — exogenous Poisson arrival rate at each station.

    Returns
    -------
    numpy.ndarray
        ``lambda_i`` — aggregate arrival rate at each station.
    """
    routing = np.asarray(routing, dtype=float)
    validate_routing_matrix(routing, allow_exit=True)
    gamma = np.asarray(external_rates, dtype=float)
    if gamma.shape != (routing.shape[0],):
        raise ModelError(
            f"external rates shape {gamma.shape} does not match routing "
            f"matrix {routing.shape}"
        )
    if np.any(gamma < 0):
        raise ModelError("external arrival rates must be non-negative")
    identity = np.eye(routing.shape[0])
    try:
        rates = np.linalg.solve(identity - routing.T, gamma)
    except np.linalg.LinAlgError as exc:
        raise SolverError(
            "traffic equations are singular; customers cannot all eventually "
            "leave the network"
        ) from exc
    if np.any(rates < -1e-9):
        raise SolverError("traffic equations produced negative arrival rates")
    return np.clip(rates, 0.0, None)


def closed_chain_visit_ratios(
    routing: np.ndarray, reference_station: int = 0
) -> np.ndarray:
    """Visit ratios of a closed chain (thesis eq. 3.15a with q=0).

    The ratios are normalised so the reference station has visit ratio 1.

    Parameters
    ----------
    routing:
        ``(N, N)`` stochastic routing matrix of the chain (rows sum to 1).
    reference_station:
        Station whose visit ratio is pinned to 1.
    """
    routing = np.asarray(routing, dtype=float)
    validate_routing_matrix(routing, allow_exit=False)
    n = routing.shape[0]
    if not 0 <= reference_station < n:
        raise ModelError(f"reference station {reference_station} out of range")
    # Solve e = e P with e[ref] = 1: replace one balance equation by the
    # normalisation, which also handles the rank deficiency of (I - P^T).
    system = (np.eye(n) - routing.T).copy()
    rhs = np.zeros(n)
    system[reference_station, :] = 0.0
    system[reference_station, reference_station] = 1.0
    rhs[reference_station] = 1.0
    try:
        ratios = np.linalg.solve(system, rhs)
    except np.linalg.LinAlgError as exc:
        raise SolverError(
            "visit-ratio equations are singular; the routing chain is not "
            "irreducible"
        ) from exc
    if np.any(ratios < -1e-9):
        raise SolverError("visit ratios came out negative; routing chain not irreducible")
    return np.clip(ratios, 0.0, None)


def cyclic_routing_matrix(route: Sequence[int], num_stations: Optional[int] = None) -> np.ndarray:
    """Routing matrix of a deterministic cycle over ``route``.

    ``route`` lists station indices in visit order; the last hop returns to
    the first station, closing the chain.  Stations outside the route get
    self-loops so the matrix stays stochastic (they are never entered).
    """
    if len(route) == 0:
        raise ModelError("route must contain at least one station")
    size = num_stations if num_stations is not None else max(route) + 1
    if any(not 0 <= i < size for i in route):
        raise ModelError("route contains station indices out of range")
    if len(set(route)) != len(route):
        raise ModelError(
            "cyclic_routing_matrix requires distinct stations on the route; "
            "use explicit visit sequences for re-entrant routes"
        )
    routing = np.zeros((size, size))
    for here, nxt in zip(route, list(route[1:]) + [route[0]]):
        routing[here, nxt] = 1.0
    on_route = set(route)
    for i in range(size):
        if i not in on_route:
            routing[i, i] = 1.0
    return routing
