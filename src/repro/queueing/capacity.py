"""Capacity functions of service stations (thesis §3.3.2, Table 3.6).

The *capacity function* of queue ``n`` is the formal power series

    C_n(x) = sum_{i>=0} a_n(i) x^i,   a_n(i) = (mu_n^0)^i / prod_{j<=i} mu_n(j)

whose coefficients ``a_n(i)`` are the station factors appearing in the
product-form solution.  Three practically important cases (Table 3.6):

* fixed-rate single server:        C(x) = 1 / (1 - x),        a(i) = 1
* limited queue-dependent servers: C(x) = Theta(x) / (1 - x)
* infinite server (M/G/inf):       C(x) = exp(x),             a(i) = 1/i!

These coefficient sequences drive the convolution solvers in
:mod:`repro.exact` and are exposed here for testing and for users building
custom stations.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ModelError
from repro.queueing.station import Discipline, Station

__all__ = [
    "capacity_coefficients",
    "fixed_rate_coefficients",
    "infinite_server_coefficients",
    "multiserver_coefficients",
    "capacity_function_value",
]


def fixed_rate_coefficients(max_customers: int) -> np.ndarray:
    """Coefficients ``a(i) = 1`` of ``C(x) = 1/(1-x)``."""
    if max_customers < 0:
        raise ModelError("max_customers must be >= 0")
    return np.ones(max_customers + 1)


def infinite_server_coefficients(max_customers: int) -> np.ndarray:
    """Coefficients ``a(i) = 1/i!`` of ``C(x) = exp(x)``."""
    if max_customers < 0:
        raise ModelError("max_customers must be >= 0")
    coeffs = np.empty(max_customers + 1)
    coeffs[0] = 1.0
    for i in range(1, max_customers + 1):
        coeffs[i] = coeffs[i - 1] / i
    return coeffs


def multiserver_coefficients(servers: int, max_customers: int) -> np.ndarray:
    """Coefficients for an ``m``-server station with unit-rate servers.

    ``a(i) = 1 / prod_{j<=i} min(j, m)`` — the "limited queue-dependent
    server" of Table 3.6 with multipliers ``min(j, m)``.
    """
    if servers < 1:
        raise ModelError("servers must be >= 1")
    if max_customers < 0:
        raise ModelError("max_customers must be >= 0")
    coeffs = np.empty(max_customers + 1)
    coeffs[0] = 1.0
    for i in range(1, max_customers + 1):
        coeffs[i] = coeffs[i - 1] / min(i, servers)
    return coeffs


def _multiplier_coefficients(multipliers: Sequence[float], max_customers: int) -> np.ndarray:
    """Coefficients for explicit queue-dependent rate multipliers."""
    coeffs = np.empty(max_customers + 1)
    coeffs[0] = 1.0
    for i in range(1, max_customers + 1):
        idx = min(i, len(multipliers)) - 1
        coeffs[i] = coeffs[i - 1] / multipliers[idx]
    return coeffs


def capacity_coefficients(station: Station, max_customers: int) -> np.ndarray:
    """Capacity-function coefficients ``a(0..max_customers)`` of a station."""
    if station.rate_multipliers is not None:
        return _multiplier_coefficients(station.rate_multipliers, max_customers)
    if station.discipline is Discipline.IS:
        return infinite_server_coefficients(max_customers)
    if station.servers == 1:
        return fixed_rate_coefficients(max_customers)
    return multiserver_coefficients(station.servers, max_customers)


def capacity_function_value(
    station: Station, x: float, terms: int = 200, tolerance: float = 1e-14
) -> float:
    """Numerically evaluate ``C(x)`` for a station.

    Closed forms are used when available (fixed rate, IS); otherwise the
    series is summed until terms fall below ``tolerance``.

    Raises
    ------
    ModelError
        If ``x >= 1`` for a station whose series has radius of convergence 1
        (any station whose rate saturates).
    """
    if station.rate_multipliers is None:
        if station.discipline is Discipline.IS:
            return math.exp(x)
        if station.servers == 1:
            if x >= 1.0:
                raise ModelError("C(x)=1/(1-x) diverges for x >= 1")
            return 1.0 / (1.0 - x)

    # General case: the rate eventually saturates at its final multiplier m*,
    # so the tail behaves like a geometric series with ratio x/m*.
    if station.rate_multipliers is not None:
        saturation = station.rate_multipliers[-1]
    else:
        saturation = float(station.servers)
    if x >= saturation:
        raise ModelError(
            f"capacity function diverges: x={x} >= saturated service rate {saturation}"
        )
    total = 1.0
    coeff = 1.0
    for i in range(1, terms + 1):
        coeff *= x / station.rate_multiplier(i)
        total += coeff
        if coeff < tolerance * total:
            break
    return total
