"""Queueing-network data model (thesis Chapter 3 model class).

Public names:

* :class:`~repro.queueing.station.Station`, :class:`~repro.queueing.station.Discipline`
* :class:`~repro.queueing.chain.ClosedChain`, :class:`~repro.queueing.chain.OpenChain`
* :class:`~repro.queueing.network.ClosedNetwork`
* traffic-equation helpers in :mod:`repro.queueing.routing`
* capacity-function helpers in :mod:`repro.queueing.capacity`
"""

from repro.queueing.chain import ClosedChain, OpenChain
from repro.queueing.network import ClosedNetwork
from repro.queueing.routing import (
    closed_chain_visit_ratios,
    cyclic_routing_matrix,
    open_chain_arrival_rates,
    validate_routing_matrix,
)
from repro.queueing.station import Discipline, Station

__all__ = [
    "Station",
    "Discipline",
    "ClosedChain",
    "OpenChain",
    "ClosedNetwork",
    "open_chain_arrival_rates",
    "closed_chain_visit_ratios",
    "cyclic_routing_matrix",
    "validate_routing_matrix",
]
