"""Routing chains (customer classes) for closed multichain networks.

In the thesis model, imposing an end-to-end window ``E_r`` on virtual channel
``r`` closes its open routing chain: customers cycle through the forward-route
link queues, are absorbed at the sink, and the acknowledgement re-enters the
"source queue" whose service time is the reciprocal of the external Poisson
rate ``S_r`` (§3.4, §4.2).  A :class:`ClosedChain` is therefore a *cyclic*
sequence of station visits plus a fixed population (the window).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ModelError

__all__ = ["ClosedChain", "OpenChain"]


@dataclass(frozen=True)
class ClosedChain:
    """One closed routing chain (one flow-controlled traffic class).

    Parameters
    ----------
    name:
        Identifier, unique within a network.
    visits:
        Station names visited in one cycle, in order.  A station may appear
        more than once; each appearance adds one visit per cycle.
    service_times:
        Mean service time (seconds) for this chain at each visit, aligned
        with ``visits``.
    population:
        Number of customers circulating in the chain — the end-to-end window
        size ``E_r``.
    source_station:
        Name of the station modelling the traffic source (the re-entrant
        queue from sink to source).  It must appear in ``visits``.  Delay at
        this station is *excluded* from the network delay used in the power
        metric (thesis eq. 4.19: ``V(r) = Q(r) - source``).  ``None`` means
        every visited station counts toward delay.
    """

    name: str
    visits: Tuple[str, ...]
    service_times: Tuple[float, ...]
    population: int
    source_station: Optional[str] = field(default=None)

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("chain name must be non-empty")
        if len(self.visits) == 0:
            raise ModelError(f"chain {self.name!r}: route must visit at least one station")
        if len(self.service_times) != len(self.visits):
            raise ModelError(
                f"chain {self.name!r}: got {len(self.service_times)} service times "
                f"for {len(self.visits)} visits"
            )
        if any(s <= 0 for s in self.service_times):
            raise ModelError(f"chain {self.name!r}: service times must be positive")
        if self.population < 0:
            raise ModelError(
                f"chain {self.name!r}: population must be >= 0, got {self.population}"
            )
        if self.source_station is not None and self.source_station not in self.visits:
            raise ModelError(
                f"chain {self.name!r}: source station {self.source_station!r} "
                "is not on the route"
            )

    def with_population(self, population: int) -> "ClosedChain":
        """Return a copy of this chain with a different window size."""
        return ClosedChain(
            name=self.name,
            visits=self.visits,
            service_times=self.service_times,
            population=population,
            source_station=self.source_station,
        )

    @property
    def hop_count(self) -> int:
        """Number of forward hops (visits excluding the source station).

        This is Kleinrock's suggested window size and the WINDIM initial
        window (thesis §4.4).
        """
        if self.source_station is None:
            return len(self.visits)
        return sum(1 for v in self.visits if v != self.source_station)

    def demand_by_station(self) -> Dict[str, float]:
        """Total mean service demand per cycle at each visited station.

        Stations visited multiple times accumulate demand.  The demand at a
        fixed-rate station equals ``visit_ratio * mean_service_time`` and is
        the quantity that actually enters product-form solutions.
        """
        demand: Dict[str, float] = {}
        for station, service in zip(self.visits, self.service_times):
            demand[station] = demand.get(station, 0.0) + service
        return demand

    @classmethod
    def from_route(
        cls,
        name: str,
        route: Sequence[str],
        service_times: Sequence[float],
        window: int,
        source_station: Optional[str] = None,
    ) -> "ClosedChain":
        """Build a chain from parallel route/service-time sequences."""
        return cls(
            name=name,
            visits=tuple(route),
            service_times=tuple(float(s) for s in service_times),
            population=window,
            source_station=source_station,
        )


@dataclass(frozen=True)
class OpenChain:
    """One open routing chain, driven by an exogenous Poisson stream.

    Used by the open/mixed-network solvers of :mod:`repro.exact` (Chapter 3);
    the WINDIM networks themselves contain only closed chains.

    Parameters
    ----------
    name:
        Identifier, unique within a network.
    visits / service_times:
        As for :class:`ClosedChain`.
    arrival_rate:
        Exogenous Poisson arrival rate (customers/second).
    """

    name: str
    visits: Tuple[str, ...]
    service_times: Tuple[float, ...]
    arrival_rate: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("chain name must be non-empty")
        if len(self.visits) == 0:
            raise ModelError(f"chain {self.name!r}: route must visit at least one station")
        if len(self.service_times) != len(self.visits):
            raise ModelError(
                f"chain {self.name!r}: got {len(self.service_times)} service times "
                f"for {len(self.visits)} visits"
            )
        if any(s <= 0 for s in self.service_times):
            raise ModelError(f"chain {self.name!r}: service times must be positive")
        if self.arrival_rate <= 0:
            raise ModelError(
                f"chain {self.name!r}: arrival rate must be positive, got {self.arrival_rate}"
            )

    def demand_by_station(self) -> Dict[str, float]:
        """Total mean service demand per passage at each visited station."""
        demand: Dict[str, float] = {}
        for station, service in zip(self.visits, self.service_times):
            demand[station] = demand.get(station, 0.0) + service
        return demand
