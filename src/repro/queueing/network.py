"""Closed multichain queueing-network model.

:class:`ClosedNetwork` is the central model object consumed by every solver
in :mod:`repro.exact` and :mod:`repro.mva`.  It corresponds to the thesis
Chapter 4 model class: ``N`` switching nodes, ``L`` half-duplex links modelled
as FCFS single-server queues, ``R`` classes of messages, each class closed by
an end-to-end window (§4.2 assumptions (a)–(d)).

The model is stored both in object form (stations, chains) and as dense
numpy arrays (per-chain demand matrix, population vector) so numerical code
never needs to touch Python-level structure in inner loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.queueing.chain import ClosedChain
from repro.queueing.station import Discipline, Station, validate_unique_names

__all__ = ["ClosedNetwork"]

_FCFS_SERVICE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class ClosedNetwork:
    """A closed multichain queueing network.

    Construct with :meth:`build` (which validates) rather than directly.

    Attributes
    ----------
    stations:
        All service stations, in index order.
    chains:
        All closed routing chains, in index order.
    demands:
        ``(R, L)`` array; ``demands[r, i]`` is the total mean service demand
        (seconds per chain cycle) of chain ``r`` at station ``i``.  Zero
        where the chain does not visit.
    visit_counts:
        ``(R, L)`` array of visits per cycle.
    populations:
        ``(R,)`` integer array of chain populations (window sizes).
    source_index:
        ``(R,)`` integer array; ``source_index[r]`` is the station index of
        chain ``r``'s source queue, or ``-1`` if the chain declares none.
    """

    stations: Tuple[Station, ...]
    chains: Tuple[ClosedChain, ...]
    demands: np.ndarray
    visit_counts: np.ndarray
    populations: np.ndarray
    source_index: np.ndarray

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        stations: Sequence[Station],
        chains: Sequence[ClosedChain],
        strict_fcfs: bool = True,
    ) -> "ClosedNetwork":
        """Validate and assemble a closed network.

        Parameters
        ----------
        stations:
            The stations; names must be unique.
        chains:
            The closed chains; names must be unique and every visited
            station must exist.
        strict_fcfs:
            When True (default), enforce the product-form requirement that
            all chains visiting an FCFS station use the same per-visit mean
            service time (thesis §3.2.4).  Disable only for deliberately
            non-product-form models solved by approximation or simulation.
        """
        validate_unique_names(stations)
        station_list = tuple(stations)
        index = {s.name: i for i, s in enumerate(station_list)}

        chain_names = set()
        for chain in chains:
            if chain.name in chain_names:
                raise ModelError(f"duplicate chain name {chain.name!r}")
            chain_names.add(chain.name)
            for visited in chain.visits:
                if visited not in index:
                    raise ModelError(
                        f"chain {chain.name!r} visits unknown station {visited!r}"
                    )

        num_chains = len(chains)
        num_stations = len(station_list)
        if num_chains == 0:
            raise ModelError("a closed network needs at least one chain")
        if num_stations == 0:
            raise ModelError("a closed network needs at least one station")

        demands = np.zeros((num_chains, num_stations))
        visit_counts = np.zeros((num_chains, num_stations))
        populations = np.zeros(num_chains, dtype=np.int64)
        source_index = np.full(num_chains, -1, dtype=np.int64)

        for r, chain in enumerate(chains):
            populations[r] = chain.population
            if chain.source_station is not None:
                source_index[r] = index[chain.source_station]
            for station_name, service in zip(chain.visits, chain.service_times):
                i = index[station_name]
                demands[r, i] += service
                visit_counts[r, i] += 1.0

        network = cls(
            stations=station_list,
            chains=tuple(chains),
            demands=demands,
            visit_counts=visit_counts,
            populations=populations,
            source_index=source_index,
        )
        if strict_fcfs:
            network._validate_fcfs_service_times()
        return network

    def _validate_fcfs_service_times(self) -> None:
        """Check the FCFS equal-service-time product-form requirement."""
        for i, station in enumerate(self.stations):
            if station.discipline is not Discipline.FCFS:
                continue
            per_visit: List[Tuple[str, float]] = []
            for chain in self.chains:
                for visited, service in zip(chain.visits, chain.service_times):
                    if visited == station.name:
                        per_visit.append((chain.name, service))
            if len(per_visit) < 2:
                continue
            base = per_visit[0][1]
            for chain_name, service in per_visit[1:]:
                if abs(service - base) > _FCFS_SERVICE_TOLERANCE * max(base, service):
                    raise ModelError(
                        f"FCFS station {station.name!r}: chains "
                        f"{per_visit[0][0]!r} and {chain_name!r} have different "
                        f"mean service times ({base} vs {service}); product form "
                        "requires them to be equal (pass strict_fcfs=False to "
                        "override)"
                    )

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_stations(self) -> int:
        """Number of service stations ``L``."""
        return len(self.stations)

    @property
    def num_chains(self) -> int:
        """Number of closed chains ``R``."""
        return len(self.chains)

    @property
    def station_names(self) -> Tuple[str, ...]:
        """Station names in index order."""
        return tuple(s.name for s in self.stations)

    @property
    def chain_names(self) -> Tuple[str, ...]:
        """Chain names in index order."""
        return tuple(c.name for c in self.chains)

    def station_id(self, name: str) -> int:
        """Index of the station called ``name`` (raises ``KeyError``)."""
        for i, station in enumerate(self.stations):
            if station.name == name:
                return i
        raise KeyError(name)

    def chain_id(self, name: str) -> int:
        """Index of the chain called ``name`` (raises ``KeyError``)."""
        for r, chain in enumerate(self.chains):
            if chain.name == name:
                return r
        raise KeyError(name)

    def visited_stations(self, chain: int) -> np.ndarray:
        """Indices of stations visited by ``chain`` (thesis ``Q(r)``)."""
        return np.flatnonzero(self.visit_counts[chain] > 0)

    def visiting_chains(self, station: int) -> np.ndarray:
        """Indices of chains visiting ``station`` (thesis ``R(i)``)."""
        return np.flatnonzero(self.visit_counts[:, station] > 0)

    def delay_mask(self) -> np.ndarray:
        """``(R, L)`` bool mask of visits counted in the power-metric delay.

        ``True`` where chain ``r`` visits station ``i`` *and* station ``i``
        is not chain ``r``'s source queue — the thesis set ``V(r)``.
        """
        mask = self.visit_counts > 0
        for r in range(self.num_chains):
            if self.source_index[r] >= 0:
                mask[r, self.source_index[r]] = False
        return mask

    def is_fixed_rate(self) -> bool:
        """True when every station is single-server fixed-rate or IS.

        The exact convolution and MVA implementations currently support this
        (large) model subclass, which includes every network in the thesis.
        """
        for station in self.stations:
            if station.is_delay:
                continue
            if station.servers != 1 or station.rate_multipliers is not None:
                return False
        return True

    # ------------------------------------------------------------------
    # derived models
    # ------------------------------------------------------------------
    def with_populations(self, populations: Sequence[int]) -> "ClosedNetwork":
        """Return a copy with new chain populations (window sizes)."""
        if len(populations) != self.num_chains:
            raise ModelError(
                f"expected {self.num_chains} populations, got {len(populations)}"
            )
        new_chains = tuple(
            chain.with_population(int(p)) for chain, p in zip(self.chains, populations)
        )
        return ClosedNetwork(
            stations=self.stations,
            chains=new_chains,
            demands=self.demands,
            visit_counts=self.visit_counts,
            populations=np.asarray([int(p) for p in populations], dtype=np.int64),
            source_index=self.source_index,
        )

    def subnetwork(self, chain: int) -> "ClosedNetwork":
        """Single-chain network consisting of ``chain`` and its stations.

        Used by the thesis heuristic, which repeatedly isolates one chain
        (with inflated service times) into a single-chain problem (§4.2).
        """
        kept = self.chains[chain]
        visited_names = {v for v in kept.visits}
        stations = tuple(s for s in self.stations if s.name in visited_names)
        return ClosedNetwork.build(stations, [kept])

    def describe(self) -> str:
        """Multi-line human-readable summary of the network."""
        lines = [
            f"ClosedNetwork: {self.num_stations} stations, {self.num_chains} chains"
        ]
        for station in self.stations:
            lines.append(
                f"  station {station.name!r}: {station.discipline.value}, "
                f"servers={station.servers}"
            )
        for chain in self.chains:
            route = " -> ".join(chain.visits)
            lines.append(
                f"  chain {chain.name!r}: window={chain.population}, route {route}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # stability-style sanity checks
    # ------------------------------------------------------------------
    def bottleneck_station(self, chain: int) -> int:
        """Station index with the largest demand for ``chain``.

        As the chain population grows without bound the bottleneck queue
        length diverges while the others stay finite (thesis §4.2,
        initialisation rule 1).
        """
        row = self.demands[chain]
        return int(np.argmax(row))

    def total_population(self) -> int:
        """Total number of customers across all chains."""
        return int(self.populations.sum())
