"""Service stations for queueing-network models.

A *station* (thesis §3.2.4) is a queue plus one or more servers plus a queue
discipline.  The separable-network theory (BCMP/thesis §3.3) admits four
work-conserving disciplines, encoded here by :class:`Discipline`:

* ``FCFS`` — first-come first-served, exponential service, a service rate
  common to all classes (possibly queue-length dependent).
* ``PS`` — processor sharing; class-dependent general (rational-Laplace)
  service times allowed.
* ``LCFS_PR`` — last-come first-served preemptive-resume; as PS.
* ``IS`` — infinite server ("delay" station); as PS.

For the WINDIM networks of Chapter 4 every link is an FCFS single-server
queue, but the solvers in :mod:`repro.exact` and :mod:`repro.mva` accept any
of the four disciplines so the library covers the full model class of the
thesis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.errors import ModelError

__all__ = ["Discipline", "Station"]


class Discipline(enum.Enum):
    """Work-conserving queue disciplines with product-form solutions."""

    FCFS = "fcfs"
    PS = "ps"
    LCFS_PR = "lcfs-pr"
    IS = "is"

    @property
    def is_queueing(self) -> bool:
        """True for disciplines where customers actually queue (not IS)."""
        return self is not Discipline.IS

    @property
    def allows_class_dependent_service(self) -> bool:
        """True if per-class mean service times may differ at this station.

        FCFS product-form stations require a single exponential service time
        distribution shared by all classes (thesis §3.2.4); the other three
        disciplines allow class-dependent means.
        """
        return self is not Discipline.FCFS


@dataclass(frozen=True)
class Station:
    """A single service station.

    Parameters
    ----------
    name:
        Human-readable identifier; must be unique within a network.
    discipline:
        Queue discipline (default FCFS, the WINDIM link model).
    servers:
        Number of identical servers (default 1).  Ignored for IS stations,
        which conceptually have infinitely many.
    rate_multipliers:
        Optional queue-length-dependent rate multipliers ``m[j]``: with ``j``
        customers present the station works at ``m[min(j, len(m)) - 1]`` times
        its unit rate.  This is the "limited queue-dependent server" of
        Table 3.6.  When omitted, a multi-server station uses the standard
        ``min(j, servers)`` multiplier.
    """

    name: str
    discipline: Discipline = Discipline.FCFS
    servers: int = 1
    rate_multipliers: Optional[Tuple[float, ...]] = field(default=None)

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("station name must be non-empty")
        if self.servers < 1:
            raise ModelError(f"station {self.name!r}: servers must be >= 1, got {self.servers}")
        if self.rate_multipliers is not None:
            if len(self.rate_multipliers) == 0:
                raise ModelError(f"station {self.name!r}: rate_multipliers must be non-empty")
            if any(m <= 0 for m in self.rate_multipliers):
                raise ModelError(f"station {self.name!r}: rate multipliers must be positive")

    @property
    def is_delay(self) -> bool:
        """True if this is an infinite-server (delay) station."""
        return self.discipline is Discipline.IS

    def rate_multiplier(self, customers: int) -> float:
        """Service-rate multiplier when ``customers`` are present.

        For a fixed-rate single server this is 1 for any positive queue
        length; for an ``m``-server station it is ``min(customers, m)``;
        for IS stations it equals ``customers`` (every customer is served
        concurrently); explicit ``rate_multipliers`` override both.
        """
        if customers < 0:
            raise ValueError(f"customers must be >= 0, got {customers}")
        if customers == 0:
            return 0.0
        if self.rate_multipliers is not None:
            idx = min(customers, len(self.rate_multipliers)) - 1
            return self.rate_multipliers[idx]
        if self.is_delay:
            return float(customers)
        return float(min(customers, self.servers))

    @classmethod
    def fcfs(cls, name: str, servers: int = 1) -> "Station":
        """Convenience constructor for an FCFS station."""
        return cls(name=name, discipline=Discipline.FCFS, servers=servers)

    @classmethod
    def delay(cls, name: str) -> "Station":
        """Convenience constructor for an infinite-server (delay) station."""
        return cls(name=name, discipline=Discipline.IS)


def validate_unique_names(stations: Sequence[Station]) -> None:
    """Raise :class:`ModelError` if any two stations share a name."""
    seen = set()
    for station in stations:
        if station.name in seen:
            raise ModelError(f"duplicate station name {station.name!r}")
        seen.add(station.name)
