"""Statistics collectors for the discrete-event simulator.

Two estimator kinds cover everything the simulator reports:

* :class:`TallyStatistic` — sample means over discrete observations
  (message delays), with batch-means confidence intervals to account for
  autocorrelation in the delay sequence.
* :class:`TimeWeightedStatistic` — time averages of piecewise-constant
  processes (queue lengths, busy servers).

Both support a warm-up reset so transient start-up bias can be discarded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import SimulationError

__all__ = ["TallyStatistic", "TimeWeightedStatistic", "batch_means"]

#: Student-t 97.5% quantiles for small degrees of freedom, then normal.
_T_975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093,
    20: 2.086, 25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980,
}


def _t_quantile(dof: int) -> float:
    if dof <= 0:
        return float("inf")
    keys = sorted(_T_975)
    for key in keys:
        if dof <= key:
            return _T_975[key]
    return 1.96


def batch_means(
    samples: List[float], num_batches: int = 20
) -> Tuple[float, float]:
    """Mean and 95% half-width by the method of batch means.

    Consecutive samples are grouped into ``num_batches`` equal batches;
    the batch averages are treated as (approximately) independent.

    Returns ``(mean, half_width)``; the half-width is ``inf`` when there
    are fewer than two full batches.
    """
    n = len(samples)
    if n == 0:
        return float("nan"), float("inf")
    mean = sum(samples) / n
    batch_size = n // num_batches
    if batch_size < 1:
        return mean, float("inf")
    used = batch_size * num_batches
    means = []
    for b in range(num_batches):
        chunk = samples[b * batch_size : (b + 1) * batch_size]
        means.append(sum(chunk) / batch_size)
    grand = sum(means) / num_batches
    if num_batches < 2:
        return mean, float("inf")
    var = sum((m - grand) ** 2 for m in means) / (num_batches - 1)
    half = _t_quantile(num_batches - 1) * math.sqrt(var / num_batches)
    return mean, half


@dataclass
class TallyStatistic:
    """Sample-mean estimator over discrete observations."""

    keep_samples: bool = True
    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0
    samples: List[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        """Add one observation."""
        self.count += 1
        self.total += value
        self.total_sq += value * value
        if self.keep_samples:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        """Sample mean (``nan`` with no observations)."""
        if self.count == 0:
            return float("nan")
        return self.total / self.count

    @property
    def variance(self) -> float:
        """Unbiased sample variance."""
        if self.count < 2:
            return float("nan")
        return (self.total_sq - self.total**2 / self.count) / (self.count - 1)

    def confidence_interval(self, num_batches: int = 20) -> Tuple[float, float]:
        """``(mean, 95% half-width)`` via batch means (needs kept samples)."""
        if not self.keep_samples:
            raise SimulationError(
                "confidence intervals need keep_samples=True"
            )
        return batch_means(self.samples, num_batches)

    def reset(self) -> None:
        """Discard all observations (warm-up truncation)."""
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.samples.clear()


@dataclass
class TimeWeightedStatistic:
    """Time-average estimator of a piecewise-constant process."""

    current_value: float = 0.0
    last_update: float = 0.0
    weighted_total: float = 0.0
    start_time: float = 0.0

    def update(self, now: float, new_value: float) -> None:
        """The process jumps to ``new_value`` at time ``now``."""
        if now < self.last_update:
            raise SimulationError(
                f"time went backwards: {now} < {self.last_update}"
            )
        self.weighted_total += self.current_value * (now - self.last_update)
        self.current_value = new_value
        self.last_update = now

    def advance(self, now: float) -> None:
        """Accumulate up to ``now`` without changing the value."""
        self.update(now, self.current_value)

    def mean(self, now: float) -> float:
        """Time average over ``[start_time, now]``."""
        elapsed = now - self.start_time
        if elapsed <= 0:
            return self.current_value
        pending = self.current_value * (now - self.last_update)
        return (self.weighted_total + pending) / elapsed

    def reset(self, now: float) -> None:
        """Restart accumulation at ``now`` keeping the current value."""
        self.weighted_total = 0.0
        self.last_update = now
        self.start_time = now
