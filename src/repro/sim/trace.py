"""Event tracing for the simulator.

An optional observer interface: attach a :class:`TraceCollector` (or any
callable) to a :class:`~repro.sim.engine.NetworkSimulator` and receive a
typed :class:`TraceEvent` for every admission, hop, blocking episode,
delivery and acknowledgement.  Used for debugging models, teaching the
flow-control mechanics, and asserting fine-grained behaviour in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["EventKind", "TraceEvent", "TraceCollector"]


class EventKind(enum.Enum):
    """The observable simulator transitions."""

    ADMIT = "admit"          # message passed flow control at its source
    THROTTLE = "throttle"    # message held back at the source host
    HOP = "hop"              # message moved one node forward
    BLOCK = "block"          # channel blocked on downstream buffer space
    UNBLOCK = "unblock"      # blocked channel resumed
    DELIVER = "deliver"      # message handed to the destination host
    ACK = "ack"              # acknowledgement reached the source


@dataclass(frozen=True)
class TraceEvent:
    """One observed transition.

    Attributes
    ----------
    time:
        Simulation clock at the transition.
    kind:
        The transition type.
    class_index:
        Traffic class involved (-1 when not applicable).
    message_id:
        Message identity (-1 for channel-level events).
    place:
        Node or channel-queue name where the event happened.
    """

    time: float
    kind: EventKind
    class_index: int = -1
    message_id: int = -1
    place: str = ""


class TraceCollector:
    """Observer that records events, optionally filtered by kind.

    Parameters
    ----------
    kinds:
        Event kinds to keep (``None`` keeps everything).
    limit:
        Hard cap on stored events (oldest kept); guards long runs.
    """

    def __init__(
        self,
        kinds: Optional[set] = None,
        limit: int = 1_000_000,
    ):
        self.kinds = kinds
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def __call__(self, event: TraceEvent) -> None:
        if self.kinds is not None and event.kind not in self.kinds:
            return
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(event)

    def of_kind(self, kind: EventKind) -> List[TraceEvent]:
        """All recorded events of one kind, in time order."""
        return [e for e in self.events if e.kind == kind]

    def message_history(self, message_id: int) -> List[TraceEvent]:
        """The life of one message, in time order."""
        return [e for e in self.events if e.message_id == message_id]

    def clear(self) -> None:
        """Forget everything recorded so far."""
        self.events.clear()
        self.dropped = 0
