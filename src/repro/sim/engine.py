"""Discrete-event simulator of store-and-forward message switching.

Simulates the thesis network model directly: messages of exponential
length hop node-to-node over FCFS channels (half-duplex channels are a
single server shared by both directions), under any combination of
end-to-end window, local buffer-limit and isarithmic flow control
(:mod:`repro.sim.flowcontrol`).

Two source models are provided:

* ``source_model="closed"`` — each class's source is an exponential server
  of rate ``S_r`` with the class's ``E_r`` messages cycling through it,
  i.e. *exactly* the closed multichain queueing model of §4.2 (the
  "reentrant queue" of Fig. 4.6/4.11).  Simulated and MVA results must
  agree within confidence intervals; the validation tests rely on this.
* ``source_model="poisson"`` — a genuinely open Poisson stream of rate
  ``S_r`` throttled at the source host by flow control, with an unbounded
  host backlog.  This is the operationally realistic scenario used for the
  Fig. 2.1 congestion experiments.

Message lengths are resampled independently at every hop (Kleinrock's
independence assumption), matching the analytic model's per-queue
exponential service times.  Acknowledgements are instantaneous, as in the
closed-chain model.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficClass
from repro.sim.flowcontrol import FlowControlConfig, FlowControlState
from repro.sim.messages import Message
from repro.sim.results import ChannelStats, ClassStats, SimulationResult
from repro.sim.rng import RandomStreams
from repro.sim.stats import TallyStatistic, TimeWeightedStatistic
from repro.sim.trace import EventKind, TraceEvent

__all__ = ["NetworkSimulator", "simulate"]

_ARRIVAL = 0
_DEPARTURE = 1
_SOURCE_DONE = 2
_WARMUP = 3
_END = 4
_ACK = 5


class _Server:
    """One FCFS single-server transmission queue (a channel direction set)."""

    __slots__ = (
        "name",
        "queue",
        "in_service",
        "blocked_on",
        "queue_stat",
        "busy_stat",
    )

    def __init__(self, name: str):
        self.name = name
        self.queue: Deque[Message] = deque()
        self.in_service: Optional[Message] = None
        self.blocked_on: Optional[str] = None
        self.queue_stat = TimeWeightedStatistic()
        self.busy_stat = TimeWeightedStatistic()

    def total_present(self) -> int:
        return len(self.queue) + (1 if self.in_service is not None else 0)


@dataclass
class _HopPlan:
    """Resolved routing for one hop of one class."""

    server: str
    from_node: str
    to_node: str
    mean_service: float


class NetworkSimulator:
    """Event-driven simulator of one flow-controlled network.

    Parameters
    ----------
    topology:
        The physical network.
    classes:
        Traffic classes; paths are validated against the topology.
    flow_control:
        Flow-control configuration.  For ``source_model="closed"`` the
        end-to-end windows are mandatory (they are the circulating
        populations).
    source_model:
        ``"closed"`` (matches the queueing model) or ``"poisson"``.
    seed:
        Root RNG seed.
    ack_delay:
        Mean of the exponential acknowledgement transit time back to the
        source.  The default 0 gives the instantaneous acknowledgements
        of the thesis model; positive values model the return path and
        reduce the effective window rate.
    """

    def __init__(
        self,
        topology: Topology,
        classes: Sequence[TrafficClass],
        flow_control: FlowControlConfig,
        source_model: str = "closed",
        seed: int = 0,
        ack_delay: float = 0.0,
        observer: Optional[callable] = None,
    ):
        if source_model not in ("closed", "poisson"):
            raise SimulationError(
                f"unknown source model {source_model!r}; "
                "expected 'closed' or 'poisson'"
            )
        if not classes:
            raise SimulationError("need at least one traffic class")
        if source_model == "closed" and flow_control.windows is None:
            raise SimulationError(
                "the closed source model requires end-to-end windows"
            )
        if ack_delay < 0:
            raise SimulationError(f"ack_delay must be >= 0, got {ack_delay}")
        self._ack_delay = float(ack_delay)
        self._observer = observer
        self._topology = topology
        self._classes = tuple(classes)
        self._config = flow_control
        self._source_model = source_model
        self._streams = RandomStreams(seed)

        # Resolve every class hop to a server and a mean service time.
        self._servers: Dict[str, _Server] = {}
        self._plans: List[List[_HopPlan]] = []
        for traffic_class in self._classes:
            channels = topology.path_channels(traffic_class.path)
            plan = []
            for (from_node, to_node), channel in zip(
                zip(traffic_class.path, traffic_class.path[1:]), channels
            ):
                queue_name = channel.queue_name(from_node, to_node)
                if queue_name not in self._servers:
                    self._servers[queue_name] = _Server(queue_name)
                plan.append(
                    _HopPlan(
                        server=queue_name,
                        from_node=from_node,
                        to_node=to_node,
                        mean_service=channel.service_time(
                            traffic_class.mean_message_bits
                        ),
                    )
                )
            self._plans.append(plan)

        # Pre-create RNG streams in a deterministic order.
        for k in range(len(self._classes)):
            self._streams.stream(("arrival", k))
        for name in sorted(self._servers):
            self._streams.stream(("service", name))
        for k in range(len(self._classes)):
            self._streams.stream(("ack", k))

        self._state = FlowControlState(
            flow_control, len(self._classes), topology.nodes
        )
        self._backlog: List[Deque[Message]] = [deque() for _ in self._classes]
        # Closed-model source servers: (busy_until_message, queue of idle tokens)
        self._source_busy: List[Optional[Message]] = [None for _ in self._classes]
        self._source_queue: List[Deque[Message]] = [deque() for _ in self._classes]
        self._blocked_waiters: Dict[str, Deque[str]] = {
            node: deque() for node in topology.nodes
        }
        self._node_stats: Dict[str, TimeWeightedStatistic] = {
            node: TimeWeightedStatistic() for node in topology.nodes
        }

        self._heap: List[Tuple[float, int, int, int, str]] = []
        self._seq = itertools.count()
        self._message_ids = itertools.count()
        self._now = 0.0
        self._measuring = False
        self._measure_start = 0.0

        self._class_delay: List[TallyStatistic] = [
            TallyStatistic() for _ in self._classes
        ]
        self._class_total_delay: List[TallyStatistic] = [
            TallyStatistic(keep_samples=False) for _ in self._classes
        ]
        self._class_source_wait: List[TallyStatistic] = [
            TallyStatistic(keep_samples=False) for _ in self._classes
        ]
        self._delivered: List[int] = [0 for _ in self._classes]
        self._offered: List[int] = [0 for _ in self._classes]

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------
    def _schedule(self, time: float, kind: int, index: int = 0, name: str = "") -> None:
        heapq.heappush(self._heap, (time, next(self._seq), kind, index, name))

    def _emit(
        self,
        kind: EventKind,
        class_index: int = -1,
        message_id: int = -1,
        place: str = "",
    ) -> None:
        if self._observer is not None:
            self._observer(
                TraceEvent(
                    time=self._now,
                    kind=kind,
                    class_index=class_index,
                    message_id=message_id,
                    place=place,
                )
            )

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def run(self, duration: float, warmup: float = 0.0) -> SimulationResult:
        """Simulate for ``duration`` seconds, discarding ``warmup``.

        Returns
        -------
        SimulationResult
            Measured throughputs, delays (with confidence intervals),
            channel utilisations and queue lengths.
        """
        if duration <= 0:
            raise SimulationError(f"duration must be positive, got {duration}")
        if not 0 <= warmup < duration:
            raise SimulationError("warmup must lie in [0, duration)")

        self._bootstrap()
        self._schedule(warmup, _WARMUP)
        self._schedule(duration, _END)

        while self._heap:
            time, _seq, kind, index, name = heapq.heappop(self._heap)
            self._now = time
            if kind == _END:
                break
            if kind == _WARMUP:
                self._reset_statistics()
                continue
            if kind == _ARRIVAL:
                self._handle_arrival(index)
            elif kind == _SOURCE_DONE:
                self._handle_source_done(index)
            elif kind == _DEPARTURE:
                self._handle_departure(name)
            elif kind == _ACK:
                self._handle_ack(index)
        return self._collect(duration, warmup)

    def _bootstrap(self) -> None:
        if self._source_model == "poisson":
            for k, traffic_class in enumerate(self._classes):
                delay = self._streams.exponential(
                    ("arrival", k), 1.0 / traffic_class.arrival_rate
                )
                self._schedule(delay, _ARRIVAL, index=k)
        else:
            assert self._config.windows is not None
            for k, window in enumerate(self._config.windows):
                for _ in range(window):
                    message = self._new_message(k, created=0.0)
                    self._source_queue[k].append(message)
                self._try_start_source(k)

    def _new_message(self, class_index: int, created: float) -> Message:
        return Message(
            ident=next(self._message_ids),
            class_index=class_index,
            path=self._classes[class_index].path,
            created=created,
        )

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def _handle_arrival(self, class_index: int) -> None:
        """Poisson arrival at the source host."""
        traffic_class = self._classes[class_index]
        message = self._new_message(class_index, created=self._now)
        if self._measuring:
            self._offered[class_index] += 1
        if self._backlog[class_index] or not self._state.can_admit(
            class_index, traffic_class.source
        ):
            self._backlog[class_index].append(message)
            self._emit(
                EventKind.THROTTLE, class_index, message.ident,
                traffic_class.source,
            )
        else:
            self._admit(message)
        next_delay = self._streams.exponential(
            ("arrival", class_index), 1.0 / traffic_class.arrival_rate
        )
        self._schedule(self._now + next_delay, _ARRIVAL, index=class_index)

    def _try_start_source(self, class_index: int) -> None:
        """Closed model: start the class's source server if idle."""
        if self._source_busy[class_index] is not None:
            return
        if not self._source_queue[class_index]:
            return
        message = self._source_queue[class_index].popleft()
        self._source_busy[class_index] = message
        service = self._streams.exponential(
            ("arrival", class_index),
            1.0 / self._classes[class_index].arrival_rate,
        )
        self._schedule(self._now + service, _SOURCE_DONE, index=class_index)

    def _handle_source_done(self, class_index: int) -> None:
        """Closed model: the source server finished generating a message."""
        message = self._source_busy[class_index]
        if message is None:
            raise SimulationError("source completion with idle source server")
        # The generated message needs all admission conditions — source-node
        # buffer space and, when other mechanisms are combined with the
        # closed model, a free isarithmic permit (the window credit itself
        # was released by the delivery that recycled this message, but a
        # backlogged sibling may have consumed it first).
        self._source_busy[class_index] = None
        if not self._state.can_admit(class_index, self._classes[class_index].source):
            self._backlog[class_index].append(message)
            self._try_start_source(class_index)
            return
        message.created = self._now
        self._admit(message)
        self._try_start_source(class_index)

    def _admit(self, message: Message) -> None:
        """Message passes flow control and enters its first channel queue."""
        class_index = message.class_index
        message.admitted = self._now
        self._state.on_admit(class_index, self._classes[class_index].source)
        self._touch_node(self._classes[class_index].source)
        self._emit(
            EventKind.ADMIT, class_index, message.ident,
            self._classes[class_index].source,
        )
        self._enqueue(message)

    def _try_admit_backlog(self) -> None:
        """Admit throttled messages whose constraints have cleared (FIFO)."""
        for k, traffic_class in enumerate(self._classes):
            while self._backlog[k] and self._state.can_admit(
                k, traffic_class.source
            ):
                message = self._backlog[k].popleft()
                if self._source_model == "closed":
                    message.created = self._now
                self._admit(message)

    # ------------------------------------------------------------------
    # channels
    # ------------------------------------------------------------------
    def _enqueue(self, message: Message) -> None:
        plan = self._plans[message.class_index][message.hop]
        server = self._servers[plan.server]
        server.queue.append(message)
        server.queue_stat.update(self._now, server.total_present())
        self._try_start(server)

    def _try_start(self, server: _Server) -> None:
        if server.in_service is not None or server.blocked_on is not None:
            return
        if not server.queue:
            return
        message = server.queue.popleft()
        server.in_service = message
        server.busy_stat.update(self._now, 1.0)
        plan = self._plans[message.class_index][message.hop]
        service = self._streams.exponential(
            ("service", server.name), plan.mean_service
        )
        self._schedule(self._now + service, _DEPARTURE, name=server.name)

    def _handle_departure(self, server_name: str) -> None:
        server = self._servers[server_name]
        message = server.in_service
        if message is None:
            raise SimulationError(f"departure from idle server {server_name!r}")
        self._complete_transmission(server, message)

    def _complete_transmission(self, server: _Server, message: Message) -> None:
        plan = self._plans[message.class_index][message.hop]
        if message.at_last_hop:
            self._deliver(server, message, plan.from_node)
            return
        next_node = plan.to_node
        if not self._state.node_has_space(next_node):
            # Store-and-forward blocking: the channel holds the message
            # until the downstream node frees a buffer slot (§2.2.2).
            server.blocked_on = next_node
            self._blocked_waiters[next_node].append(server.name)
            self._emit(
                EventKind.BLOCK, message.class_index, message.ident, server.name
            )
            return
        self._advance(server, message, plan.from_node, next_node)

    def _advance(
        self, server: _Server, message: Message, from_node: str, to_node: str
    ) -> None:
        """Move the in-service message one node forward."""
        self._state.on_hop(from_node, to_node)
        self._touch_node(from_node)
        self._touch_node(to_node)
        self._emit(EventKind.HOP, message.class_index, message.ident, to_node)
        message.hop += 1
        server.in_service = None
        server.busy_stat.update(self._now, 0.0)
        server.queue_stat.update(self._now, server.total_present())
        self._enqueue(message)
        self._wake_blocked(from_node)
        self._try_admit_backlog()
        self._try_start(server)

    def _deliver(self, server: _Server, message: Message, last_node: str) -> None:
        class_index = message.class_index
        message.delivered = self._now
        self._state.on_exit(last_node)
        self._touch_node(last_node)
        self._emit(
            EventKind.DELIVER, class_index, message.ident, message.path[-1]
        )
        server.in_service = None
        server.busy_stat.update(self._now, 0.0)
        server.queue_stat.update(self._now, server.total_present())
        if self._measuring:
            self._delivered[class_index] += 1
            self._class_delay[class_index].record(message.network_delay())
            self._class_total_delay[class_index].record(message.total_delay())
            self._class_source_wait[class_index].record(message.source_wait())
        if self._ack_delay > 0:
            transit = self._streams.exponential(("ack", class_index), self._ack_delay)
            self._schedule(self._now + transit, _ACK, index=class_index)
        else:
            self._handle_ack(class_index)
        self._wake_blocked(last_node)
        self._try_admit_backlog()
        self._try_start(server)

    def _handle_ack(self, class_index: int) -> None:
        """The acknowledgement reached the source: recycle the window slot."""
        self._state.on_ack(class_index)
        self._emit(
            EventKind.ACK, class_index, place=self._classes[class_index].source
        )
        if self._source_model == "closed":
            # The slot re-enters through the source server (the reentrant
            # queue of the closed model).
            recycled = self._new_message(class_index, created=self._now)
            self._source_queue[class_index].append(recycled)
            self._try_start_source(class_index)
        self._try_admit_backlog()

    def _wake_blocked(self, node: str) -> None:
        """Space freed at ``node``: resume channels blocked on it (FIFO)."""
        waiters = self._blocked_waiters[node]
        while waiters and self._state.node_has_space(node):
            server = self._servers[waiters.popleft()]
            if server.blocked_on != node or server.in_service is None:
                continue
            server.blocked_on = None
            message = server.in_service
            self._emit(
                EventKind.UNBLOCK, message.class_index, message.ident, server.name
            )
            plan = self._plans[message.class_index][message.hop]
            self._advance(server, message, plan.from_node, plan.to_node)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def _touch_node(self, node: str) -> None:
        self._node_stats[node].update(
            self._now, float(self._state.node_occupancy(node))
        )

    def _reset_statistics(self) -> None:
        self._measuring = True
        self._measure_start = self._now
        for stat in self._class_delay:
            stat.reset()
        for stat in self._class_total_delay:
            stat.reset()
        for stat in self._class_source_wait:
            stat.reset()
        self._delivered = [0 for _ in self._classes]
        self._offered = [0 for _ in self._classes]
        for server in self._servers.values():
            server.queue_stat.advance(self._now)
            server.queue_stat.reset(self._now)
            server.busy_stat.advance(self._now)
            server.busy_stat.reset(self._now)
        for stat in self._node_stats.values():
            stat.advance(self._now)
            stat.reset(self._now)

    def _collect(self, duration: float, warmup: float) -> SimulationResult:
        elapsed = self._now - self._measure_start
        if elapsed <= 0:
            raise SimulationError("no measurement interval elapsed")
        class_stats = []
        for k, traffic_class in enumerate(self._classes):
            mean, half = self._class_delay[k].confidence_interval()
            class_stats.append(
                ClassStats(
                    name=traffic_class.name,
                    delivered=self._delivered[k],
                    offered=self._offered[k],
                    throughput=self._delivered[k] / elapsed,
                    mean_network_delay=self._class_delay[k].mean,
                    delay_half_width=half,
                    mean_total_delay=self._class_total_delay[k].mean,
                    mean_source_wait=self._class_source_wait[k].mean,
                )
            )
        channel_stats = {}
        for name, server in self._servers.items():
            channel_stats[name] = ChannelStats(
                name=name,
                utilization=server.busy_stat.mean(self._now),
                mean_queue_length=server.queue_stat.mean(self._now),
            )
        node_occupancy = {
            node: stat.mean(self._now) for node, stat in self._node_stats.items()
        }
        blocked = tuple(
            sorted(
                name
                for name, server in self._servers.items()
                if server.blocked_on is not None
            )
        )
        return SimulationResult(
            duration=duration,
            warmup=warmup,
            measured_time=elapsed,
            classes=tuple(class_stats),
            channels=channel_stats,
            node_occupancy=node_occupancy,
            source_model=self._source_model,
            blocked_channels=blocked,
        )


def simulate(
    topology: Topology,
    classes: Sequence[TrafficClass],
    flow_control: FlowControlConfig,
    duration: float = 2_000.0,
    warmup: float = 200.0,
    source_model: str = "closed",
    seed: int = 0,
    ack_delay: float = 0.0,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`NetworkSimulator`."""
    simulator = NetworkSimulator(
        topology,
        classes,
        flow_control,
        source_model=source_model,
        seed=seed,
        ack_delay=ack_delay,
    )
    return simulator.run(duration, warmup)
