"""Result records for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["ClassStats", "ChannelStats", "SimulationResult"]


@dataclass(frozen=True)
class ClassStats:
    """Measured per-class statistics.

    Attributes
    ----------
    delivered / offered:
        Messages delivered / generated during the measurement interval
        (``offered`` is only meaningful for the Poisson source model).
    throughput:
        Delivered messages per second.
    mean_network_delay:
        Mean admission-to-delivery time (the thesis network delay), with a
        95% batch-means half-width in ``delay_half_width``.
    mean_total_delay:
        Mean creation-to-delivery time including source throttling
        (Poisson model only; equals the network delay for closed sources).
    mean_source_wait:
        Mean throttling wait at the source host.
    """

    name: str
    delivered: int
    offered: int
    throughput: float
    mean_network_delay: float
    delay_half_width: float
    mean_total_delay: float
    mean_source_wait: float


@dataclass(frozen=True)
class ChannelStats:
    """Measured per-channel-queue statistics."""

    name: str
    utilization: float
    mean_queue_length: float


@dataclass(frozen=True)
class SimulationResult:
    """Everything measured by one simulation run."""

    duration: float
    warmup: float
    measured_time: float
    classes: Tuple[ClassStats, ...]
    channels: Dict[str, ChannelStats]
    node_occupancy: Dict[str, float]
    source_model: str
    #: Channels still blocked on downstream buffer space when the run
    #: ended.  A non-empty tuple together with near-zero throughput is the
    #: §2.1 store-and-forward deadlock signature.
    blocked_channels: Tuple[str, ...] = ()

    @property
    def network_throughput(self) -> float:
        """Total delivered messages per second."""
        return sum(c.throughput for c in self.classes)

    @property
    def mean_network_delay(self) -> float:
        """Throughput-weighted mean network delay (matches the MVA metric)."""
        total = self.network_throughput
        if total <= 0:
            return float("inf")
        weighted = sum(
            c.throughput * c.mean_network_delay
            for c in self.classes
            if c.delivered > 0
        )
        return weighted / total

    @property
    def power(self) -> float:
        """Measured network power ``lambda / T``."""
        delay = self.mean_network_delay
        if delay <= 0 or delay == float("inf"):
            return 0.0
        return self.network_throughput / delay

    @property
    def appears_deadlocked(self) -> bool:
        """Heuristic deadlock flag: blocked channels and (near-)zero flow.

        A transiently blocked channel at the sampling instant is normal;
        blocked channels *with no deliveries at all* during measurement is
        the congestion-collapse end state of Fig. 2.1.
        """
        return bool(self.blocked_channels) and self.network_throughput == 0.0

    def class_by_name(self, name: str) -> ClassStats:
        """Look a class's statistics up by name."""
        for stats in self.classes:
            if stats.name == name:
                return stats
        raise KeyError(name)

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"simulation ({self.source_model} sources, "
            f"{self.measured_time:.0f}s measured after {self.warmup:.0f}s warmup)"
        ]
        for stats in self.classes:
            lines.append(
                f"  {stats.name}: throughput {stats.throughput:.3f} msg/s, "
                f"network delay {stats.mean_network_delay * 1e3:.2f} "
                f"± {stats.delay_half_width * 1e3:.2f} ms "
                f"({stats.delivered} delivered)"
            )
        lines.append(
            f"  network throughput = {self.network_throughput:.3f} msg/s"
        )
        lines.append(
            f"  avg network delay  = {self.mean_network_delay * 1e3:.2f} ms"
        )
        lines.append(f"  power              = {self.power:.2f}")
        return "\n".join(lines)
