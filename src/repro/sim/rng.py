"""Random-number streams for the simulator.

One independent numpy ``Generator`` per purpose (arrivals of each class,
service times of each channel), spawned from a single root seed.  Separate
streams make common-random-number comparisons between flow-control
configurations meaningful: changing one policy does not perturb the other
streams' draws.
"""

from __future__ import annotations

from typing import Dict, Hashable

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """Lazily spawned, name-keyed independent random streams.

    Parameters
    ----------
    seed:
        Root seed; equal seeds give identical stream families.
    """

    def __init__(self, seed: int = 0):
        self._root = np.random.SeedSequence(seed)
        self._streams: Dict[Hashable, np.random.Generator] = {}
        self._counter = 0

    def stream(self, key: Hashable) -> np.random.Generator:
        """The generator dedicated to ``key`` (created on first use).

        Streams are keyed deterministically by *order of first request*
        within a run; simulators request all streams up front in a fixed
        order so equal seeds are truly reproducible.
        """
        if key not in self._streams:
            child = self._root.spawn(1)[0]
            self._streams[key] = np.random.default_rng(child)
            self._counter += 1
        return self._streams[key]

    def exponential(self, key: Hashable, mean: float) -> float:
        """One exponential draw with the given mean from stream ``key``."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return float(self.stream(key).exponential(mean))
