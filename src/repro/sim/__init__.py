"""Discrete-event simulation of store-and-forward networks (Chapter 2).

* :class:`~repro.sim.engine.NetworkSimulator` /
  :func:`~repro.sim.engine.simulate` — the simulator.
* :class:`~repro.sim.flowcontrol.FlowControlConfig` — end-to-end windows,
  local buffer limits, isarithmic permits, in any combination.
* :class:`~repro.sim.results.SimulationResult` — measured statistics.
"""

from repro.sim.engine import NetworkSimulator, simulate
from repro.sim.flowcontrol import FlowControlConfig, FlowControlState
from repro.sim.messages import Message
from repro.sim.results import ChannelStats, ClassStats, SimulationResult
from repro.sim.rng import RandomStreams
from repro.sim.stats import TallyStatistic, TimeWeightedStatistic, batch_means
from repro.sim.trace import EventKind, TraceCollector, TraceEvent

__all__ = [
    "NetworkSimulator",
    "simulate",
    "FlowControlConfig",
    "FlowControlState",
    "Message",
    "SimulationResult",
    "ClassStats",
    "ChannelStats",
    "RandomStreams",
    "TallyStatistic",
    "TimeWeightedStatistic",
    "batch_means",
    "EventKind",
    "TraceCollector",
    "TraceEvent",
]
