"""Flow-control mechanisms for the simulator (thesis Chapter 2).

Three mechanisms, freely combinable (§2.3 argues all three matter):

* **End-to-end windows** (§2.2.1) — at most ``E_r`` unacknowledged
  messages per class; arrivals beyond that wait at the source host.
* **Local buffer limits** (§2.2.2) — at most ``K_i`` messages stored at
  switching node ``i``; upstream channels block until space frees.
* **Isarithmic permits** (§2.2.3) — at most ``I`` messages in the whole
  subnet; a message entering must acquire a permit, released on delivery.

:class:`FlowControlConfig` is the immutable user-facing description;
:class:`FlowControlState` is the engine's mutable counter set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import SimulationError

__all__ = ["FlowControlConfig", "FlowControlState"]


@dataclass(frozen=True)
class FlowControlConfig:
    """Which flow controls are active, and their limits.

    Parameters
    ----------
    windows:
        Per-class end-to-end windows ``E_r``; ``None`` disables end-to-end
        control entirely (an uncontrolled network — the congestion-collapse
        demonstration of Fig. 2.1).
    node_buffer_limits:
        Either a single limit applied to every switching node, a mapping
        from node name to limit, or ``None`` for unlimited buffers.
        A message in transit occupies one buffer slot at its current node.
    isarithmic_permits:
        Total messages allowed in the subnet, or ``None`` to disable
        global control.
    """

    windows: Optional[Tuple[int, ...]] = None
    node_buffer_limits: Optional[Union[int, Mapping[str, int]]] = None
    isarithmic_permits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.windows is not None:
            if any(w < 1 for w in self.windows):
                raise SimulationError("end-to-end windows must be >= 1")
        if isinstance(self.node_buffer_limits, int):
            if self.node_buffer_limits < 1:
                raise SimulationError("node buffer limits must be >= 1")
        elif self.node_buffer_limits is not None:
            for node, limit in self.node_buffer_limits.items():
                if limit < 1:
                    raise SimulationError(
                        f"node {node!r}: buffer limit must be >= 1, got {limit}"
                    )
        if self.isarithmic_permits is not None and self.isarithmic_permits < 1:
            raise SimulationError("isarithmic permit count must be >= 1")

    @classmethod
    def end_to_end(cls, windows: Sequence[int]) -> "FlowControlConfig":
        """Pure end-to-end window control (the WINDIM setting)."""
        return cls(windows=tuple(int(w) for w in windows))

    @classmethod
    def uncontrolled(cls) -> "FlowControlConfig":
        """No flow control at all."""
        return cls()

    def node_limit(self, node: str) -> Optional[int]:
        """Buffer limit at ``node`` (``None`` = unlimited)."""
        if self.node_buffer_limits is None:
            return None
        if isinstance(self.node_buffer_limits, int):
            return self.node_buffer_limits
        return self.node_buffer_limits.get(node)


class FlowControlState:
    """Mutable flow-control counters for one simulation run.

    The engine calls the hooks below at admission, node transit and
    delivery; the state answers pure feasibility queries.
    """

    def __init__(self, config: FlowControlConfig, num_classes: int, nodes: Sequence[str]):
        if config.windows is not None and len(config.windows) != num_classes:
            raise SimulationError(
                f"got {len(config.windows)} windows for {num_classes} classes"
            )
        self._config = config
        self._credits: Optional[list] = (
            list(config.windows) if config.windows is not None else None
        )
        self._permits = config.isarithmic_permits
        self._occupancy: Dict[str, int] = {node: 0 for node in nodes}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def window_open(self, class_index: int) -> bool:
        """True when class may admit another message (credit available)."""
        if self._credits is None:
            return True
        return self._credits[class_index] > 0

    def permit_available(self) -> bool:
        """True when the isarithmic pool has a free permit."""
        return self._permits is None or self._permits > 0

    def node_has_space(self, node: str) -> bool:
        """True when ``node`` can store one more message."""
        limit = self._config.node_limit(node)
        if limit is None:
            return True
        return self._occupancy[node] < limit

    def can_admit(self, class_index: int, source_node: str) -> bool:
        """All admission conditions at once."""
        return (
            self.window_open(class_index)
            and self.permit_available()
            and self.node_has_space(source_node)
        )

    def node_occupancy(self, node: str) -> int:
        """Messages currently stored at ``node``."""
        return self._occupancy[node]

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------
    def on_admit(self, class_index: int, source_node: str) -> None:
        """A message entered the network at ``source_node``."""
        if self._credits is not None:
            if self._credits[class_index] <= 0:
                raise SimulationError(
                    f"admission without window credit for class {class_index}"
                )
            self._credits[class_index] -= 1
        if self._permits is not None:
            if self._permits <= 0:
                raise SimulationError("admission without an isarithmic permit")
            self._permits -= 1
        self._enter_node(source_node)

    def on_hop(self, from_node: str, to_node: str) -> None:
        """A message moved between switching nodes."""
        self._enter_node(to_node)
        self._leave_node(from_node)

    def on_deliver(self, class_index: int, last_node: str) -> None:
        """A message left the network with an instantaneous acknowledgement.

        Equivalent to :meth:`on_exit` immediately followed by
        :meth:`on_ack`; simulations with acknowledgement delay call the
        two halves separately.
        """
        self.on_exit(last_node)
        self.on_ack(class_index)

    def on_exit(self, last_node: str) -> None:
        """The delivered message freed its buffer slot at ``last_node``."""
        self._leave_node(last_node)

    def on_ack(self, class_index: int) -> None:
        """The acknowledgement reached the source: release credit/permit."""
        if self._credits is not None:
            self._credits[class_index] += 1
        if self._permits is not None:
            self._permits += 1

    def _enter_node(self, node: str) -> None:
        self._occupancy[node] += 1

    def _leave_node(self, node: str) -> None:
        if self._occupancy[node] <= 0:
            raise SimulationError(f"occupancy underflow at node {node!r}")
        self._occupancy[node] -= 1
