"""Message records flowing through the simulated network."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["Message"]


@dataclass
class Message:
    """One store-and-forward message.

    Timestamps trace the message's life:

    * ``created`` — Poisson arrival at the source host.
    * ``admitted`` — passed flow control and entered the first channel
      queue (``created == admitted`` when admission was immediate; the
      difference is the source-throttling wait).
    * ``delivered`` — handed to the destination host.

    ``hop`` indexes the class path: the message currently waits for / is in
    transmission over the channel from ``path[hop]`` to ``path[hop + 1]``.
    """

    ident: int
    class_index: int
    path: Tuple[str, ...]
    created: float
    admitted: Optional[float] = None
    delivered: Optional[float] = None
    hop: int = 0

    @property
    def current_node(self) -> str:
        """Node the message currently resides at."""
        return self.path[self.hop]

    @property
    def next_node(self) -> str:
        """Node the message is heading to on its current hop."""
        return self.path[self.hop + 1]

    @property
    def at_last_hop(self) -> bool:
        """True while traversing the final channel of the path."""
        return self.hop == len(self.path) - 2

    def network_delay(self) -> float:
        """Admission-to-delivery time (the thesis network delay)."""
        if self.admitted is None or self.delivered is None:
            raise ValueError("message has not completed its journey")
        return self.delivered - self.admitted

    def total_delay(self) -> float:
        """Creation-to-delivery time, including source throttling."""
        if self.delivered is None:
            raise ValueError("message has not been delivered")
        return self.delivered - self.created

    def source_wait(self) -> float:
        """Time spent throttled at the source host."""
        if self.admitted is None:
            raise ValueError("message has not been admitted")
        return self.admitted - self.created
