"""Fault-plan DSL: declarative, seeded, replayable failure scenarios.

A :class:`FaultPlan` names a set of :class:`FaultRule` triggers — *which*
instrumented site misbehaves, on *which* occurrence, *how* — plus the
runtime configuration (pool mode, workers, store/checkpoint usage) the
scenario should run under.  Plans serialise to JSON so they cross the
``multiprocessing`` spawn boundary through an environment variable and so
the chaos battery is a table of data, not a pile of monkeypatches.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.errors import SearchError

__all__ = [
    "ACTIONS",
    "FaultPlan",
    "FaultRule",
    "SITES",
    "seeded_occurrence",
]

#: Instrumented hook points threaded through the runtime.
SITES = (
    "pool.worker.task",  # persistent/per-batch worker, before solving a task
    "store.record",  # evaluation-store append of one record line
    "store.load",  # evaluation-store read of the on-disk lines
    "checkpoint.write",  # atomic checkpoint save
    "clock",  # monotonic clock consulted by SearchBudget
)

#: What a rule may do when it fires.
ACTIONS = ("crash", "hang", "delay", "error", "corrupt", "skew")

#: Which actions make sense at which site — validated at construction so a
#: typo in a plan fails loudly instead of silently never firing.
_SITE_ACTIONS = {
    "pool.worker.task": ("crash", "hang", "delay"),
    "store.record": ("error", "delay", "corrupt"),
    "store.load": ("error", "delay"),
    "checkpoint.write": ("error", "delay", "corrupt"),
    "clock": ("skew",),
}


@dataclass(frozen=True)
class FaultRule:
    """One trigger: ``site`` misbehaves via ``action`` on a window of hits.

    ``occurrence`` is 1-based: the rule arms on the ``occurrence``-th time
    the site fires and stays armed for ``count`` consecutive hits.  The
    optional ``worker`` index restricts pool rules to one worker.
    ``seconds`` parameterises hang/delay/skew; ``exit_code`` the crash.
    """

    site: str
    action: str
    occurrence: int = 1
    count: int = 1
    worker: Optional[int] = None
    seconds: float = 0.0
    exit_code: int = 32

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise SearchError(
                f"unknown fault site {self.site!r}; expected one of {SITES}"
            )
        if self.action not in _SITE_ACTIONS[self.site]:
            raise SearchError(
                f"action {self.action!r} is not valid at site {self.site!r}"
                f" (valid: {_SITE_ACTIONS[self.site]})"
            )
        if self.occurrence < 1 or self.count < 1:
            raise SearchError("occurrence and count must be >= 1")

    def matches(self, occurrence: int, worker: Optional[int] = None) -> bool:
        """True when this rule covers the given site hit."""
        if self.worker is not None and worker != self.worker:
            return False
        return self.occurrence <= occurrence < self.occurrence + self.count

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "site": self.site,
            "action": self.action,
            "occurrence": self.occurrence,
            "count": self.count,
            "seconds": self.seconds,
            "exit_code": self.exit_code,
        }
        if self.worker is not None:
            payload["worker"] = self.worker
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "FaultRule":
        if not isinstance(payload, dict):
            raise SearchError("fault rule payload is not an object")
        try:
            return cls(
                site=str(payload["site"]),
                action=str(payload["action"]),
                occurrence=int(payload.get("occurrence", 1)),
                count=int(payload.get("count", 1)),
                worker=(
                    int(payload["worker"])
                    if payload.get("worker") is not None
                    else None
                ),
                seconds=float(payload.get("seconds", 0.0)),
                exit_code=int(payload.get("exit_code", 32)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SearchError(f"malformed fault rule: {error}") from error


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded failure scenario plus the runtime it targets.

    ``pool`` / ``workers`` / ``store`` / ``checkpoint`` describe the run
    configuration the battery should drive; ``env`` carries extra
    environment overrides (e.g. ``REPRO_TASK_DEADLINE``) as a tuple of
    pairs so the plan stays hashable.  ``runs`` > 1 makes the battery
    re-run the same scenario (resuming from the store/checkpoint) to
    exercise recovery-on-reload paths.  ``expect`` is the survival
    criterion: ``"optimal"`` demands the fault-free optimum, ``"degraded"``
    accepts a structured degraded result.
    """

    name: str
    description: str = ""
    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()
    pool: Optional[str] = None  # None = serial, else persistent | per-batch
    workers: int = 2
    store: bool = False
    checkpoint: bool = False
    runs: int = 1
    env: Tuple[Tuple[str, str], ...] = field(default=())
    expect: str = "optimal"
    max_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.expect not in ("optimal", "degraded"):
            raise SearchError("expect must be 'optimal' or 'degraded'")
        if self.pool not in (None, "persistent", "per-batch"):
            raise SearchError(f"unknown pool mode {self.pool!r}")
        if self.runs < 1:
            raise SearchError("runs must be >= 1")

    def env_dict(self) -> Dict[str, str]:
        return dict(self.env)

    def with_rules(self, *rules: FaultRule) -> "FaultPlan":
        return replace(self, rules=self.rules + tuple(rules))

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "description": self.description,
                "seed": self.seed,
                "rules": [rule.to_json() for rule in self.rules],
                "pool": self.pool,
                "workers": self.workers,
                "store": self.store,
                "checkpoint": self.checkpoint,
                "runs": self.runs,
                "env": list(list(pair) for pair in self.env),
                "expect": self.expect,
                "max_seconds": self.max_seconds,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SearchError(f"fault plan is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise SearchError("fault plan payload is not an object")
        rules = payload.get("rules", [])
        if not isinstance(rules, list):
            raise SearchError("fault plan rules must be a list")
        env = payload.get("env", [])
        try:
            return cls(
                name=str(payload["name"]),
                description=str(payload.get("description", "")),
                seed=int(payload.get("seed", 0)),
                rules=tuple(FaultRule.from_json(rule) for rule in rules),
                pool=(
                    str(payload["pool"])
                    if payload.get("pool") is not None
                    else None
                ),
                workers=int(payload.get("workers", 2)),
                store=bool(payload.get("store", False)),
                checkpoint=bool(payload.get("checkpoint", False)),
                runs=int(payload.get("runs", 1)),
                env=tuple(
                    (str(k), str(v)) for k, v in env
                ),
                expect=str(payload.get("expect", "optimal")),
                max_seconds=(
                    float(payload["max_seconds"])
                    if payload.get("max_seconds") is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SearchError(f"malformed fault plan: {error}") from error


def seeded_occurrence(seed: int, site: str, low: int = 1, high: int = 8) -> int:
    """Deterministically pick which occurrence of ``site`` a rule targets.

    The same (seed, site) pair always lands on the same occurrence, so a
    plan built from a seed is fully replayable while still spreading its
    triggers across the run instead of always hitting the first call.
    """
    if low < 1 or high < low:
        raise SearchError("seeded_occurrence needs 1 <= low <= high")
    digest = hashlib.sha256(f"{seed}:{site}".encode("utf-8")).digest()
    span = high - low + 1
    return low + int.from_bytes(digest[:4], "big") % span
