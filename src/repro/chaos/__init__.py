"""Deterministic, seeded fault injection for the evaluation runtime.

Three layers:

- :mod:`repro.chaos.plan` — the :class:`FaultPlan`/:class:`FaultRule`
  DSL: which instrumented site misbehaves, on which occurrence, how.
- :mod:`repro.chaos.hooks` — the runtime side: arm a plan with
  :func:`inject`, fire sites with :func:`perform`/:func:`fire`, share
  bounded-count rules across processes via fuse files.
- :mod:`repro.chaos.battery` — named builtin plans plus the harness that
  runs them against a fixture network and scores survival
  (``windim chaos`` in the CLI).

With no plan armed every hook is a near-free no-op, so the instrumented
sites stay in the production hot path permanently.
"""

from repro.chaos.clock import monotonic
from repro.chaos.hooks import (
    ENV_FUSES,
    ENV_PLAN,
    FaultAction,
    FaultInjector,
    InjectedFault,
    WorkerChaos,
    active,
    fire,
    inject,
    perform,
    worker_chaos,
)
from repro.chaos.plan import ACTIONS, SITES, FaultPlan, FaultRule, seeded_occurrence

__all__ = [
    "ACTIONS",
    "ENV_FUSES",
    "ENV_PLAN",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "PlanOutcome",
    "SITES",
    "SurvivalReport",
    "WorkerChaos",
    "active",
    "builtin_plans",
    "fire",
    "inject",
    "monotonic",
    "perform",
    "run_battery",
    "run_plan",
    "seeded_occurrence",
    "worker_chaos",
]

_BATTERY_NAMES = {
    "PlanOutcome",
    "SurvivalReport",
    "builtin_plans",
    "run_battery",
    "run_plan",
}


def __getattr__(name):
    # The battery imports repro.core.windim, which (via SearchBudget)
    # reaches back into repro.chaos.clock — load it lazily to keep the
    # low-level hooks importable from anywhere in the runtime.
    if name in _BATTERY_NAMES:
        from repro.chaos import battery

        return getattr(battery, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
