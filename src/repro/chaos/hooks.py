"""Runtime fault-injection hooks: arm a plan, fire sites, burn fuses.

The production code calls :func:`perform`/:func:`fire` at each
instrumented site.  With no plan armed those are near-free no-ops (one
module-global ``is None`` check), so the hooks can stay compiled into the
hot path permanently.  :func:`inject` arms a plan for the current process
*and* stages it into the environment so spawned pool workers and
``ProcessPoolExecutor`` children observe the same schedule.

Occurrence counting is per-process, but "fire at most ``count`` times
globally" rules must hold across the whole worker fleet — a crash rule
with ``count=1`` must not kill every worker that happens to reach the
same local occurrence.  That cross-process once-only guarantee is a
directory of *fuse files* created with ``O_CREAT | O_EXCL``: the first
process to burn the fuse wins, everyone else sees it spent.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import tempfile
import time
from typing import Dict, Iterator, NamedTuple, Optional

from repro.chaos.plan import FaultPlan, FaultRule
from repro.errors import SearchError

__all__ = [
    "ENV_FUSES",
    "ENV_PLAN",
    "FaultAction",
    "FaultInjector",
    "InjectedFault",
    "WorkerChaos",
    "active",
    "fire",
    "inject",
    "perform",
    "worker_chaos",
]

ENV_PLAN = "REPRO_CHAOS_PLAN"
ENV_FUSES = "REPRO_CHAOS_FUSES"


class InjectedFault(OSError):
    """The error raised by ``action="error"`` rules.

    Subclasses :class:`OSError` so the production retry paths treat an
    injected IO failure exactly like a real one.
    """


class FaultAction(NamedTuple):
    """A fired rule, handed back to the instrumented site."""

    action: str
    seconds: float
    rule_index: int
    exit_code: int


class FaultInjector:
    """Per-process view of an armed :class:`FaultPlan`.

    Tracks per-site occurrence counts locally and consults the shared
    fuse directory before letting a rule fire, so bounded-count rules
    hold fleet-wide.
    """

    def __init__(self, plan: FaultPlan, fuse_dir: Optional[str] = None):
        self.plan = plan
        self.fuse_dir = fuse_dir
        self._counts: Dict[str, int] = {}

    def _bump(self, site: str) -> int:
        occurrence = self._counts.get(site, 0) + 1
        self._counts[site] = occurrence
        return occurrence

    def _burn_fuse(self, rule_index: int, count: int) -> bool:
        """Claim one of the rule's ``count`` fuses; False when all spent."""
        if self.fuse_dir is None:
            return True  # no shared ledger: local counting is authoritative
        for slot in range(count):
            path = os.path.join(self.fuse_dir, f"rule{rule_index}.{slot}")
            try:
                handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return True  # fuse dir vanished mid-run: fail open
            os.close(handle)
            return True
        return False

    def fire(
        self, site: str, worker: Optional[int] = None
    ) -> Optional[FaultAction]:
        """Record a hit on ``site``; return the armed action, if any."""
        occurrence = self._bump(site)
        for index, rule in enumerate(self.plan.rules):
            if rule.site != site:
                continue
            if not rule.matches(occurrence, worker):
                continue
            if not self._burn_fuse(index, rule.count):
                continue
            return FaultAction(
                rule.action, rule.seconds, index, rule.exit_code
            )
        return None

    def clock_skew(self) -> float:
        """Cumulative injected clock skew, in seconds.

        Unlike the one-shot sites, skew *persists*: once the clock has
        been consulted ``occurrence`` times, every later reading carries
        the rule's offset.  ``count`` is ignored for skew rules.
        """
        occurrence = self._bump("clock")
        skew = 0.0
        for rule in self.plan.rules:
            if rule.site == "clock" and occurrence >= rule.occurrence:
                skew += rule.seconds
        return skew


_ACTIVE: Optional[FaultInjector] = None


def active() -> Optional[FaultInjector]:
    """The injector armed in this process, or None."""
    global _ACTIVE
    if _ACTIVE is None:
        text = os.environ.get(ENV_PLAN)
        if text:
            # A spawned child inherits the plan through the environment;
            # arm it lazily on first consultation.
            _ACTIVE = FaultInjector(
                FaultPlan.from_json(text), os.environ.get(ENV_FUSES)
            )
    return _ACTIVE


def fire(site: str, worker: Optional[int] = None) -> Optional[FaultAction]:
    """Fire ``site`` against the active plan; None when no plan is armed."""
    injector = active()
    if injector is None:
        return None
    return injector.fire(site, worker)


def perform(site: str) -> Optional[FaultAction]:
    """Fire ``site`` and carry out delay/error actions in-line.

    ``delay`` sleeps here and returns the action; ``error`` raises
    :class:`InjectedFault`.  Other actions (``corrupt``) are returned for
    the caller to apply, since only the call site knows what bytes to
    mangle.
    """
    action = fire(site)
    if action is None:
        return None
    if action.action == "delay":
        time.sleep(action.seconds)
        return action
    if action.action == "error":
        raise InjectedFault(
            f"injected fault at {site} (rule {action.rule_index})"
        )
    return action


@contextlib.contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Arm ``plan`` for this process tree for the duration of the block.

    Stages the plan JSON, a fresh fuse directory, and the plan's extra
    ``env`` overrides into ``os.environ`` so spawned children observe the
    same schedule; everything is restored (and the fuse directory removed)
    on exit.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise SearchError("a fault plan is already armed in this process")
    fuse_dir = tempfile.mkdtemp(prefix="repro-chaos-fuses-")
    staged = {ENV_PLAN: plan.to_json(), ENV_FUSES: fuse_dir}
    staged.update(plan.env_dict())
    saved = {key: os.environ.get(key) for key in staged}
    os.environ.update(staged)
    injector = FaultInjector(plan, fuse_dir)
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = None
        for key, previous in saved.items():
            if previous is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = previous
        shutil.rmtree(fuse_dir, ignore_errors=True)


class WorkerChaos:
    """Worker-side handle for ``pool.worker.task`` rules.

    Instantiated inside a pool worker (or executor child) from the
    environment-staged plan; :meth:`on_task` is consulted once per
    dequeued task and carries out crash/hang/delay actions.
    """

    def __init__(self, injector: FaultInjector, worker: Optional[int] = None):
        self._injector = injector
        self._worker = worker

    def on_task(self) -> None:
        action = self._injector.fire("pool.worker.task", self._worker)
        if action is None:
            return
        if action.action == "crash":
            # Simulate a segfault/OOM kill: die without cleanup, without
            # flushing queues, without running atexit handlers.
            os._exit(action.exit_code)
        if action.action in ("hang", "delay"):
            time.sleep(action.seconds)


def worker_chaos(worker: Optional[int] = None) -> Optional[WorkerChaos]:
    """Build the worker-side chaos handle from the environment, if armed.

    Returns None when no plan is staged or the plan has no worker rules,
    so fault-free workers pay exactly one env lookup at startup.
    """
    injector = active()
    if injector is None:
        return None
    if not any(r.site == "pool.worker.task" for r in injector.plan.rules):
        return None
    return WorkerChaos(injector, worker)
