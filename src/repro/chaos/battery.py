"""The chaos battery: named fault plans, survival runs, and the report.

Each builtin :class:`~repro.chaos.plan.FaultPlan` drives one WINDIM run
(or several, for reload/resume scenarios) under :func:`~repro.chaos.
hooks.inject`, then grades the outcome against a fault-free serial
oracle computed once per battery:

``optimal``
    The run finished cleanly with the oracle's window vector and no
    degradation — the fault was absorbed invisibly (retries, requeues,
    respawns).
``recovered``
    The run still found the oracle's exact optimum, but had to step down
    the degradation ladder (or quarantine data) to get there.
``degraded``
    The run terminated with a structured best-so-far result (budget
    exhausted under clock skew, different vector after data loss) —
    survival without the optimum.
``failed``
    The run raised, hung past its deadline, or silently lost data.

A plan *survives* when its outcome meets its ``expect`` field:
``expect="optimal"`` accepts optimal/recovered, ``expect="degraded"``
accepts anything but failed.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.chaos.hooks import inject
from repro.chaos.plan import FaultPlan, FaultRule
from repro.queueing.network import ClosedNetwork

__all__ = [
    "PlanOutcome",
    "SurvivalReport",
    "builtin_plans",
    "run_battery",
    "run_plan",
]


def builtin_plans() -> Dict[str, FaultPlan]:
    """The named fault-plan battery (insertion order = run order)."""
    plans = [
        FaultPlan(
            name="crash-early-persistent",
            description="one worker segfaults on its first task",
            pool="persistent",
            rules=(FaultRule("pool.worker.task", "crash", occurrence=1),),
        ),
        FaultPlan(
            name="crash-storm-persistent",
            description="six crashes against a respawn budget of three",
            pool="persistent",
            rules=(
                FaultRule("pool.worker.task", "crash", occurrence=1, count=6),
            ),
            env=(("REPRO_MAX_RESPAWNS", "3"),),
        ),
        FaultPlan(
            name="poison-task-persistent",
            description="repeated crashes exhaust the requeue budget",
            pool="persistent",
            rules=(
                FaultRule("pool.worker.task", "crash", occurrence=2, count=4),
            ),
            env=(("REPRO_MAX_REQUEUES", "1"),),
        ),
        FaultPlan(
            name="hang-persistent",
            description="a worker wedges; the watchdog must kill and requeue",
            pool="persistent",
            rules=(
                FaultRule(
                    "pool.worker.task", "hang", occurrence=2, seconds=30.0
                ),
            ),
            env=(("REPRO_TASK_DEADLINE", "0.5"),),
        ),
        FaultPlan(
            name="hang-storm-persistent",
            description="serial hangs against a tight respawn budget",
            pool="persistent",
            rules=(
                FaultRule(
                    "pool.worker.task",
                    "hang",
                    occurrence=1,
                    count=3,
                    seconds=30.0,
                ),
            ),
            env=(
                ("REPRO_TASK_DEADLINE", "0.4"),
                ("REPRO_MAX_RESPAWNS", "2"),
            ),
        ),
        FaultPlan(
            name="slow-worker-persistent",
            description="injected latency only — no failures, no degradation",
            pool="persistent",
            rules=(
                FaultRule(
                    "pool.worker.task",
                    "delay",
                    occurrence=1,
                    count=4,
                    seconds=0.05,
                ),
            ),
        ),
        FaultPlan(
            name="crash-per-batch",
            description="an executor child dies; the plane must go serial",
            pool="per-batch",
            rules=(FaultRule("pool.worker.task", "crash", occurrence=1),),
        ),
        FaultPlan(
            name="hang-per-batch",
            description="an executor child wedges past the task deadline",
            pool="per-batch",
            rules=(
                FaultRule(
                    "pool.worker.task", "hang", occurrence=1, seconds=30.0
                ),
            ),
            env=(("REPRO_TASK_DEADLINE", "0.5"),),
        ),
        FaultPlan(
            name="corrupt-store-reload",
            description="bit-rot one store record, then reload the store",
            store=True,
            runs=2,
            rules=(
                FaultRule("store.record", "corrupt", occurrence=3),
            ),
        ),
        FaultPlan(
            name="corrupt-store-persistent",
            description="store bit-rot under the persistent fleet",
            pool="persistent",
            store=True,
            runs=2,
            rules=(
                FaultRule("store.record", "corrupt", occurrence=2),
            ),
        ),
        FaultPlan(
            name="slow-store-io",
            description="every early store append stalls",
            store=True,
            rules=(
                FaultRule(
                    "store.record",
                    "delay",
                    occurrence=1,
                    count=5,
                    seconds=0.05,
                ),
            ),
        ),
        FaultPlan(
            name="flaky-store-io",
            description="transient EIO on store appends (retry must absorb)",
            store=True,
            rules=(
                FaultRule("store.record", "error", occurrence=2, count=2),
            ),
        ),
        FaultPlan(
            name="slow-store-per-batch",
            description="slow store IO while the per-batch pool runs",
            pool="per-batch",
            store=True,
            rules=(
                FaultRule(
                    "store.record",
                    "delay",
                    occurrence=1,
                    count=3,
                    seconds=0.05,
                ),
            ),
        ),
        FaultPlan(
            name="corrupt-checkpoint-resume",
            description="all checkpoint writes torn; resume must quarantine",
            checkpoint=True,
            runs=2,
            rules=(
                FaultRule(
                    "checkpoint.write", "corrupt", occurrence=1, count=99
                ),
            ),
        ),
        FaultPlan(
            name="flaky-checkpoint-io",
            description="transient checkpoint write failures (retried)",
            checkpoint=True,
            rules=(
                FaultRule("checkpoint.write", "error", occurrence=1, count=2),
            ),
        ),
        FaultPlan(
            name="corrupt-checkpoint-per-batch",
            description="checkpoint bit-rot under the per-batch pool",
            pool="per-batch",
            checkpoint=True,
            runs=2,
            rules=(
                FaultRule(
                    "checkpoint.write", "corrupt", occurrence=1, count=99
                ),
            ),
        ),
        FaultPlan(
            name="clock-skew-deadline",
            description="the budget clock jumps forward mid-search",
            expect="degraded",
            max_seconds=60.0,
            rules=(
                FaultRule("clock", "skew", occurrence=4, seconds=9999.0),
            ),
        ),
    ]
    return {plan.name: plan for plan in plans}


@dataclass(frozen=True)
class PlanOutcome:
    """How one fault plan fared against the fault-free oracle."""

    plan: str
    expect: str
    outcome: str  # optimal | recovered | degraded | failed
    ok: bool
    runs: int
    windows: Optional[Tuple[int, ...]]
    reference: Tuple[int, ...]
    status: str
    degradations: int
    quarantined: int
    respawns: int
    hung: int
    seconds: float
    detail: str = ""

    def to_json(self) -> Dict[str, object]:
        payload = dict(self.__dict__)
        payload["windows"] = (
            list(self.windows) if self.windows is not None else None
        )
        payload["reference"] = list(self.reference)
        return payload


@dataclass(frozen=True)
class SurvivalReport:
    """Battery-level summary: one row per plan, plus the oracle."""

    network: str
    reference_windows: Tuple[int, ...]
    reference_power: float
    outcomes: Tuple[PlanOutcome, ...]

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def survival_rate(self) -> float:
        if not self.outcomes:
            return 1.0
        return sum(1 for o in self.outcomes if o.ok) / len(self.outcomes)

    def summary(self) -> str:
        lines = [
            f"chaos battery on {self.network}: "
            f"{sum(1 for o in self.outcomes if o.ok)}/{len(self.outcomes)} "
            f"plans survived "
            f"(oracle windows = {list(self.reference_windows)}, "
            f"power = {self.reference_power:.2f})"
        ]
        width = max((len(o.plan) for o in self.outcomes), default=4)
        for o in self.outcomes:
            mark = "ok " if o.ok else "FAIL"
            extras = []
            if o.degradations:
                extras.append(f"{o.degradations} degradation(s)")
            if o.quarantined:
                extras.append(f"{o.quarantined} quarantined")
            if o.respawns:
                extras.append(f"{o.respawns} respawn(s)")
            if o.hung:
                extras.append(f"{o.hung} hung")
            if o.detail:
                extras.append(o.detail)
            suffix = f" [{', '.join(extras)}]" if extras else ""
            lines.append(
                f"  {mark} {o.plan:<{width}}  {o.outcome:<9} "
                f"(expect {o.expect}, {o.seconds:.1f}s){suffix}"
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "network": self.network,
                "reference_windows": list(self.reference_windows),
                "reference_power": self.reference_power,
                "ok": self.ok,
                "survival_rate": self.survival_rate,
                "outcomes": [o.to_json() for o in self.outcomes],
            },
            indent=2,
            sort_keys=True,
        )


def _grade(
    plan: FaultPlan,
    result,
    reference_windows: Tuple[int, ...],
) -> Tuple[str, str]:
    """Classify one finished run; returns (outcome, detail)."""
    health = result.pool_health
    absorbed = bool(result.degradations) or result.store_quarantined > 0
    if health is not None and (health.respawns or health.hung):
        absorbed = True
    if (
        tuple(result.windows) == reference_windows
        and result.status == "completed"
    ):
        return ("recovered" if absorbed else "optimal"), ""
    return (
        "degraded",
        f"status={result.status}, windows={list(result.windows)}",
    )


def run_plan(
    network: ClosedNetwork,
    plan: FaultPlan,
    reference_windows: Tuple[int, ...],
    max_window: int = 6,
    work_dir: Optional[str] = None,
) -> PlanOutcome:
    """Execute one fault plan (all its runs) and grade the final result.

    ``runs > 1`` re-invokes :func:`~repro.core.windim.windim` against the
    same store/checkpoint files under the *same* armed plan, so faults
    injected in run 1 are what run 2 must recover from.
    """
    from repro.core.windim import windim

    owned_dir = None
    if work_dir is None:
        owned_dir = tempfile.mkdtemp(prefix=f"repro-chaos-{plan.name}-")
        work_dir = owned_dir
    kwargs: Dict[str, object] = {"max_window": max_window}
    if plan.pool is not None:
        kwargs["workers"] = plan.workers
        kwargs["pool_mode"] = plan.pool
    if plan.store:
        kwargs["store_path"] = os.path.join(work_dir, "evals.store")
    if plan.checkpoint:
        kwargs["checkpoint_path"] = os.path.join(work_dir, "run.ckpt")
        kwargs["resume"] = True
    if plan.max_seconds is not None:
        kwargs["max_seconds"] = plan.max_seconds

    started = time.monotonic()
    result = None
    detail = ""
    outcome = "failed"
    try:
        with inject(plan):
            import warnings as _warnings

            with _warnings.catch_warnings():
                # Degradations/quarantines are expected here; they are
                # graded, not printed.
                _warnings.simplefilter("ignore", RuntimeWarning)
                for _ in range(plan.runs):
                    result = windim(network, **kwargs)
        outcome, detail = _grade(plan, result, reference_windows)
    except Exception as error:  # noqa: BLE001 - survival is the metric
        detail = f"{type(error).__name__}: {error}"
    finally:
        if owned_dir is not None:
            shutil.rmtree(owned_dir, ignore_errors=True)
    elapsed = time.monotonic() - started

    if plan.expect == "degraded":
        ok = outcome != "failed"
    else:
        ok = outcome in ("optimal", "recovered")
    health = result.pool_health if result is not None else None
    return PlanOutcome(
        plan=plan.name,
        expect=plan.expect,
        outcome=outcome,
        ok=ok,
        runs=plan.runs,
        windows=tuple(result.windows) if result is not None else None,
        reference=reference_windows,
        status=result.status if result is not None else "error",
        degradations=len(result.degradations) if result is not None else 0,
        quarantined=result.store_quarantined if result is not None else 0,
        respawns=health.respawns if health is not None else 0,
        hung=health.hung if health is not None else 0,
        seconds=elapsed,
        detail=detail,
    )


def run_battery(
    network: ClosedNetwork,
    plan_names: Optional[Sequence[str]] = None,
    max_window: int = 6,
    network_label: str = "network",
) -> SurvivalReport:
    """Run the (selected) builtin battery and report survival.

    The fault-free serial oracle is computed first — outside any plan —
    and every outcome is graded against its window vector.
    """
    from repro.core.windim import windim

    plans = builtin_plans()
    if plan_names:
        unknown = [name for name in plan_names if name not in plans]
        if unknown:
            from repro.errors import SearchError

            raise SearchError(
                f"unknown chaos plan(s) {unknown}; "
                f"available: {sorted(plans)}"
            )
        selected = [plans[name] for name in plan_names]
    else:
        selected = list(plans.values())

    reference = windim(network, max_window=max_window)
    reference_windows = tuple(reference.windows)

    outcomes = []
    for plan in selected:
        outcomes.append(
            run_plan(
                network,
                plan,
                reference_windows,
                max_window=max_window,
            )
        )
    return SurvivalReport(
        network=network_label,
        reference_windows=reference_windows,
        reference_power=reference.power,
        outcomes=tuple(outcomes),
    )
