"""Chaos-aware monotonic clock.

:func:`monotonic` is ``time.monotonic`` plus any clock skew injected by
the active fault plan.  ``SearchBudget`` reads time through this module
so a plan can fast-forward a deadline deterministically — the canonical
way to test "the budget expires mid-search" without real waiting.
"""

from __future__ import annotations

import time

from repro.chaos import hooks

__all__ = ["monotonic"]


def monotonic() -> float:
    """Monotonic seconds, shifted by any injected clock skew."""
    now = time.monotonic()
    injector = hooks.active()
    if injector is None:
        return now
    return now + injector.clock_skew()
