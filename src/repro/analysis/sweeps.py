"""Parameter sweeps reproducing the thesis experiment grids.

Three sweep shapes cover every table and figure of §4.5:

* :func:`optimal_window_sweep` — run WINDIM at each load point
  (Tables 4.7, 4.8, 4.12).
* :func:`power_curve` — power versus load for *fixed* windows
  (Fig. 4.9's family of curves).
* :func:`window_grid_power` — power over a grid of window vectors at a
  fixed load (global-optimality probes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple, Union

from repro.core.objective import (
    Solver,
    WindowObjective,
    resolve_pool_mode,
    resolve_solver,
)
from repro.core.power import network_power
from repro.core.windim import WindimResult, windim
from repro.queueing.network import ClosedNetwork
from repro.search.space import IntegerBox

__all__ = [
    "SweepPoint",
    "optimal_window_sweep",
    "power_curve",
    "window_grid_power",
]

NetworkFactory = Callable[..., ClosedNetwork]


@dataclass(frozen=True)
class SweepPoint:
    """One load point of an optimal-window sweep."""

    rates: Tuple[float, ...]
    result: WindimResult

    @property
    def total_rate(self) -> float:
        """Total offered load (msg/s)."""
        return sum(self.rates)

    @property
    def windows(self) -> Tuple[int, ...]:
        """Optimal window vector found at this load."""
        return self.result.windows

    @property
    def power(self) -> float:
        """Optimal network power at this load."""
        return self.result.power


def optimal_window_sweep(
    factory: NetworkFactory,
    rate_vectors: Sequence[Sequence[float]],
    solver: Union[str, Solver] = "mva-heuristic",
    max_window: int = 32,
    **windim_kwargs,
) -> List[SweepPoint]:
    """Run WINDIM at each arrival-rate vector.

    Parameters
    ----------
    factory:
        Function mapping per-class rates to a :class:`ClosedNetwork`
        (e.g. ``canadian_two_class``).
    rate_vectors:
        The load points (one rate per class each).
    solver / max_window / windim_kwargs:
        Forwarded to :func:`repro.core.windim.windim`.

    Notes
    -----
    With ``workers > 1`` (and the default persistent pool mode, named
    solvers only) the whole campaign shares **one** worker fleet: the
    pool is created for the first load point and re-targeted at each
    subsequent scenario by an in-place shared-memory model rewrite —
    worker processes survive the entire sweep instead of being respawned
    per run.  Every :class:`SweepPoint`'s ``result.pool_health`` then
    reports the same fleet (cumulative counters).
    """
    workers = windim_kwargs.get("workers") or 0
    pool_mode = resolve_pool_mode(windim_kwargs.get("pool_mode"))
    solver_name = solver if isinstance(solver, str) else None
    share_pool = (
        workers > 1
        and solver_name is not None
        and pool_mode == "persistent"
        and windim_kwargs.get("shared_pool") is None
        and not windim_kwargs.get("resilient")
    )
    points = []
    campaign_pool = None
    try:
        for rates in rate_vectors:
            network = factory(*rates)
            kwargs = dict(windim_kwargs)
            if share_pool:
                if campaign_pool is None:
                    from repro.parallel.pool import PersistentEvalPool

                    campaign_pool = PersistentEvalPool(
                        network,
                        solver_name,
                        backend=windim_kwargs.get("backend"),
                        workers=workers,
                    )
                kwargs["shared_pool"] = campaign_pool
            result = windim(
                network, solver=solver, max_window=max_window, **kwargs
            )
            points.append(
                SweepPoint(rates=tuple(float(r) for r in rates), result=result)
            )
    finally:
        if campaign_pool is not None:
            campaign_pool.close()
    return points


def power_curve(
    factory: NetworkFactory,
    rate_vectors: Sequence[Sequence[float]],
    windows: Sequence[int],
    solver: Union[str, Solver] = "mva-heuristic",
    backend: Union[str, None] = None,
) -> List[Tuple[Tuple[float, ...], float]]:
    """Power at each load point for one fixed window vector (Fig. 4.9).

    The load points are independent networks (the factory may change
    demands — or topology — with the rates), so when the named solver
    has a batched SoA kernel the whole curve is solved as padded
    heterogeneous packs (:func:`repro.mva.soa.solve_networks_batched`,
    engagement decided by :func:`repro.mva.autobatch.assess`) instead of
    a per-point Python loop; batched values agree with serial solves to
    the 1e-8 parity band.  Declined batches are logged with the reason
    and fall back to the serial loop.
    """
    networks = [
        factory(*rates).with_populations([int(w) for w in windows])
        for rates in rate_vectors
    ]
    labels = [tuple(float(r) for r in rates) for rates in rate_vectors]
    solutions = None
    if isinstance(solver, str) and len(networks) >= 2:
        from repro.mva import autobatch

        per_network = max(n.num_chains * n.num_stations for n in networks)
        engage, reason = autobatch.assess(
            solver, False, backend, per_network, len(networks)
        )
        if engage:
            from repro.mva.soa import solve_networks_batched

            autobatch.record_engaged(len(networks))
            solutions = solve_networks_batched(
                networks, solver=solver, backend=backend
            )
        else:
            autobatch.record_declined(reason, len(networks))
    if solutions is None:
        solve = resolve_solver(solver)
        kwargs = {"backend": backend} if isinstance(solver, str) else {}
        solutions = [solve(network, **kwargs) for network in networks]
    return [
        (label, network_power(solution))
        for label, solution in zip(labels, solutions)
    ]


def window_grid_power(
    network: ClosedNetwork,
    space: IntegerBox,
    solver: Union[str, Solver] = "mva-heuristic",
) -> Dict[Tuple[int, ...], float]:
    """Power at every window vector of an integer box (optimality probe).

    Evaluations flow through a
    :class:`~repro.evalplane.serial.SerialPlane` — the same choke point
    the pattern search uses — so a grid probe and a search over the same
    box are fed by identical values.  The whole grid goes through the
    plane's ``submit_many``, so batchable solvers run it as one
    cross-network SoA tensor pass (bit-identical to per-point solves;
    see :mod:`repro.mva.soa`) instead of ``|box|`` separate fixed points.
    """
    from repro.evalplane.serial import SerialPlane

    objective = WindowObjective(network, solver)
    grid: Dict[Tuple[int, ...], float] = {}
    with SerialPlane(objective, space=space) as plane:
        points = [tuple(point) for point in space.points()]
        values = {res.windows: res.value for res in plane.submit_many(points)}
        for point in points:
            value = values[point]
            grid[point] = (
                1.0 / value if value > 0 and value != float("inf") else 0.0
            )
    return grid
