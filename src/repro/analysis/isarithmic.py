"""Simulation-based dimensioning of isarithmic (global) flow control.

Thesis Chapter 5 closes with the call to "expedite the dimensioning of
end-to-end, local, and possibly, the isarithmic flow control windows."
No analytic product form exists for the isarithmic permit pool, so this
module dimensions it the only honest way available: by golden-section-
style integer search over the permit count, scoring each candidate with
the discrete-event simulator's measured power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SearchError
from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficClass
from repro.sim.engine import simulate
from repro.sim.flowcontrol import FlowControlConfig

__all__ = ["IsarithmicResult", "dimension_isarithmic"]


@dataclass(frozen=True)
class IsarithmicResult:
    """Outcome of an isarithmic dimensioning run.

    Attributes
    ----------
    best_permits:
        Permit count with the highest measured power.
    best_power:
        The measured power there.
    evaluations:
        Mapping permit count -> (throughput, mean delay, power) for every
        simulated candidate.
    """

    best_permits: int
    best_power: float
    evaluations: Dict[int, Tuple[float, float, float]]

    def table_rows(self) -> List[Tuple[int, float, float, float]]:
        """Rows (permits, throughput, delay, power), sorted by permits."""
        return [
            (permits, *values)
            for permits, values in sorted(self.evaluations.items())
        ]


def dimension_isarithmic(
    topology: Topology,
    classes: Sequence[TrafficClass],
    max_permits: int = 64,
    duration: float = 600.0,
    warmup: float = 60.0,
    seed: int = 0,
    node_buffer_limits: Optional[int] = None,
) -> IsarithmicResult:
    """Find the power-maximising isarithmic permit count by simulation.

    A coarse doubling scan (1, 2, 4, …) brackets the optimum, then a unit
    hill-climb refines it; every candidate is simulated with common random
    numbers so comparisons are low-variance.

    Parameters
    ----------
    topology / classes:
        The network and its (Poisson-source) traffic.
    max_permits:
        Upper bound of the search range.
    duration / warmup / seed:
        Simulation controls (the same seed is reused per candidate).
    node_buffer_limits:
        Optional local buffer limit combined with the permits.
    """
    if max_permits < 1:
        raise SearchError(f"max_permits must be >= 1, got {max_permits}")

    evaluations: Dict[int, Tuple[float, float, float]] = {}

    def measure(permits: int) -> float:
        if permits in evaluations:
            return evaluations[permits][2]
        config = FlowControlConfig(
            isarithmic_permits=permits,
            node_buffer_limits=node_buffer_limits,
        )
        result = simulate(
            topology,
            list(classes),
            config,
            duration=duration,
            warmup=warmup,
            source_model="poisson",
            seed=seed,
        )
        evaluations[permits] = (
            result.network_throughput,
            result.mean_network_delay,
            result.power,
        )
        return result.power

    # Coarse doubling scan.
    candidates = []
    permits = 1
    while permits <= max_permits:
        candidates.append(permits)
        permits *= 2
    if candidates[-1] != max_permits:
        candidates.append(max_permits)
    for candidate in candidates:
        measure(candidate)

    best = max(evaluations, key=lambda p: evaluations[p][2])

    # Unit hill-climb around the coarse winner.
    improved = True
    while improved:
        improved = False
        for neighbor in (best - 1, best + 1):
            if 1 <= neighbor <= max_permits and measure(neighbor) > evaluations[best][2]:
                best = neighbor
                improved = True

    return IsarithmicResult(
        best_permits=best,
        best_power=evaluations[best][2],
        evaluations=evaluations,
    )
