"""Sweeps, solver comparisons, buffer/permit dimensioning, tables."""

from repro.analysis.buffers import BufferRecommendation, recommend_buffers
from repro.analysis.compare import SolverComparison, compare_solutions, compare_solvers
from repro.analysis.isarithmic import IsarithmicResult, dimension_isarithmic
from repro.analysis.sensitivity import SensitivityPoint, window_sensitivity
from repro.analysis.sweeps import (
    SweepPoint,
    optimal_window_sweep,
    power_curve,
    window_grid_power,
)
from repro.analysis.tables import render_table

__all__ = [
    "SweepPoint",
    "optimal_window_sweep",
    "power_curve",
    "window_grid_power",
    "SolverComparison",
    "compare_solutions",
    "compare_solvers",
    "render_table",
    "BufferRecommendation",
    "recommend_buffers",
    "IsarithmicResult",
    "dimension_isarithmic",
    "SensitivityPoint",
    "window_sensitivity",
]
