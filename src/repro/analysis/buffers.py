"""Buffer dimensioning from exact queue-length distributions.

Thesis §2.3: end-to-end windows and nodal storage must be dimensioned
together — "if ``E_r`` were allowed to become so large that it exceeds the
storage capacity ``K_i`` of node i …, a large amount of traffic may at
times converge on one place", defeating the control.  This module closes
that loop: given the window settings, it computes each station's exact
stationary queue-length distribution (:mod:`repro.exact.marginals`) and
returns the smallest buffer size whose overflow probability is below a
target — the ``K_i`` to provision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.exact.marginals import station_queue_distribution
from repro.queueing.network import ClosedNetwork
from repro.queueing.station import Discipline

__all__ = ["BufferRecommendation", "recommend_buffers"]


@dataclass(frozen=True)
class BufferRecommendation:
    """Buffer advice for one station.

    Attributes
    ----------
    station:
        Station name.
    buffer_size:
        Smallest ``K`` with ``P(queue > K) <= overflow_probability``.
    overflow_probability:
        The achieved tail probability at that ``K``.
    mean_queue_length:
        Stationary mean, for context.
    hard_bound:
        The absolute worst case (total window mass that can reach this
        station) — provisioning this much makes overflow impossible.
    """

    station: str
    buffer_size: int
    overflow_probability: float
    mean_queue_length: float
    hard_bound: int


def recommend_buffers(
    network: ClosedNetwork,
    overflow_probability: float = 1e-3,
    stations: Optional[Tuple[str, ...]] = None,
) -> Dict[str, BufferRecommendation]:
    """Recommend per-station buffer sizes for the given window settings.

    Parameters
    ----------
    network:
        The closed network *with its windows set* (chain populations).
    overflow_probability:
        Target bound on ``P(queue > K)``.
    stations:
        Optional subset of station names; defaults to every fixed-rate
        queueing station (IS stations never queue).

    Returns
    -------
    dict
        Station name -> :class:`BufferRecommendation`.
    """
    if not 0 < overflow_probability < 1:
        raise ModelError(
            f"overflow probability must be in (0, 1), got {overflow_probability}"
        )
    wanted = set(stations) if stations is not None else None
    recommendations: Dict[str, BufferRecommendation] = {}
    for index, station in enumerate(network.stations):
        if station.discipline is Discipline.IS:
            continue
        if wanted is not None and station.name not in wanted:
            continue
        pmf = station_queue_distribution(network, index)
        tail = 1.0 - np.cumsum(pmf)
        # Smallest K with P(queue > K) <= target.
        buffer_size = int(np.argmax(tail <= overflow_probability))
        mean = float(np.dot(np.arange(pmf.shape[0]), pmf))
        # Worst case: every visiting chain's full window at this station.
        visiting = network.visiting_chains(index)
        hard_bound = int(network.populations[visiting].sum())
        recommendations[station.name] = BufferRecommendation(
            station=station.name,
            buffer_size=buffer_size,
            overflow_probability=float(tail[buffer_size]),
            mean_queue_length=mean,
            hard_bound=hard_bound,
        )
    return recommendations
