"""Accuracy comparison between solvers (heuristic vs exact vs simulation).

The heuristic's whole justification is that it tracks the exact solution
closely at a fraction of the cost (§4.2); these helpers quantify that for
the ablation benchmark and the validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.core.power import network_power
from repro.queueing.network import ClosedNetwork
from repro.solution import NetworkSolution

__all__ = ["SolverComparison", "compare_solutions", "compare_solvers"]


@dataclass(frozen=True)
class SolverComparison:
    """Error metrics of a candidate solution against a reference.

    All errors are relative (fractions, not percent).
    """

    reference_method: str
    candidate_method: str
    throughput_error: float
    max_queue_length_error: float
    delay_error: float
    power_error: float

    def summary(self) -> str:
        """One-line report."""
        return (
            f"{self.candidate_method} vs {self.reference_method}: "
            f"throughput {self.throughput_error * 100:.2f}%, "
            f"delay {self.delay_error * 100:.2f}%, "
            f"power {self.power_error * 100:.2f}%, "
            f"max queue {self.max_queue_length_error * 100:.2f}%"
        )


def _relative(candidate: float, reference: float) -> float:
    if reference == 0:
        return 0.0 if candidate == 0 else float("inf")
    return abs(candidate - reference) / abs(reference)


def compare_solutions(
    reference: NetworkSolution, candidate: NetworkSolution
) -> SolverComparison:
    """Relative errors of ``candidate`` against ``reference``."""
    throughput_error = _relative(
        candidate.network_throughput, reference.network_throughput
    )
    delay_error = _relative(
        candidate.mean_network_delay, reference.mean_network_delay
    )
    power_error = _relative(network_power(candidate), network_power(reference))

    ref_queue = reference.queue_lengths
    cand_queue = candidate.queue_lengths
    mask = ref_queue > 1e-9
    if np.any(mask):
        queue_error = float(
            np.max(np.abs(cand_queue[mask] - ref_queue[mask]) / ref_queue[mask])
        )
    else:
        queue_error = 0.0
    return SolverComparison(
        reference_method=reference.method,
        candidate_method=candidate.method,
        throughput_error=throughput_error,
        max_queue_length_error=queue_error,
        delay_error=delay_error,
        power_error=power_error,
    )


def compare_solvers(
    network: ClosedNetwork,
    reference: Callable[[ClosedNetwork], NetworkSolution],
    candidates: Dict[str, Callable[[ClosedNetwork], NetworkSolution]],
) -> Dict[str, SolverComparison]:
    """Solve once with ``reference`` and compare each candidate solver."""
    ref_solution = reference(network)
    return {
        name: compare_solutions(ref_solution, solver(network))
        for name, solver in candidates.items()
    }
