"""Sensitivity of window settings to traffic drift.

Thesis §4.5 on Table 4.8: "instantaneous window sizing is virtually
impractical, and so the window settings should be as insensitive to
traffic fluctuations as possible."  This module quantifies that: design
windows at nominal rates, then measure how much power is lost when the
actual load drifts, compared to re-dimensioning at the drifted load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple, Union

from repro.core.objective import Solver, WindowObjective
from repro.core.windim import windim
from repro.queueing.network import ClosedNetwork

__all__ = ["SensitivityPoint", "window_sensitivity"]

NetworkFactory = Callable[..., ClosedNetwork]


@dataclass(frozen=True)
class SensitivityPoint:
    """Power comparison at one drifted load.

    Attributes
    ----------
    rates:
        The drifted arrival-rate vector.
    designed_power:
        Power at the drifted load using the *nominal-design* windows.
    reoptimized_power:
        Power at the drifted load with windows re-dimensioned there.
    reoptimized_windows:
        The windows WINDIM picks at the drifted load.
    """

    rates: Tuple[float, ...]
    designed_power: float
    reoptimized_power: float
    reoptimized_windows: Tuple[int, ...]

    @property
    def power_loss(self) -> float:
        """Fractional power lost by not re-dimensioning (0 = none)."""
        if self.reoptimized_power <= 0:
            return 0.0
        return 1.0 - self.designed_power / self.reoptimized_power


def window_sensitivity(
    factory: NetworkFactory,
    nominal_rates: Sequence[float],
    drifted_rate_vectors: Sequence[Sequence[float]],
    solver: Union[str, Solver] = "mva-heuristic",
    max_window: int = 32,
) -> Tuple[Tuple[int, ...], List[SensitivityPoint]]:
    """Design at nominal load, evaluate under drift.

    Returns
    -------
    (design_windows, points):
        The windows chosen at the nominal load, and one
        :class:`SensitivityPoint` per drifted rate vector.
    """
    design = windim(
        factory(*nominal_rates), solver=solver, max_window=max_window
    )
    points = []
    for rates in drifted_rate_vectors:
        network = factory(*rates)
        objective = WindowObjective(network, solver)
        designed_value = objective(design.windows)
        designed_power = (
            1.0 / designed_value if designed_value not in (0.0, float("inf")) else 0.0
        )
        reopt = windim(network, solver=solver, max_window=max_window)
        points.append(
            SensitivityPoint(
                rates=tuple(float(r) for r in rates),
                designed_power=designed_power,
                reoptimized_power=reopt.power,
                reoptimized_windows=reopt.windows,
            )
        )
    return design.windows, points
