"""Plain-text table rendering for benchmark and CLI output.

The benchmarks print the thesis tables side by side with measured values;
this renderer keeps that output dependency-free and diff-friendly.
:func:`render_csv` provides a machine-readable twin for archival.
"""

from __future__ import annotations

import csv
import io
from typing import List, Optional, Sequence

__all__ = ["render_table", "render_csv"]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row cell values; floats are formatted to ``precision`` decimals.
    title:
        Optional line printed above the table.
    """
    formatted: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        formatted.append([_format_cell(cell, precision) for cell in row])

    widths = [max(len(line[c]) for line in formatted) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(formatted[0], widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row_cells in formatted[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row_cells, widths)))
    return "\n".join(lines)


def render_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render the same table as CSV text (no title line).

    Floats are written at full precision; consumers deciding significance
    should round themselves.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        writer.writerow(list(row))
    return buffer.getvalue()
