"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one base class.  The subclasses
distinguish the three broad failure domains: model construction, numerical
solution, and optimisation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """An invalid queueing-network or topology specification.

    Raised during model construction/validation, e.g. a chain routed over a
    non-existent station, a non-positive service time, or an empty route.
    """


class SolverError(ReproError):
    """A numerical solution failed (divergence, instability, overflow)."""


class ConvergenceError(SolverError):
    """An iterative solver exhausted its iteration budget before converging.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Final residual (solver-specific norm) when iteration stopped.
    """

    def __init__(self, message: str, iterations: int = 0, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class StabilityError(SolverError):
    """An open (sub)network is unstable: some station has utilisation >= 1."""


class LadderExhaustedError(SolverError):
    """Every rung of a resilient escalation ladder failed.

    Attributes
    ----------
    health:
        The :class:`repro.resilience.health.SolveHealth` record describing
        every attempt that was made, for post-mortem inspection.
    """

    def __init__(self, message: str, health: object = None):
        super().__init__(message)
        self.health = health


class ConvergenceWarning(RuntimeWarning):
    """An iterative solver stopped at its budget and returned the last iterate.

    Emitted (via :mod:`warnings`) when ``IterationControl.raise_on_failure``
    is False, so a non-converged result is never silently indistinguishable
    from a converged one.
    """


class SearchError(ReproError):
    """An optimisation run was mis-specified or failed."""


class PoolFailure(SearchError):
    """A worker pool is broken beyond its retry budget.

    Raised by :class:`repro.parallel.pool.PersistentEvalPool` when the
    respawn budget is exhausted (respawn storms, watchdog kill loops) and
    by the per-batch executor when its process pool breaks or deadlines.
    The evaluation planes catch it and degrade to the next rung of the
    ladder (persistent → per-batch → serial) instead of failing the run.
    """


class SimulationError(ReproError):
    """A discrete-event simulation was mis-specified or reached a bad state."""
