"""Unit tests for state-space enumeration."""

import pytest

from repro.exact.states import (
    compositions,
    lattice_size,
    population_vectors,
    population_vectors_by_total,
)


class TestLatticeSize:
    def test_matches_product(self):
        assert lattice_size([2, 3]) == 12
        assert lattice_size([0]) == 1
        assert lattice_size([]) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            lattice_size([-1])


class TestPopulationVectors:
    def test_enumerates_full_lattice(self):
        vectors = list(population_vectors([1, 2]))
        assert len(vectors) == 6
        assert (0, 0) in vectors
        assert (1, 2) in vectors

    def test_by_total_order_is_nondecreasing(self):
        totals = [sum(v) for v in population_vectors_by_total([2, 2, 1])]
        assert totals == sorted(totals)

    def test_by_total_covers_lattice(self):
        assert set(population_vectors_by_total([2, 2])) == set(
            population_vectors([2, 2])
        )

    def test_predecessors_precede(self):
        order = {v: i for i, v in enumerate(population_vectors_by_total([2, 3]))}
        for vector, position in order.items():
            for axis in range(2):
                if vector[axis] > 0:
                    predecessor = list(vector)
                    predecessor[axis] -= 1
                    assert order[tuple(predecessor)] < position


class TestCompositions:
    def test_counts_match_stars_and_bars(self):
        # C(total + parts - 1, parts - 1)
        assert len(list(compositions(3, 2))) == 4
        assert len(list(compositions(4, 3))) == 15

    def test_all_sum_to_total(self):
        for combo in compositions(5, 3):
            assert sum(combo) == 5

    def test_zero_parts(self):
        assert list(compositions(0, 0)) == [()]
        assert list(compositions(2, 0)) == []

    def test_single_part(self):
        assert list(compositions(7, 1)) == [(7,)]

    def test_negative_parts_rejected(self):
        with pytest.raises(ValueError):
            list(compositions(1, -1))
