"""Unit tests for M/M/m/K finite-buffer queues."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.exact.finite_buffer import solve_mmmk
from repro.exact.semiclosed import solve_semiclosed


class TestMM1K:
    def test_distribution_geometric_truncated(self):
        lam, mu, capacity = 4.0, 5.0, 3
        result = solve_mmmk(lam, mu, capacity)
        rho = lam / mu
        weights = np.array([rho**k for k in range(capacity + 1)])
        np.testing.assert_allclose(
            result.distribution, weights / weights.sum(), rtol=1e-12
        )

    def test_blocking_probability_known_value(self):
        # M/M/1/1 (pure loss): blocking = rho/(1+rho) (Erlang-B, 1 server).
        result = solve_mmmk(5.0, 10.0, 1)
        assert result.blocking_probability == pytest.approx(0.5 / 1.5)

    def test_carried_plus_lost_equals_offered(self):
        result = solve_mmmk(8.0, 5.0, 6)
        lost = 8.0 * result.blocking_probability
        assert result.carried_rate + lost == pytest.approx(8.0)

    def test_converges_to_mm1_for_large_buffers(self):
        lam, mu = 4.0, 5.0
        result = solve_mmmk(lam, mu, 200)
        rho = lam / mu
        assert result.mean_customers == pytest.approx(rho / (1 - rho), rel=1e-6)
        assert result.blocking_probability < 1e-15

    def test_overloaded_queue_fills_buffer(self):
        result = solve_mmmk(50.0, 5.0, 4)
        assert result.mean_customers > 3.5
        assert result.blocking_probability > 0.8

    def test_matches_semiclosed_single_station(self):
        """An M/M/1/K is a single-station semiclosed chain with H+ = K."""
        lam, mu, capacity = 6.0, 10.0, 5
        direct = solve_mmmk(lam, mu, capacity)
        via_semiclosed = solve_semiclosed([1.0 / mu], lam, 0, capacity)
        assert via_semiclosed.acceptance_probability == pytest.approx(
            1.0 - direct.blocking_probability, rel=1e-10
        )
        assert via_semiclosed.throughput == pytest.approx(
            direct.carried_rate, rel=1e-10
        )
        assert via_semiclosed.mean_population == pytest.approx(
            direct.mean_customers, rel=1e-10
        )


class TestMMmK:
    def test_multiserver_blocking_below_single_server(self):
        single = solve_mmmk(8.0, 5.0, 4, servers=1)
        double = solve_mmmk(8.0, 5.0, 4, servers=2)
        assert double.blocking_probability < single.blocking_probability

    def test_pure_loss_erlang_b(self):
        # M/M/m/m is the Erlang-B system: B(m, a) via the recurrence.
        lam, mu, m = 12.0, 5.0, 3
        a = lam / mu
        b = 1.0
        for k in range(1, m + 1):
            b = a * b / (k + a * b)
        result = solve_mmmk(lam, mu, m, servers=m)
        assert result.blocking_probability == pytest.approx(b, rel=1e-12)


class TestValidation:
    def test_bad_inputs(self):
        with pytest.raises(ModelError):
            solve_mmmk(0.0, 1.0, 2)
        with pytest.raises(ModelError):
            solve_mmmk(1.0, 0.0, 2)
        with pytest.raises(ModelError):
            solve_mmmk(1.0, 1.0, 1, servers=2)
        with pytest.raises(ModelError):
            solve_mmmk(1.0, 1.0, 2, servers=0)
