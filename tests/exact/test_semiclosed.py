"""Unit tests for semiclosed chains (Georganas extension)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.exact.buzen import buzen
from repro.exact.semiclosed import solve_semiclosed


DEMANDS = [0.05, 0.02, 0.04]


class TestDegenerateCases:
    def test_closed_case_matches_buzen(self):
        # H- = H+ pins the population: must equal the closed network.
        result = solve_semiclosed(DEMANDS, 10.0, 3, 3)
        scale = max(DEMANDS)
        reference = buzen(np.asarray(DEMANDS) / scale, 3)
        assert result.throughput == pytest.approx(
            reference.throughput() / scale, rel=1e-12
        )
        assert result.acceptance_probability == pytest.approx(0.0)
        assert result.mean_population == pytest.approx(3.0)

    def test_window_one_is_mm1_with_loss_shape(self):
        # Single station, H- = 0, H+ = 1: an M/M/1/1 loss system.
        service = 0.1
        lam = 5.0
        result = solve_semiclosed([service], lam, 0, 1)
        rho = lam * service
        blocking = rho / (1 + rho)  # Erlang-B with one server
        assert 1 - result.acceptance_probability == pytest.approx(blocking)
        assert result.throughput == pytest.approx(lam * (1 - blocking))


class TestFlowBalance:
    @pytest.mark.parametrize("window", [1, 2, 4, 8])
    def test_throughput_equals_accepted_arrivals(self, window):
        """With H- = 0 the chain is a window-limited open system: at
        stationarity the departure rate equals the accepted arrival rate."""
        result = solve_semiclosed(DEMANDS, 12.0, 0, window)
        assert result.throughput == pytest.approx(
            result.effective_arrival_rate, rel=1e-9
        )

    def test_acceptance_decreases_with_load(self):
        low = solve_semiclosed(DEMANDS, 5.0, 0, 3)
        high = solve_semiclosed(DEMANDS, 50.0, 0, 3)
        assert high.acceptance_probability < low.acceptance_probability

    def test_larger_window_admits_more(self):
        small = solve_semiclosed(DEMANDS, 30.0, 0, 2)
        large = solve_semiclosed(DEMANDS, 30.0, 0, 8)
        assert large.throughput > small.throughput

    def test_queue_lengths_sum_to_mean_population(self):
        result = solve_semiclosed(DEMANDS, 15.0, 1, 6)
        assert result.mean_queue_lengths.sum() == pytest.approx(
            result.mean_population, rel=1e-9
        )

    def test_mean_delay_by_little(self):
        result = solve_semiclosed(DEMANDS, 15.0, 0, 5)
        assert result.mean_delay == pytest.approx(
            result.mean_population / result.throughput
        )


class TestLowerBound:
    def test_h_min_floors_population(self):
        result = solve_semiclosed(DEMANDS, 1.0, 2, 6)
        assert result.population_pmf[:2].sum() == 0.0
        assert result.mean_population >= 2.0


class TestValidation:
    def test_bad_bounds(self):
        with pytest.raises(ModelError):
            solve_semiclosed(DEMANDS, 1.0, 3, 2)
        with pytest.raises(ModelError):
            solve_semiclosed(DEMANDS, 1.0, 0, 0)

    def test_bad_rate(self):
        with pytest.raises(ModelError):
            solve_semiclosed(DEMANDS, 0.0, 0, 2)

    def test_bad_demands(self):
        with pytest.raises(ModelError):
            solve_semiclosed([], 1.0, 0, 2)
        with pytest.raises(ModelError):
            solve_semiclosed([-0.1], 1.0, 0, 2)
