"""Unit tests for mixed open/closed networks."""

import numpy as np
import pytest

from repro.errors import ModelError, StabilityError
from repro.exact.mixed import solve_mixed
from repro.exact.mva_exact import solve_mva_exact
from repro.queueing.chain import ClosedChain, OpenChain
from repro.queueing.network import ClosedNetwork
from repro.queueing.station import Station


def make_parts(open_rate=2.0, window=3):
    stations = [Station.fcfs("shared"), Station.fcfs("own")]
    closed = [
        ClosedChain.from_route(
            "closed", ["own", "shared"], [0.1, 0.05], window=window
        )
    ]
    opened = [
        OpenChain(
            name="open",
            visits=("shared",),
            service_times=(0.05,),
            arrival_rate=open_rate,
        )
    ]
    return stations, closed, opened


class TestReduction:
    def test_no_open_chains_equals_closed_solution(self):
        stations, closed, _ = make_parts()
        mixed = solve_mixed(stations, closed, [])
        pure = solve_mva_exact(ClosedNetwork.build(stations, closed))
        np.testing.assert_allclose(
            mixed.closed.throughputs, pure.throughputs, rtol=1e-10
        )

    def test_open_load_slows_closed_chain(self):
        stations, closed, opened = make_parts(open_rate=6.0)
        with_open = solve_mixed(stations, closed, opened)
        without = solve_mixed(stations, closed, [])
        assert (
            with_open.closed.throughputs[0] < without.closed.throughputs[0]
        )

    def test_closed_demand_inflation_factor(self):
        # rho0 = 2.0 * 0.05 = 0.1 at the shared queue; the closed chain's
        # demand there must be 0.05 / 0.9.
        stations, closed, opened = make_parts(open_rate=2.0)
        mixed = solve_mixed(stations, closed, opened)
        net = mixed.closed.network
        shared = net.station_id("shared")
        assert net.demands[0, shared] == pytest.approx(0.05 / 0.9)

    def test_open_queue_lengths_against_mm1_when_closed_idle(self):
        # With a zero-population closed chain the shared queue is an M/M/1.
        stations, closed, opened = make_parts(open_rate=4.0)
        closed = [closed[0].with_population(0)]
        mixed = solve_mixed(stations, closed, opened)
        rho = 4.0 * 0.05
        assert mixed.open_queue_lengths[0, 0] == pytest.approx(rho / (1 - rho))

    def test_open_chain_delay_by_little(self):
        stations, closed, opened = make_parts(open_rate=3.0)
        mixed = solve_mixed(stations, closed, opened)
        expected = mixed.open_queue_lengths[0].sum() / 3.0
        assert mixed.open_chain_delay(0) == pytest.approx(expected)


class TestStability:
    def test_saturating_open_chain_rejected(self):
        stations, closed, opened = make_parts(open_rate=25.0)  # rho0 = 1.25
        with pytest.raises(StabilityError):
            solve_mixed(stations, closed, opened)

    def test_delay_station_never_saturates(self):
        stations = [Station.delay("think"), Station.fcfs("own")]
        closed = [
            ClosedChain.from_route("c", ["own", "think"], [0.1, 2.0], window=2)
        ]
        opened = [
            OpenChain(
                name="o",
                visits=("think",),
                service_times=(2.0,),
                arrival_rate=100.0,
            )
        ]
        mixed = solve_mixed(stations, closed, opened)
        # IS open-chain mean population = rho (Poisson), regardless of load.
        assert mixed.open_queue_lengths[0, 0] == pytest.approx(200.0)


class TestValidation:
    def test_unknown_station_rejected(self):
        stations, closed, _ = make_parts()
        bad_open = [
            OpenChain(
                name="o", visits=("ghost",), service_times=(0.1,), arrival_rate=1.0
            )
        ]
        with pytest.raises(ModelError):
            solve_mixed(stations, closed, bad_open)

    def test_requires_closed_chain(self):
        stations, _closed, opened = make_parts()
        with pytest.raises(ModelError):
            solve_mixed(stations, [], opened)
