"""Unit tests for exact multichain MVA."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.exact.buzen import buzen
from repro.exact.mva_exact import solve_mva_exact
from repro.queueing.chain import ClosedChain
from repro.queueing.network import ClosedNetwork
from repro.queueing.station import Station


def single_chain_network(demands, window):
    stations = [Station.fcfs(f"q{i}") for i in range(len(demands))]
    chain = ClosedChain.from_route(
        "c", [s.name for s in stations], demands, window=window
    )
    return ClosedNetwork.build(stations, [chain])


class TestSingleChainAgainstBuzen:
    @pytest.mark.parametrize("window", [1, 2, 5, 9])
    def test_throughput_matches_convolution(self, window):
        demands = [0.12, 0.05, 0.3, 0.08]
        solution = solve_mva_exact(single_chain_network(demands, window))
        reference = buzen(demands, window)
        assert solution.throughputs[0] == pytest.approx(
            reference.throughput(), rel=1e-12
        )

    def test_queue_lengths_match_convolution(self):
        demands = [0.12, 0.05, 0.3]
        solution = solve_mva_exact(single_chain_network(demands, 6))
        reference = buzen(demands, 6)
        for i in range(3):
            assert solution.queue_lengths[0, i] == pytest.approx(
                reference.mean_queue_length(i), rel=1e-10
            )


class TestMultichainProperties:
    def test_queue_lengths_sum_to_populations(self, two_class_net):
        solution = solve_mva_exact(two_class_net)
        per_chain = solution.queue_lengths.sum(axis=1)
        np.testing.assert_allclose(per_chain, two_class_net.populations)

    def test_littles_law_per_chain(self, two_class_net):
        solution = solve_mva_exact(two_class_net)
        for r in range(two_class_net.num_chains):
            cycle_time = solution.waiting_times[r].sum()
            assert solution.throughputs[r] * cycle_time == pytest.approx(
                two_class_net.populations[r], rel=1e-12
            )

    def test_symmetric_network_symmetric_solution(self):
        from repro.netmodel.examples import canadian_two_class

        net = canadian_two_class(20.0, 20.0, windows=(3, 3))
        solution = solve_mva_exact(net)
        assert solution.throughputs[0] == pytest.approx(
            solution.throughputs[1], rel=1e-12
        )

    def test_utilizations_below_one(self, two_class_net):
        solution = solve_mva_exact(two_class_net)
        assert np.all(solution.utilizations <= 1.0 + 1e-9)

    def test_zero_population_chain_is_inert(self, two_class_net):
        net = two_class_net.with_populations([0, 4])
        solution = solve_mva_exact(net)
        assert solution.throughputs[0] == 0.0
        assert solution.queue_lengths[0].sum() == 0.0
        # Remaining chain behaves as a single-chain network.
        alone = solve_mva_exact(two_class_net.with_populations([0, 4]))
        assert alone.throughputs[1] == pytest.approx(solution.throughputs[1])

    def test_throughput_monotone_in_window(self, two_class_net):
        lam_small = solve_mva_exact(
            two_class_net.with_populations([2, 2])
        ).throughputs.sum()
        lam_large = solve_mva_exact(
            two_class_net.with_populations([5, 5])
        ).throughputs.sum()
        assert lam_large > lam_small


class TestDelayStations:
    def test_delay_station_waiting_time_is_demand(self):
        stations = [Station.fcfs("q"), Station.delay("think")]
        chain = ClosedChain.from_route("c", ["q", "think"], [0.1, 1.0], window=5)
        net = ClosedNetwork.build(stations, [chain])
        solution = solve_mva_exact(net)
        think = net.station_id("think")
        assert solution.waiting_times[0, think] == pytest.approx(1.0)

    def test_matches_machine_repairman(self):
        # Same model as the Buzen machine-repairman test.
        from repro.exact.buzen import buzen
        from repro.queueing.capacity import infinite_server_coefficients

        stations = [Station.fcfs("repair"), Station.delay("think")]
        chain = ClosedChain.from_route(
            "m", ["repair", "think"], [0.5, 2.0], window=4
        )
        net = ClosedNetwork.build(stations, [chain])
        solution = solve_mva_exact(net)
        reference = buzen(
            [0.5, 2.0], 4, [None, infinite_server_coefficients(4)]
        )
        assert solution.throughputs[0] == pytest.approx(
            reference.throughput(), rel=1e-12
        )


class TestGuards:
    def test_large_lattice_rejected(self):
        net = single_chain_network([0.1], 1)
        big = net.with_populations([10_000_000])
        with pytest.raises(SolverError):
            solve_mva_exact(big)

    def test_multiserver_rejected(self):
        stations = [Station.fcfs("q", servers=2)]
        chain = ClosedChain.from_route("c", ["q"], [0.1], window=2)
        net = ClosedNetwork.build(stations, [chain])
        with pytest.raises(SolverError):
            solve_mva_exact(net)
