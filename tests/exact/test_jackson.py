"""Unit tests for the open Jackson network solver."""

import numpy as np
import pytest

from repro.errors import ModelError, StabilityError
from repro.exact.jackson import solve_jackson


class TestSingleQueue:
    def test_mm1_closed_forms(self):
        result = solve_jackson(np.zeros((1, 1)), [4.0], [10.0])
        station = result.stations[0]
        rho = 0.4
        assert station.utilization == pytest.approx(rho)
        assert station.mean_queue_length == pytest.approx(rho / (1 - rho))
        assert station.mean_sojourn_time == pytest.approx(1.0 / (10.0 - 4.0))

    def test_mm2_erlang_c(self):
        result = solve_jackson(np.zeros((1, 1)), [3.0], [2.0], servers=[2])
        station = result.stations[0]
        # M/M/2 with lambda=3, mu=2: a=1.5, rho=0.75.
        a, m = 1.5, 2
        p0 = 1.0 / (1 + a + a**2 / (2 * (1 - 0.75)))
        erlang_c = (a**2 / (2 * (1 - 0.75))) * p0
        expected = a + erlang_c * 0.75 / (1 - 0.75)
        assert station.mean_queue_length == pytest.approx(expected, rel=1e-9)

    def test_unstable_rejected(self):
        with pytest.raises(StabilityError):
            solve_jackson(np.zeros((1, 1)), [10.0], [10.0])


class TestTandem:
    def test_tandem_delay_adds_up(self):
        # Two queues in series, both M/M/1 at the same arrival rate.
        routing = np.array([[0.0, 1.0], [0.0, 0.0]])
        result = solve_jackson(routing, [2.0, 0.0], [5.0, 4.0])
        t1 = 1.0 / (5.0 - 2.0)
        t2 = 1.0 / (4.0 - 2.0)
        assert result.mean_network_delay == pytest.approx(t1 + t2)

    def test_total_customers_by_little(self):
        routing = np.array([[0.0, 1.0], [0.0, 0.0]])
        result = solve_jackson(routing, [2.0, 0.0], [5.0, 4.0])
        assert result.mean_customers == pytest.approx(
            2.0 * result.mean_network_delay
        )


class TestFeedback:
    def test_feedback_queue(self):
        # M/M/1 with Bernoulli feedback p: effective lambda = gamma/(1-p).
        routing = np.array([[0.25]])
        result = solve_jackson(routing, [3.0], [8.0])
        assert result.arrival_rates[0] == pytest.approx(4.0)
        assert result.stations[0].utilization == pytest.approx(0.5)


class TestValidation:
    def test_service_rate_shape(self):
        with pytest.raises(ModelError):
            solve_jackson(np.zeros((2, 2)), [1.0, 1.0], [2.0])

    def test_nonpositive_service_rates(self):
        with pytest.raises(ModelError):
            solve_jackson(np.zeros((1, 1)), [1.0], [0.0])

    def test_idle_station_reports_zero(self):
        routing = np.zeros((2, 2))
        result = solve_jackson(routing, [2.0, 0.0], [5.0, 5.0])
        assert result.stations[1].mean_queue_length == 0.0
        assert result.stations[1].utilization == 0.0
