"""Processor-sharing stations with class-dependent service times.

Thesis Chapter 5: "WINDIM can be readily extended to analyse networks with
LCFSPR, PS, IS or other work-conserving queue disciplines."  For
single-server fixed-rate stations the product-form solution of PS (and
LCFS-PR) has the same mean-value equations as FCFS, but *allows
class-dependent mean service times*.  These tests cross-validate that
extension: exact MVA and the CTMC (whose proportional-completion rates are
exactly PS semantics) must agree on PS networks that FCFS product form
would forbid.
"""

import numpy as np
import pytest

from repro.exact.ctmc import solve_ctmc
from repro.exact.mva_exact import solve_mva_exact
from repro.mva.heuristic import solve_mva_heuristic
from repro.mva.linearizer import solve_linearizer
from repro.queueing.chain import ClosedChain
from repro.queueing.network import ClosedNetwork
from repro.queueing.station import Discipline, Station


def ps_network(windows=(2, 2)):
    """Two chains sharing a PS station with *different* service times."""
    stations = [
        Station.fcfs("s1"),
        Station.fcfs("s2"),
        Station("shared", discipline=Discipline.PS),
    ]
    chains = [
        ClosedChain.from_route(
            "c1", ["s1", "shared"], [0.10, 0.03], window=windows[0],
            source_station="s1",
        ),
        ClosedChain.from_route(
            "c2", ["s2", "shared"], [0.08, 0.06], window=windows[1],
            source_station="s2",
        ),
    ]
    return ClosedNetwork.build(stations, chains)


class TestPsProductForm:
    @pytest.mark.parametrize("windows", [(1, 1), (2, 2), (3, 1), (2, 4)])
    def test_exact_mva_matches_ctmc(self, windows):
        net = ps_network(windows)
        mva = solve_mva_exact(net)
        ctmc = solve_ctmc(net)
        np.testing.assert_allclose(mva.throughputs, ctmc.throughputs, rtol=1e-8)
        np.testing.assert_allclose(
            mva.queue_lengths, ctmc.queue_lengths, atol=1e-8
        )

    def test_class_dependent_service_allowed_at_ps(self):
        # The strict FCFS check must not fire for PS stations.
        net = ps_network()
        shared = net.station_id("shared")
        assert net.demands[0, shared] != net.demands[1, shared]

    def test_fcfs_station_with_same_times_equivalent_to_ps(self):
        """When service times happen to be equal, FCFS and PS single-server
        stations have identical product-form solutions."""
        def build(discipline):
            stations = [
                Station.fcfs("s1"),
                Station.fcfs("s2"),
                Station("shared", discipline=discipline),
            ]
            chains = [
                ClosedChain.from_route(
                    "c1", ["s1", "shared"], [0.10, 0.04], window=2
                ),
                ClosedChain.from_route(
                    "c2", ["s2", "shared"], [0.08, 0.04], window=2
                ),
            ]
            return ClosedNetwork.build(stations, chains)

        fcfs = solve_mva_exact(build(Discipline.FCFS))
        ps = solve_mva_exact(build(Discipline.PS))
        np.testing.assert_allclose(fcfs.throughputs, ps.throughputs, rtol=1e-12)


class TestApproximateSolversOnPs:
    def test_heuristic_tracks_exact_on_ps(self):
        net = ps_network((3, 3))
        exact = solve_mva_exact(net)
        heuristic = solve_mva_heuristic(net)
        np.testing.assert_allclose(
            heuristic.throughputs, exact.throughputs, rtol=0.1
        )

    def test_linearizer_tracks_exact_on_ps(self):
        net = ps_network((3, 3))
        exact = solve_mva_exact(net)
        linearizer = solve_linearizer(net)
        np.testing.assert_allclose(
            linearizer.throughputs, exact.throughputs, rtol=0.02
        )

    def test_lcfs_pr_same_as_ps(self):
        stations = [
            Station.fcfs("s1"),
            Station("shared", discipline=Discipline.LCFS_PR),
        ]
        chains = [
            ClosedChain.from_route("c1", ["s1", "shared"], [0.1, 0.05], window=3)
        ]
        net = ClosedNetwork.build(stations, chains)
        mva = solve_mva_exact(net)
        ctmc = solve_ctmc(net)
        np.testing.assert_allclose(mva.throughputs, ctmc.throughputs, rtol=1e-9)
