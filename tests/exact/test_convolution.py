"""Unit tests for the multichain convolution algorithm."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.exact.buzen import buzen
from repro.exact.convolution import normalization_constants, solve_convolution
from repro.exact.mva_exact import solve_mva_exact
from repro.queueing.chain import ClosedChain
from repro.queueing.network import ClosedNetwork
from repro.queueing.station import Station


def shared_queue_network(windows=(2, 3)):
    stations = [Station.fcfs("s1"), Station.fcfs("s2"), Station.fcfs("m")]
    chains = [
        ClosedChain.from_route(
            "c1", ["s1", "m"], [0.1, 0.04], window=windows[0], source_station="s1"
        ),
        ClosedChain.from_route(
            "c2", ["s2", "m"], [0.07, 0.04], window=windows[1], source_station="s2"
        ),
    ]
    return ClosedNetwork.build(stations, chains)


class TestAgainstExactMva:
    @pytest.mark.parametrize("windows", [(1, 1), (2, 3), (4, 4), (1, 5)])
    def test_throughputs_agree(self, windows):
        net = shared_queue_network(windows)
        conv = solve_convolution(net)
        mva = solve_mva_exact(net)
        np.testing.assert_allclose(conv.throughputs, mva.throughputs, rtol=1e-9)

    @pytest.mark.parametrize("windows", [(2, 3), (3, 3)])
    def test_queue_lengths_agree(self, windows):
        net = shared_queue_network(windows)
        conv = solve_convolution(net)
        mva = solve_mva_exact(net)
        np.testing.assert_allclose(
            conv.queue_lengths, mva.queue_lengths, atol=1e-9
        )

    def test_thesis_network_agrees(self, two_class_net):
        conv = solve_convolution(two_class_net)
        mva = solve_mva_exact(two_class_net)
        np.testing.assert_allclose(conv.throughputs, mva.throughputs, rtol=1e-9)
        np.testing.assert_allclose(
            conv.queue_lengths, mva.queue_lengths, atol=1e-8
        )


class TestSingleChainReduction:
    def test_matches_buzen(self):
        demands = [0.1, 0.25, 0.05]
        stations = [Station.fcfs(f"q{i}") for i in range(3)]
        chain = ClosedChain.from_route("c", ["q0", "q1", "q2"], demands, window=6)
        net = ClosedNetwork.build(stations, [chain])
        conv = solve_convolution(net)
        reference = buzen(demands, 6)
        assert conv.throughputs[0] == pytest.approx(reference.throughput(), rel=1e-10)


class TestNormalizationConstants:
    def test_lattice_shape(self):
        net = shared_queue_network((2, 3))
        g, scale = normalization_constants(net)
        assert g.shape == (3, 4)
        assert g[0, 0] == pytest.approx(1.0)

    def test_all_positive(self):
        net = shared_queue_network((3, 3))
        g, _ = normalization_constants(net)
        assert np.all(g > 0)

    def test_scaling_cancels_in_throughput(self):
        net = shared_queue_network((2, 2))
        default = solve_convolution(net)
        g, scale = normalization_constants(net, scale=np.array([1.0, 1.0]))
        target = (2, 2)
        lam0 = g[1, 2] / g[target]
        assert lam0 == pytest.approx(default.throughputs[0], rel=1e-9)


class TestDelayStations:
    def test_mixed_delay_fixed_agrees_with_mva(self):
        stations = [Station.fcfs("q"), Station.delay("think"), Station.fcfs("r")]
        chains = [
            ClosedChain.from_route("c1", ["q", "think"], [0.1, 0.6], window=3),
            ClosedChain.from_route("c2", ["r", "think", "q"], [0.2, 0.6, 0.1], window=2),
        ]
        net = ClosedNetwork.build(stations, chains)
        conv = solve_convolution(net)
        mva = solve_mva_exact(net)
        np.testing.assert_allclose(conv.throughputs, mva.throughputs, rtol=1e-9)
        np.testing.assert_allclose(conv.queue_lengths, mva.queue_lengths, atol=1e-9)


class TestGuards:
    def test_multiserver_rejected(self):
        stations = [Station.fcfs("q", servers=3)]
        chain = ClosedChain.from_route("c", ["q"], [0.1], window=1)
        net = ClosedNetwork.build(stations, [chain])
        with pytest.raises(SolverError):
            solve_convolution(net)

    def test_huge_lattice_rejected(self):
        net = shared_queue_network((1, 1)).with_populations([3000, 3000])
        with pytest.raises(SolverError):
            solve_convolution(net)
