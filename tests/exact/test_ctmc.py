"""Unit tests for the global-balance CTMC ground-truth solver."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.exact.buzen import buzen
from repro.exact.ctmc import solve_ctmc
from repro.exact.mva_exact import solve_mva_exact
from repro.queueing.chain import ClosedChain
from repro.queueing.network import ClosedNetwork
from repro.queueing.station import Station


def single_chain_net(demands, window):
    stations = [Station.fcfs(f"q{i}") for i in range(len(demands))]
    chain = ClosedChain.from_route(
        "c", [s.name for s in stations], demands, window=window
    )
    return ClosedNetwork.build(stations, [chain])


class TestSingleChain:
    def test_two_queue_cycle_matches_buzen(self):
        net = single_chain_net([0.2, 0.35], 3)
        ctmc = solve_ctmc(net)
        reference = buzen([0.2, 0.35], 3)
        assert ctmc.throughputs[0] == pytest.approx(reference.throughput(), rel=1e-9)
        for i in range(2):
            assert ctmc.queue_lengths[0, i] == pytest.approx(
                reference.mean_queue_length(i), rel=1e-9
            )

    def test_three_queue_cycle_matches_exact_mva(self):
        net = single_chain_net([0.1, 0.3, 0.05], 4)
        ctmc = solve_ctmc(net)
        mva = solve_mva_exact(net)
        np.testing.assert_allclose(ctmc.throughputs, mva.throughputs, rtol=1e-9)
        np.testing.assert_allclose(ctmc.queue_lengths, mva.queue_lengths, atol=1e-9)


class TestMultichain:
    def test_two_chain_shared_queue_matches_product_form(self, tiny_two_chain_net):
        ctmc = solve_ctmc(tiny_two_chain_net)
        mva = solve_mva_exact(tiny_two_chain_net)
        np.testing.assert_allclose(ctmc.throughputs, mva.throughputs, rtol=1e-8)
        np.testing.assert_allclose(ctmc.queue_lengths, mva.queue_lengths, atol=1e-8)

    def test_populations_conserved(self, tiny_two_chain_net):
        ctmc = solve_ctmc(tiny_two_chain_net)
        np.testing.assert_allclose(
            ctmc.queue_lengths.sum(axis=1),
            tiny_two_chain_net.populations,
            rtol=1e-9,
        )

    def test_delay_station_supported(self):
        stations = [Station.fcfs("q"), Station.delay("think")]
        chain = ClosedChain.from_route("c", ["q", "think"], [0.3, 1.0], window=3)
        net = ClosedNetwork.build(stations, [chain])
        ctmc = solve_ctmc(net)
        mva = solve_mva_exact(net)
        np.testing.assert_allclose(ctmc.throughputs, mva.throughputs, rtol=1e-9)


class TestGuards:
    def test_revisiting_route_rejected(self):
        stations = [Station.fcfs("a"), Station.fcfs("b")]
        chain = ClosedChain(
            name="loop",
            visits=("a", "b", "a"),
            service_times=(0.1, 0.1, 0.1),
            population=1,
        )
        net = ClosedNetwork.build(stations, [chain])
        with pytest.raises(SolverError):
            solve_ctmc(net)

    def test_state_space_guard(self):
        net = single_chain_net([0.1] * 10, 1).with_populations([60])
        with pytest.raises(SolverError):
            solve_ctmc(net)
