"""Unit tests for Buzen's single-chain convolution algorithm."""

import numpy as np
import pytest

from repro.errors import ModelError, SolverError
from repro.exact.buzen import buzen, buzen_stations
from repro.queueing.station import Station


class TestNormalizationConstants:
    def test_single_fixed_rate_station(self):
        # One station: G(k) = rho^k.
        result = buzen([0.5], 4)
        np.testing.assert_allclose(result.constants, [1, 0.5, 0.25, 0.125, 0.0625])

    def test_two_station_constants_by_hand(self):
        # G(k) = sum_{i=0..k} rho1^i rho2^(k-i)
        rho1, rho2 = 0.4, 0.6
        result = buzen([rho1, rho2], 3)
        expected = [
            1.0,
            rho1 + rho2,
            rho1**2 + rho1 * rho2 + rho2**2,
            rho1**3 + rho1**2 * rho2 + rho1 * rho2**2 + rho2**3,
        ]
        np.testing.assert_allclose(result.constants, expected)

    def test_station_order_irrelevant(self):
        a = buzen([0.3, 0.7, 0.5], 5).constants
        b = buzen([0.5, 0.3, 0.7], 5).constants
        np.testing.assert_allclose(a, b)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ModelError):
            buzen([[0.1]], 2)  # not 1-D
        with pytest.raises(ModelError):
            buzen([-0.1], 2)
        with pytest.raises(ModelError):
            buzen([0.1], -1)


class TestDerivedMeasures:
    def test_balanced_network_throughput(self):
        # p identical fixed-rate queues, demand s: lambda(D) = D/(s(p+D-1)).
        p, s, d = 3, 0.2, 5
        result = buzen([s] * p, d)
        assert result.throughput() == pytest.approx(d / (s * (p + d - 1)))

    def test_balanced_network_queue_lengths(self):
        # Symmetric: N_i = D / p.
        p, d = 4, 6
        result = buzen([0.1] * p, d)
        for station in range(p):
            assert result.mean_queue_length(station) == pytest.approx(d / p)

    def test_utilization_is_demand_times_throughput(self):
        result = buzen([0.2, 0.3], 4)
        lam = result.throughput()
        assert result.utilization(0) == pytest.approx(0.2 * lam)
        assert result.utilization(1) == pytest.approx(0.3 * lam)

    def test_queue_lengths_sum_to_population(self):
        demands = [0.15, 0.3, 0.08]
        for d in (1, 3, 6):
            result = buzen(demands, d)
            total = sum(result.mean_queue_length(i) for i in range(3))
            assert total == pytest.approx(d)

    def test_queue_length_distribution_is_pmf(self):
        result = buzen([0.2, 0.4], 5)
        pmf = result.queue_length_distribution(1)
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(pmf >= 0)
        mean = float(np.dot(np.arange(6), pmf))
        assert mean == pytest.approx(result.mean_queue_length(1))

    def test_zero_population_throughput_zero(self):
        assert buzen([0.5], 0).throughput() == 0.0


class TestGeneralStations:
    def test_delay_station_changes_constants(self):
        fixed = buzen([0.5, 0.5], 3)
        from repro.queueing.capacity import infinite_server_coefficients

        delayed = buzen([0.5, 0.5], 3, [None, infinite_server_coefficients(3)])
        assert not np.allclose(fixed.constants, delayed.constants)

    def test_buzen_stations_dispatches_types(self):
        stations = [Station.fcfs("q"), Station.delay("think")]
        result = buzen_stations([0.5, 1.0], 4, stations)
        assert result.fixed_rate[0]
        assert not result.fixed_rate[1]

    def test_per_station_measures_require_fixed_rate(self):
        stations = [Station.fcfs("q"), Station.delay("think")]
        result = buzen_stations([0.5, 1.0], 4, stations)
        with pytest.raises(SolverError):
            result.mean_queue_length(1)

    def test_machine_repairman_against_closed_form(self):
        # D machines (IS station, mean 1/lam think) + 1 repairman
        # (fixed-rate, mean 1/mu): classic M/M/1//D.  Utilisation of the
        # repairman must satisfy the finite-source Erlang formula.
        think, repair, d = 2.0, 0.5, 4
        from repro.queueing.capacity import infinite_server_coefficients

        result = buzen(
            [repair, think], d, [None, infinite_server_coefficients(d)]
        )
        lam = result.throughput()
        # Cross-check against direct state enumeration of M/M/1//D.
        import math

        # pi(k) ~ (D!/(D-k)!) (repair/think)^k for k customers at repairman.
        weights = [
            math.factorial(d) / math.factorial(d - k) * (repair / think) ** k
            for k in range(d + 1)
        ]
        total = sum(weights)
        busy = 1.0 - weights[0] / total
        assert repair * lam == pytest.approx(busy, rel=1e-12)
