"""Cross-validation: every exact solver agrees on shared model classes.

The strongest correctness evidence in the suite: the CTMC global-balance
solver knows nothing about product forms, convolution nothing about MVA,
yet all three must coincide on product-form networks.
"""

import numpy as np
import pytest

from repro.exact.convolution import solve_convolution
from repro.exact.ctmc import solve_ctmc
from repro.exact.gordon_newell import solve_gordon_newell
from repro.exact.mva_exact import solve_mva_exact
from repro.queueing.chain import ClosedChain
from repro.queueing.network import ClosedNetwork
from repro.queueing.station import Station


def three_chain_network():
    stations = [
        Station.fcfs("s1"),
        Station.fcfs("s2"),
        Station.fcfs("s3"),
        Station.fcfs("m1"),
        Station.fcfs("m2"),
    ]
    chains = [
        ClosedChain.from_route("c1", ["s1", "m1"], [0.09, 0.03], window=2),
        ClosedChain.from_route("c2", ["s2", "m1", "m2"], [0.12, 0.03, 0.05], window=2),
        ClosedChain.from_route("c3", ["s3", "m2"], [0.06, 0.05], window=1),
    ]
    return ClosedNetwork.build(stations, chains)


ALL_MULTICHAIN_SOLVERS = [solve_mva_exact, solve_convolution, solve_ctmc]


class TestThreeWayAgreement:
    @pytest.mark.parametrize("solver", ALL_MULTICHAIN_SOLVERS[1:])
    def test_three_chain_agreement(self, solver):
        net = three_chain_network()
        reference = solve_mva_exact(net)
        candidate = solver(net)
        np.testing.assert_allclose(
            candidate.throughputs, reference.throughputs, rtol=1e-8
        )
        np.testing.assert_allclose(
            candidate.queue_lengths, reference.queue_lengths, atol=1e-8
        )

    @pytest.mark.parametrize("solver", ALL_MULTICHAIN_SOLVERS[1:])
    def test_tiny_two_chain_agreement(self, tiny_two_chain_net, solver):
        reference = solve_mva_exact(tiny_two_chain_net)
        candidate = solver(tiny_two_chain_net)
        np.testing.assert_allclose(
            candidate.throughputs, reference.throughputs, rtol=1e-8
        )

    def test_single_chain_four_way(self, single_chain_cycle):
        solutions = [
            solve_mva_exact(single_chain_cycle),
            solve_convolution(single_chain_cycle),
            solve_ctmc(single_chain_cycle),
            solve_gordon_newell(single_chain_cycle),
        ]
        reference = solutions[0]
        for candidate in solutions[1:]:
            np.testing.assert_allclose(
                candidate.throughputs, reference.throughputs, rtol=1e-8
            )
            np.testing.assert_allclose(
                candidate.queue_lengths, reference.queue_lengths, atol=1e-8
            )

    def test_thesis_network_exact_pair(self, two_class_net):
        conv = solve_convolution(two_class_net)
        mva = solve_mva_exact(two_class_net)
        np.testing.assert_allclose(conv.throughputs, mva.throughputs, rtol=1e-9)
