"""Unit tests for the Gordon–Newell single-chain solver."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.exact.gordon_newell import solve_gordon_newell
from repro.exact.mva_exact import solve_mva_exact
from repro.queueing.chain import ClosedChain
from repro.queueing.network import ClosedNetwork
from repro.queueing.station import Station


def cycle(demands, window, station_types=None):
    if station_types is None:
        stations = [Station.fcfs(f"q{i}") for i in range(len(demands))]
    else:
        stations = station_types
    chain = ClosedChain.from_route(
        "c", [s.name for s in stations], demands, window=window
    )
    return ClosedNetwork.build(stations, [chain])


class TestFixedRateNetworks:
    def test_matches_exact_mva(self):
        net = cycle([0.1, 0.4, 0.07], 5)
        gn = solve_gordon_newell(net)
        mva = solve_mva_exact(net)
        np.testing.assert_allclose(gn.throughputs, mva.throughputs, rtol=1e-10)
        np.testing.assert_allclose(gn.queue_lengths, mva.queue_lengths, atol=1e-9)

    def test_large_population_is_stable_numerically(self):
        net = cycle([0.02, 0.05, 0.02], 200)
        gn = solve_gordon_newell(net)
        # Bottleneck-bound throughput: 1/0.05 = 20.
        assert gn.throughputs[0] == pytest.approx(20.0, rel=1e-6)

    def test_population_conserved(self):
        net = cycle([0.3, 0.1], 7)
        gn = solve_gordon_newell(net)
        assert gn.queue_lengths.sum() == pytest.approx(7.0)


class TestGeneralStations:
    def test_multiserver_station(self):
        stations = [Station.fcfs("q", servers=2), Station.fcfs("r")]
        net = cycle([0.4, 0.1], 4, stations)
        gn = solve_gordon_newell(net)
        # Sanity: population conserved, throughput above the 1-server case.
        assert gn.queue_lengths.sum() == pytest.approx(4.0, rel=1e-9)
        single = solve_gordon_newell(cycle([0.4, 0.1], 4))
        assert gn.throughputs[0] > single.throughputs[0]

    def test_delay_station_against_mva(self):
        stations = [Station.fcfs("q"), Station.delay("think")]
        net = cycle([0.25, 1.5], 6, stations)
        gn = solve_gordon_newell(net)
        mva = solve_mva_exact(net)
        np.testing.assert_allclose(gn.throughputs, mva.throughputs, rtol=1e-10)
        np.testing.assert_allclose(gn.queue_lengths, mva.queue_lengths, atol=1e-9)


class TestGuards:
    def test_multichain_rejected(self, tiny_two_chain_net):
        with pytest.raises(SolverError):
            solve_gordon_newell(tiny_two_chain_net)
