"""Unit tests for exact marginal queue-length distributions."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.exact.buzen import buzen
from repro.exact.convolution import normalization_constants
from repro.exact.marginals import (
    complement_constants,
    station_composition_distribution,
    station_queue_distribution,
)
from repro.exact.mva_exact import solve_mva_exact
from repro.queueing.chain import ClosedChain
from repro.queueing.network import ClosedNetwork
from repro.queueing.station import Station


class TestComplementConstants:
    def test_reconvolving_recovers_full_lattice(self, tiny_two_chain_net):
        net = tiny_two_chain_net
        g, scale = normalization_constants(net)
        station = net.station_id("shared")
        g_minus, _ = complement_constants(net, station, g, scale)
        scaled = net.demands[:, station] / scale
        # g = g_minus convolved with the station's fixed-rate series.
        rebuilt = g_minus.copy()
        it = np.nditer(rebuilt, flags=["multi_index"], op_flags=["readwrite"])
        for cell in it:
            index = it.multi_index
            total = float(cell)
            for w in range(net.num_chains):
                if index[w] > 0:
                    predecessor = list(index)
                    predecessor[w] -= 1
                    total += scaled[w] * rebuilt[tuple(predecessor)]
            cell[...] = total
        np.testing.assert_allclose(rebuilt, g, rtol=1e-9)

    def test_is_station_rejected(self):
        stations = [Station.fcfs("q"), Station.delay("d")]
        chain = ClosedChain.from_route("c", ["q", "d"], [0.1, 1.0], window=2)
        net = ClosedNetwork.build(stations, [chain])
        with pytest.raises(SolverError):
            complement_constants(net, net.station_id("d"))


class TestDistributions:
    def test_pmf_normalised_and_matches_mean(self, two_class_net):
        exact = solve_mva_exact(two_class_net)
        for name in ("ch1", "ch2", "ch6", "src:class1"):
            station = two_class_net.station_id(name)
            pmf = station_queue_distribution(two_class_net, station)
            assert pmf.sum() == pytest.approx(1.0, rel=1e-9)
            mean = float(np.dot(np.arange(pmf.shape[0]), pmf))
            assert mean == pytest.approx(
                exact.station_queue_length(station), rel=1e-8
            )

    def test_single_chain_matches_buzen_pmf(self, single_chain_cycle):
        net = single_chain_cycle
        station = net.station_id("l1")
        pmf = station_queue_distribution(net, station)
        demands = net.demands[0]
        scale = demands.max()
        reference = buzen(demands / scale, int(net.populations[0]))
        expected = reference.queue_length_distribution(station)
        np.testing.assert_allclose(pmf[: expected.shape[0]], expected, atol=1e-10)

    def test_composition_marginalises_consistently(self, tiny_two_chain_net):
        net = tiny_two_chain_net
        station = net.station_id("shared")
        composition = station_composition_distribution(net, station)
        exact = solve_mva_exact(net)
        # Per-chain means from the composition pmf match exact MVA.
        for r in range(net.num_chains):
            mean_r = sum(m[r] * p for m, p in composition.items())
            assert mean_r == pytest.approx(
                exact.queue_lengths[r, station], rel=1e-8
            )

    def test_probabilities_nonnegative(self, two_class_net):
        station = two_class_net.station_id("ch3")
        composition = station_composition_distribution(two_class_net, station)
        assert all(p >= -1e-12 for p in composition.values())

    def test_window_bounds_respected(self, tiny_two_chain_net):
        """No probability mass beyond each chain's window at any station."""
        net = tiny_two_chain_net
        station = net.station_id("shared")
        composition = station_composition_distribution(net, station)
        for m, p in composition.items():
            if any(
                m[r] > net.populations[r] for r in range(net.num_chains)
            ):
                assert p == pytest.approx(0.0, abs=1e-12)
