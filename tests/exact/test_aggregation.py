"""Unit tests for Norton (flow-equivalent) aggregation."""

import numpy as np
import pytest

from repro.errors import ModelError, SolverError
from repro.exact.aggregation import aggregate_single_chain, flow_equivalent_rates
from repro.exact.gordon_newell import solve_gordon_newell
from repro.queueing.chain import ClosedChain
from repro.queueing.network import ClosedNetwork
from repro.queueing.station import Station


def cycle(demands=(0.1, 0.05, 0.2, 0.08), window=5):
    stations = [Station.fcfs(f"q{i}") for i in range(len(demands))]
    chain = ClosedChain.from_route(
        "c", [s.name for s in stations], list(demands), window=window
    )
    return ClosedNetwork.build(stations, [chain])


class TestFlowEquivalentRates:
    def test_rates_match_subnetwork_throughput(self):
        net = cycle()
        rates = flow_equivalent_rates(net, ["q1", "q2"], 4)
        from repro.exact.buzen import buzen

        scale = 0.2
        reference = buzen(np.array([0.05, 0.2]) / scale, 4)
        for k in range(1, 5):
            assert rates[k - 1] == pytest.approx(
                reference.throughput(k) / scale, rel=1e-10
            )

    def test_rates_nondecreasing(self):
        net = cycle()
        rates = flow_equivalent_rates(net, ["q0", "q1"], 6)
        assert np.all(np.diff(rates) >= -1e-12)

    def test_unknown_station_rejected(self):
        with pytest.raises(ModelError):
            flow_equivalent_rates(cycle(), ["ghost"], 3)

    def test_multichain_rejected(self, tiny_two_chain_net):
        with pytest.raises(SolverError):
            flow_equivalent_rates(tiny_two_chain_net, ["shared"], 2)


class TestNortonTheorem:
    @pytest.mark.parametrize(
        "subnetwork", [["q1", "q2"], ["q0"], ["q0", "q1", "q2"]]
    )
    def test_throughput_preserved_exactly(self, subnetwork):
        net = cycle()
        original = solve_gordon_newell(net)
        reduced = solve_gordon_newell(aggregate_single_chain(net, subnetwork))
        assert reduced.throughputs[0] == pytest.approx(
            original.throughputs[0], rel=1e-10
        )

    def test_kept_station_queue_lengths_preserved(self):
        net = cycle()
        original = solve_gordon_newell(net)
        aggregated = aggregate_single_chain(net, ["q1", "q2"])
        reduced = solve_gordon_newell(aggregated)
        for name in ("q0", "q3"):
            assert reduced.queue_lengths[0, aggregated.station_id(name)] == (
                pytest.approx(
                    original.queue_lengths[0, net.station_id(name)], rel=1e-9
                )
            )

    def test_population_conserved_in_reduced_network(self):
        net = cycle(window=6)
        reduced = solve_gordon_newell(aggregate_single_chain(net, ["q2", "q3"]))
        assert reduced.queue_lengths.sum() == pytest.approx(6.0, rel=1e-9)

    def test_fes_station_has_rate_multipliers(self):
        aggregated = aggregate_single_chain(cycle(), ["q1", "q2"])
        fes = aggregated.stations[aggregated.station_id("fes")]
        assert fes.rate_multipliers is not None
        assert len(fes.rate_multipliers) == 5  # the window size

    def test_source_inside_subnetwork_dropped(self):
        stations = [Station.fcfs("src"), Station.fcfs("a"), Station.fcfs("b")]
        chain = ClosedChain.from_route(
            "c", ["src", "a", "b"], [0.1, 0.05, 0.08], window=3,
            source_station="src",
        )
        net = ClosedNetwork.build(stations, [chain])
        aggregated = aggregate_single_chain(net, ["src", "a"])
        assert aggregated.chains[0].source_station is None

    def test_empty_subnetwork_rejected(self):
        with pytest.raises(ModelError):
            aggregate_single_chain(cycle(), [])
