"""Sub-lattice memoisation for exact MVA (``exact/lattice_cache.py``).

Exact MVA's recursion visits every population vector below the target;
the per-level station totals depend only on the vector and the network,
never on which target requested them (the prefix-lattice property).  A
shared :class:`LatticeCache` must therefore be *bit-exact*: a cached-row
solve returns byte-identical arrays to a cold solve.
"""

import numpy as np
import pytest

from repro.exact.lattice_cache import LatticeCache
from repro.exact.mva_exact import solve_mva_exact
from repro.netmodel.examples import arpanet_fragment, canadian_two_class


@pytest.fixture
def network():
    return canadian_two_class(18.0, 18.0).with_populations([4, 5])


class TestBitExactness:
    def test_cached_solve_identical(self, network):
        cold = solve_mva_exact(network, backend="vectorized")
        cache = LatticeCache()
        first = solve_mva_exact(network, backend="vectorized", lattice_cache=cache)
        second = solve_mva_exact(network, backend="vectorized", lattice_cache=cache)
        for warm in (first, second):
            assert np.array_equal(warm.throughputs, cold.throughputs)
            assert np.array_equal(warm.queue_lengths, cold.queue_lengths)
            assert np.array_equal(warm.waiting_times, cold.waiting_times)

    def test_incremental_population_bit_exact(self, network):
        cache = LatticeCache()
        solve_mva_exact(network, backend="vectorized", lattice_cache=cache)
        bigger = network.with_populations([5, 5])
        warm = solve_mva_exact(bigger, backend="vectorized", lattice_cache=cache)
        cold = solve_mva_exact(bigger, backend="vectorized")
        assert np.array_equal(warm.throughputs, cold.throughputs)
        assert np.array_equal(warm.queue_lengths, cold.queue_lengths)


class TestReuseAccounting:
    def test_second_solve_computes_only_target(self, network):
        cache = LatticeCache()
        solve_mva_exact(network, backend="vectorized", lattice_cache=cache)
        computed_first = cache.stats()["computed"]
        solve_mva_exact(network, backend="vectorized", lattice_cache=cache)
        # The target row is recomputed (it is never cached); everything
        # below it is a hit.
        assert cache.stats()["computed"] == computed_first + 1
        assert cache.stats()["hits"] > 0

    def test_population_excluded_from_token(self, network):
        cache = LatticeCache()
        solve_mva_exact(network, backend="vectorized", lattice_cache=cache)
        repopulated = network.with_populations([2, 2])
        solve_mva_exact(repopulated, backend="vectorized", lattice_cache=cache)
        assert cache.stats()["resets"] == 0
        assert cache.stats()["hits"] > 0

    def test_different_network_resets(self, network):
        cache = LatticeCache()
        solve_mva_exact(network, backend="vectorized", lattice_cache=cache)
        other = arpanet_fragment().with_populations([2, 2, 2, 2])
        warm = solve_mva_exact(other, backend="vectorized", lattice_cache=cache)
        assert cache.stats()["resets"] == 1
        cold = solve_mva_exact(other, backend="vectorized")
        assert np.array_equal(warm.throughputs, cold.throughputs)

    def test_capacity_cap_respected(self, network):
        cache = LatticeCache(max_vectors=3)
        solve_mva_exact(network, backend="vectorized", lattice_cache=cache)
        assert len(cache) <= 3

    def test_scalar_backend_ignores_cache(self, network):
        cache = LatticeCache()
        cold = solve_mva_exact(network, backend="scalar")
        warm = solve_mva_exact(network, backend="scalar", lattice_cache=cache)
        np.testing.assert_allclose(warm.throughputs, cold.throughputs, rtol=1e-12)
        assert len(cache) == 0
