"""Unit tests for multiclass open product-form networks."""

import numpy as np
import pytest

from repro.errors import ModelError, StabilityError
from repro.exact.open_multiclass import (
    open_view_of_network,
    solve_open_multiclass,
)
from repro.netmodel.examples import canadian_topology, two_class_traffic
from repro.queueing.station import Discipline, Station


class TestSolveOpenMulticlass:
    def test_single_class_single_station_is_mm1(self):
        result = solve_open_multiclass(
            ["q"], [Station.fcfs("q")], np.array([[0.05]]), [10.0]
        )
        rho = 0.5
        assert result.utilizations[0] == pytest.approx(rho)
        assert result.queue_lengths[0, 0] == pytest.approx(rho / (1 - rho))
        assert result.class_delays[0] == pytest.approx(0.05 / (1 - rho))

    def test_two_classes_share_capacity(self):
        demands = np.array([[0.04], [0.02]])
        result = solve_open_multiclass(
            ["q"], [Station.fcfs("q")], demands, [10.0, 10.0]
        )
        rho_total = 0.4 + 0.2
        # Per-class queue lengths split proportionally to per-class rho.
        assert result.queue_lengths[0, 0] == pytest.approx(0.4 / (1 - rho_total))
        assert result.queue_lengths[1, 0] == pytest.approx(0.2 / (1 - rho_total))

    def test_is_station_poisson_law(self):
        result = solve_open_multiclass(
            ["think"], [Station.delay("think")], np.array([[2.0]]), [3.0]
        )
        assert result.queue_lengths[0, 0] == pytest.approx(6.0)
        assert result.class_delays[0] == pytest.approx(2.0)

    def test_instability_raises(self):
        with pytest.raises(StabilityError):
            solve_open_multiclass(
                ["q"], [Station.fcfs("q")], np.array([[0.05]]), [25.0]
            )

    def test_multiserver_rejected(self):
        with pytest.raises(ModelError):
            solve_open_multiclass(
                ["q"], [Station.fcfs("q", servers=2)], np.array([[0.01]]), [1.0]
            )

    def test_shape_validation(self):
        with pytest.raises(ModelError):
            solve_open_multiclass(
                ["q"], [Station.fcfs("q")], np.array([[0.01]]), [1.0, 2.0]
            )


class TestOpenViewOfNetwork:
    def test_canadian_two_class_light_load(self):
        result = open_view_of_network(
            canadian_topology(), two_class_traffic(10.0, 10.0)
        )
        # Shared trunks carry both classes: rho = (10+10)*0.02 = 0.4.
        trunk = result.station_names.index("ch1")
        assert result.utilizations[trunk] == pytest.approx(0.4)
        # Tail channels carry one class: rho = 10*0.04 = 0.4 too.
        tail = result.station_names.index("ch6")
        assert result.utilizations[tail] == pytest.approx(0.4)

    def test_open_delay_below_closed_delay_at_light_load(self):
        """With generous windows and light load, the closed (windowed)
        network's delay approaches the open prediction from above."""
        from repro.exact.mva_exact import solve_mva_exact
        from repro.netmodel.examples import canadian_two_class

        open_result = open_view_of_network(
            canadian_topology(), two_class_traffic(5.0, 5.0)
        )
        closed = solve_mva_exact(canadian_two_class(5.0, 5.0, windows=(12, 12)))
        assert closed.mean_network_delay == pytest.approx(
            open_result.mean_network_delay, rel=0.1
        )

    def test_saturated_load_unstable(self):
        with pytest.raises(StabilityError):
            open_view_of_network(
                canadian_topology(), two_class_traffic(30.0, 30.0)
            )

    def test_power_defined(self):
        result = open_view_of_network(
            canadian_topology(), two_class_traffic(10.0, 10.0)
        )
        assert result.power > 0
        assert result.network_throughput == pytest.approx(20.0)
