"""Concurrency safety of the shared search state.

Parallel batch evaluation (``WindowObjective.batch_solve`` on a process
pool) funnels results back into one :class:`EvaluationCache` and, when
checkpointing, one :class:`CheckpointManager` — both may be hit from the
search thread and callback contexts concurrently.  These tests hammer the
two from many threads and require the invariants the search relies on:

* cache values/history/counters stay mutually consistent, each distinct
  point is evaluated exactly once, racing ``prime`` calls elect a single
  winner;
* a checkpoint flush racing concurrent inserts always writes a loadable,
  internally consistent file;
* a parallel run interrupted mid-batch resumes from its checkpoint to
  the same optimum as an uninterrupted serial run;
* checkpoints are backend-agnostic: a scalar-populated cache is replayed
  for free under ``--solver-backend vectorized``.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.windim import windim
from repro.errors import SearchError
from repro.netmodel.examples import canadian_two_class
from repro.resilience.checkpoint import CheckpointManager, load_checkpoint
from repro.search.cache import EvaluationCache

THREADS = 8


def _run_threads(workers):
    threads = [threading.Thread(target=w) for w in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestCacheThreadSafety:
    def test_concurrent_lookups_evaluate_each_point_once(self):
        calls = []
        cache = EvaluationCache(lambda p: calls.append(p) or float(sum(p)))
        points = [(i, i + 1) for i in range(40)]

        def worker(offset):
            def run():
                for point in points[offset:] + points[:offset]:
                    assert cache(point) == float(sum(point))

            return run

        _run_threads([worker(i) for i in range(THREADS)])

        assert len(cache.values) == len(points)
        assert cache.misses == len(points)
        assert len(calls) == len(points), "an objective call was duplicated"
        assert cache.hits == THREADS * len(points) - len(points)
        assert len(cache.history) == len(points)
        assert dict(cache.history) == cache.values

    def test_racing_prime_elects_a_single_winner(self):
        cache = EvaluationCache(lambda p: 0.0)
        wins = []

        def worker(value):
            def run():
                if cache.prime((3, 4), float(value)):
                    wins.append(value)

            return run

        _run_threads([worker(v) for v in range(THREADS)])

        assert len(wins) == 1
        assert cache.misses == 1
        assert cache.values[(3, 4)] == float(wins[0])
        assert cache.history == [((3, 4), float(wins[0]))]

    def test_mixed_prime_and_call_keep_invariants(self):
        cache = EvaluationCache(lambda p: float(sum(p)))
        points = [(i,) for i in range(60)]

        def caller():
            for point in points:
                cache(point)

        def primer():
            for point in points:
                cache.prime(point, float(sum(point)))

        _run_threads([caller, primer] * (THREADS // 2))

        assert len(cache.values) == len(points)
        assert cache.misses == len(points)
        assert len(cache.history) == len(points)
        assert dict(cache.history) == cache.values
        assert all(cache.values[p] == float(sum(p)) for p in points)


class TestCheckpointFlushConcurrency:
    def test_flush_racing_batch_inserts_always_writes_valid_files(
        self, tmp_path
    ):
        """Flushes interleaved with ``prime`` bursts must never produce a
        torn or internally inconsistent checkpoint."""
        cache = EvaluationCache(lambda p: float(sum(p)))
        path = str(tmp_path / "race.ckpt")
        manager = CheckpointManager(path, every=1)
        manager.attach(cache)
        errors = []
        stop = threading.Event()

        def producer():
            for i in range(500):
                cache.prime((i, i), float(i))
            stop.set()

        def flusher():
            while not stop.is_set():
                try:
                    manager.flush()
                except Exception as exc:  # pragma: no cover - the failure
                    errors.append(exc)
                    stop.set()

        def reader():
            while not stop.is_set():
                try:
                    load_checkpoint(path)
                except SearchError as exc:
                    if "cannot read" not in str(exc):  # missing file is fine
                        errors.append(exc)
                        stop.set()
                except Exception as exc:  # pragma: no cover - the failure
                    errors.append(exc)
                    stop.set()

        _run_threads([producer, flusher, flusher, reader])
        assert not errors

        manager.flush()
        final = load_checkpoint(path)
        assert len(final.cache_entries) == 500
        assert final.evaluations == 500
        assert dict(final.cache_entries) == cache.values

    def test_snapshot_is_mutually_consistent(self):
        cache = EvaluationCache(lambda p: float(sum(p)))
        for i in range(10):
            cache((i, 0))
        entries, best_point, best_value, evaluations = cache.snapshot()
        assert dict(entries) == cache.values
        assert (best_point, best_value) == cache.best()
        assert evaluations == cache.evaluations


class TestParallelCheckpointResume:
    NETWORK_ARGS = (18.0, 18.0)

    def test_mid_batch_interrupt_resumes_to_same_optimum(self, tmp_path):
        """Exhaust the evaluation budget mid-way through a parallel run,
        then resume from the checkpoint: same optimum as serial."""
        network = canadian_two_class(*self.NETWORK_ARGS)
        baseline = windim(network, max_window=16)

        path = str(tmp_path / "parallel.ckpt")
        cut = 6
        assert baseline.search.evaluations > cut
        partial = windim(
            network,
            max_window=16,
            workers=2,
            checkpoint_path=path,
            checkpoint_every=1,
            max_evaluations=cut,
        )
        assert partial.status == "budget_exhausted"
        interrupted = load_checkpoint(path)
        assert 0 < len(interrupted.cache_entries) <= cut

        resumed = windim(
            network,
            max_window=16,
            workers=2,
            checkpoint_path=path,
            resume=True,
        )
        assert resumed.windows == baseline.windows
        assert resumed.power == pytest.approx(baseline.power)
        assert resumed.seeded_evaluations == len(interrupted.cache_entries)

    def test_scalar_checkpoint_replays_free_under_vectorized(self, tmp_path):
        """Regression: cache keys carry no backend tag, so a checkpoint
        written by a scalar run must resume for free under the vectorized
        backend (and land on the same optimum)."""
        network = canadian_two_class(*self.NETWORK_ARGS)
        path = str(tmp_path / "scalar.ckpt")
        scalar = windim(
            network, max_window=16, backend="scalar", checkpoint_path=path
        )
        resumed = windim(
            network,
            max_window=16,
            backend="vectorized",
            checkpoint_path=path,
            resume=True,
        )
        assert resumed.windows == scalar.windows
        assert resumed.seeded_evaluations == scalar.search.evaluations
        assert resumed.search.evaluations == 0, (
            "a backend-tagged cache key forced re-evaluation"
        )
