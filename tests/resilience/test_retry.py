"""The unified RetryPolicy: schedules, jitter determinism, call()."""

import pytest

from repro.errors import SearchError
from repro.resilience import RetryPolicy


class TestSchedule:
    def test_allows_is_one_based(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows(1) and policy.allows(3)
        assert not policy.allows(4)

    def test_first_attempt_has_no_delay(self):
        policy = RetryPolicy(max_attempts=5, base_delay=1.0)
        assert policy.delay(1) == 0.0

    def test_exponential_backoff_capped(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=0.1, multiplier=2.0, max_delay=0.4
        )
        assert policy.delay(2) == pytest.approx(0.1)
        assert policy.delay(3) == pytest.approx(0.2)
        assert policy.delay(4) == pytest.approx(0.4)
        assert policy.delay(5) == pytest.approx(0.4)  # capped

    def test_zero_base_means_no_sleeping(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.0)
        assert all(policy.delay(n) == 0.0 for n in range(1, 5))

    def test_jitter_is_deterministic_per_salt(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.5)
        assert policy.delay(3, salt="a") == policy.delay(3, salt="a")
        assert policy.delay(3, salt="a") != policy.delay(3, salt="b")
        base = RetryPolicy(max_attempts=5, base_delay=0.1).delay(3)
        jittered = policy.delay(3, salt="a")
        assert base <= jittered <= base * 1.5


class TestCall:
    def test_retries_until_success(self):
        policy = RetryPolicy(max_attempts=3)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        assert policy.call(flaky, retry_on=(OSError,)) == "ok"
        assert len(attempts) == 3

    def test_reraises_after_exhaustion(self):
        policy = RetryPolicy(max_attempts=2)
        with pytest.raises(OSError, match="persistent"):
            policy.call(
                lambda: (_ for _ in ()).throw(OSError("persistent")),
                retry_on=(OSError,),
            )

    def test_non_matching_errors_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5)
        calls = []

        def wrong_kind():
            calls.append(1)
            raise SearchError("not retryable")

        with pytest.raises(SearchError):
            policy.call(wrong_kind, retry_on=(OSError,))
        assert len(calls) == 1

    def test_on_retry_hook_observes_each_failure(self):
        policy = RetryPolicy(max_attempts=3)
        seen = []

        def failing():
            raise OSError("x")

        with pytest.raises(OSError):
            policy.call(
                failing,
                retry_on=(OSError,),
                on_retry=lambda attempt, error: seen.append(attempt),
            )
        assert seen == [1, 2]

    def test_sleep_receives_backoff_delays(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, multiplier=3.0)
        slept = []

        def failing():
            raise OSError("x")

        with pytest.raises(OSError):
            policy.call(failing, retry_on=(OSError,), sleep=slept.append)
        assert slept == [pytest.approx(0.1), pytest.approx(0.3)]
