"""Deadline/evaluation-budget enforcement in the pattern search and windim."""

import pytest

from repro.core.windim import windim
from repro.errors import ReproError, SearchError
from repro.netmodel.examples import canadian_two_class
from repro.resilience import BudgetExhausted, SearchBudget
from repro.search.pattern import pattern_search
from repro.search.space import IntegerBox

SPACE = IntegerBox.windows(2, 10)


def _quadratic(point):
    # Smooth minimisation surface with optimum at (5, 5).
    return (point[0] - 5.0) ** 2 + (point[1] - 5.0) ** 2


class TestSearchBudget:
    def test_validation(self):
        with pytest.raises(SearchError):
            SearchBudget(max_seconds=0.0)
        with pytest.raises(SearchError):
            SearchBudget(max_evaluations=0)

    def test_unlimited_budget_never_exhausts(self):
        budget = SearchBudget()
        assert budget.exhausted_reason(10**9) is None
        budget.check(10**9)  # must not raise

    def test_evaluation_cap(self):
        budget = SearchBudget(max_evaluations=3)
        assert budget.exhausted_reason(2) is None
        reason = budget.exhausted_reason(3)
        assert reason is not None and "evaluation" in reason
        with pytest.raises(BudgetExhausted):
            budget.check(3)

    def test_deadline_with_injected_clock(self):
        ticks = [0.0]
        budget = SearchBudget(max_seconds=5.0, clock=lambda: ticks[0])
        assert budget.exhausted_reason(0) is None
        ticks[0] = 4.9
        assert budget.exhausted_reason(0) is None
        ticks[0] = 5.1
        reason = budget.exhausted_reason(0)
        assert reason is not None and "deadline" in reason
        assert budget.elapsed == pytest.approx(5.1)

    def test_restart_resets_the_clock(self):
        ticks = [0.0]
        budget = SearchBudget(max_seconds=1.0, clock=lambda: ticks[0])
        ticks[0] = 2.0
        assert budget.exhausted_reason(0) is not None
        budget.restart()
        assert budget.exhausted_reason(0) is None

    def test_budget_exhausted_is_not_a_repro_error(self):
        # Deliberate: exhaustion is control flow inside the search, not a
        # user-facing failure, so generic `except ReproError` handlers in
        # objectives must not swallow it.
        assert not issubclass(BudgetExhausted, ReproError)
        assert BudgetExhausted("x").reason == "x"


class TestPatternSearchBudget:
    def test_deadline_returns_best_so_far(self):
        ticks = [0.0]

        def timed_objective(point):
            ticks[0] += 1.0  # each evaluation "costs" one second
            return _quadratic(point)

        budget = SearchBudget(max_seconds=4.0, clock=lambda: ticks[0])
        result = pattern_search(timed_objective, [1, 1], SPACE, budget=budget)
        assert result.status == "budget_exhausted"
        assert result.budget_exhausted
        assert "deadline" in result.stop_reason
        assert result.evaluations == 4
        # Best-so-far is still a genuinely evaluated point.
        assert result.best_value == _quadratic(result.best_point)
        assert "budget_exhausted" in result.summary()

    def test_evaluation_budget_returns_best_so_far(self):
        budget = SearchBudget(max_evaluations=6)
        result = pattern_search(_quadratic, [1, 1], SPACE, budget=budget)
        assert result.status == "budget_exhausted"
        assert result.evaluations == 6

    def test_spent_budget_returns_before_any_evaluation(self):
        ticks = [10.0]  # already past the deadline at construction + check
        budget = SearchBudget(max_seconds=1.0, clock=lambda: ticks.__getitem__(0))
        ticks[0] = 20.0
        result = pattern_search(_quadratic, [1, 1], SPACE, budget=budget)
        assert result.status == "budget_exhausted"
        assert result.evaluations == 0
        assert result.best_value == float("inf")

    def test_unbudgeted_run_completes_normally(self):
        result = pattern_search(_quadratic, [1, 1], SPACE)
        assert result.status == "completed"
        assert result.stop_reason == ""
        assert not result.budget_exhausted
        assert tuple(result.best_point) == (5, 5)

    def test_budgeted_result_never_better_than_full_run(self):
        full = pattern_search(_quadratic, [1, 1], SPACE)
        budget = SearchBudget(max_evaluations=8)
        partial = pattern_search(_quadratic, [1, 1], SPACE, budget=budget)
        assert partial.best_value >= full.best_value


class TestWindimDeadline:
    def test_max_seconds_flows_into_result_status(self):
        network = canadian_two_class(18.0, 18.0, windows=(1, 1))
        result = windim(
            network, max_window=16, budget=SearchBudget(max_evaluations=3)
        )
        assert result.status == "budget_exhausted"
        assert result.search.evaluations == 3
        assert "budget_exhausted" in result.summary()

    def test_slow_solver_cannot_hang_a_deadlined_run(self):
        # A "timing out" solver: each solve costs 10 simulated seconds, so
        # the 25-second deadline admits at most three evaluations instead
        # of hanging for the full search.
        network = canadian_two_class(18.0, 18.0, windows=(1, 1))
        ticks = [0.0]

        from repro.mva.heuristic import solve_mva_heuristic

        def slow_solver(net):
            ticks[0] += 10.0
            return solve_mva_heuristic(net)

        result = windim(
            network,
            max_window=16,
            solver=slow_solver,
            budget=SearchBudget(max_seconds=25.0, clock=lambda: ticks[0]),
        )
        assert result.status == "budget_exhausted"
        assert result.search.evaluations <= 3
        assert result.windows  # best-so-far result, not an exception

    def test_max_seconds_and_budget_conflict(self):
        network = canadian_two_class(18.0, 18.0, windows=(1, 1))
        with pytest.raises(SearchError):
            windim(
                network,
                max_window=4,
                budget=SearchBudget(max_evaluations=5),
                max_seconds=1.0,
            )

    def test_completed_run_reports_completed(self):
        network = canadian_two_class(18.0, 18.0, windows=(1, 1))
        result = windim(network, max_window=16)
        assert result.status == "completed"
