"""Interop of checkpoint/resume with the persistent evaluation store.

The two persistence mechanisms are independent: a checkpoint written by a
store-enabled run must resume cleanly with the store disabled, and vice
versa — and preloading a store must only ever *save* fresh evaluations.
"""

import pytest

from repro.core.windim import windim
from repro.netmodel.examples import arpanet_fragment

MAX_WINDOW = 12


@pytest.fixture
def network():
    return arpanet_fragment()


def test_checkpoint_from_store_run_resumes_without_store(tmp_path, network):
    ckpt = str(tmp_path / "run.ckpt")
    store = str(tmp_path / "run.store")
    first = windim(
        network, max_window=MAX_WINDOW, checkpoint_path=ckpt,
        store_path=store, reuse=True,
    )
    resumed = windim(
        network, max_window=MAX_WINDOW, checkpoint_path=ckpt, resume=True,
    )
    assert resumed.windows == first.windows
    assert resumed.seeded_evaluations > 0
    assert resumed.store_seeded == 0
    assert resumed.search.evaluations == 0  # everything came from the checkpoint


def test_checkpoint_from_plain_run_resumes_with_store(tmp_path, network):
    ckpt = str(tmp_path / "run.ckpt")
    store = str(tmp_path / "run.store")
    first = windim(network, max_window=MAX_WINDOW, checkpoint_path=ckpt)
    resumed = windim(
        network, max_window=MAX_WINDOW, checkpoint_path=ckpt, resume=True,
        store_path=store, reuse=True,
    )
    assert resumed.windows == first.windows
    assert resumed.search.evaluations == 0


def test_store_enabled_resume_needs_strictly_fewer_fresh_evals(tmp_path, network):
    store = str(tmp_path / "run.store")
    cold = windim(network, max_window=MAX_WINDOW)
    assert cold.search.evaluations > 10

    # First run is cut off mid-search; its partial work lands in the store.
    partial = windim(
        network, max_window=MAX_WINDOW, max_evaluations=10,
        store_path=store, reuse=True,
    )
    assert partial.status == "budget_exhausted"

    # The store-enabled continuation pays only for the remaining work.
    second = windim(
        network, max_window=MAX_WINDOW, store_path=store, reuse=True,
    )
    assert second.windows == cold.windows
    assert second.store_seeded >= 10
    assert second.search.evaluations < cold.search.evaluations

    # A third run replays entirely from the store.
    third = windim(
        network, max_window=MAX_WINDOW, store_path=store, reuse=True,
    )
    assert third.windows == cold.windows
    assert third.search.evaluations == 0


def test_store_disabled_run_unaffected_by_existing_store(tmp_path, network):
    store = str(tmp_path / "run.store")
    with_store = windim(
        network, max_window=MAX_WINDOW, store_path=store, reuse=True
    )
    plain = windim(network, max_window=MAX_WINDOW)
    assert plain.windows == with_store.windows
    assert plain.store_seeded == 0
    assert plain.search.evaluations > 0


def test_store_seeds_warm_start_the_resumed_run(tmp_path, network):
    store = str(tmp_path / "run.store")
    windim(
        network, max_window=MAX_WINDOW, max_evaluations=10,
        store_path=store, reuse=True,
    )
    second = windim(
        network, max_window=MAX_WINDOW, store_path=store, reuse=True,
    )
    stats = second.reuse_stats
    # Every fresh solve of the continuation had a stored neighbour to
    # warm-start from.
    assert stats is not None
    assert stats["cold_solves"] == 0
