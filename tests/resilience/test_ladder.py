"""Escalation-ladder behaviour: damped retries, backend switching, health."""

import dataclasses

import numpy as np
import pytest

from repro.errors import (
    ConvergenceError,
    LadderExhaustedError,
    ModelError,
    SolverError,
)
from repro.mva.convergence import IterationControl
from repro.mva.heuristic import solve_mva_heuristic
from repro.resilience import (
    DEFAULT_DAMPING_SCHEDULE,
    DEFAULT_ESCALATION,
    AttemptOutcome,
    ResilientSolver,
    solve_resilient,
)


class TestHappyPath:
    def test_first_rung_suffices_on_healthy_network(self, two_class_net):
        solver = ResilientSolver("mva-heuristic")
        solution = solver(two_class_net)
        reference = solve_mva_heuristic(two_class_net)
        np.testing.assert_allclose(
            solution.throughputs, reference.throughputs, rtol=1e-9
        )
        health = solver.last_health
        assert health.succeeded
        assert health.retries == 0
        assert not health.escalated
        assert health.final_solver == "mva-heuristic"
        assert [a.outcome for a in health.attempts] == [AttemptOutcome.OK]

    def test_functional_form(self, two_class_net):
        solution = solve_resilient(two_class_net)
        assert solution.converged

    def test_health_statistics_aggregate(self, two_class_net):
        solver = ResilientSolver("mva-heuristic")
        for _ in range(3):
            solver(two_class_net)
        stats = solver.health_statistics()
        assert stats["solves"] == 3
        assert stats["retry_rate"] == 0.0
        assert stats["failed"] == 0


class TestDampingSchedule:
    def test_flaky_solver_succeeds_on_second_damped_retry(self, two_class_net):
        attempts = []

        def flaky(network, control=None):
            attempts.append(control.damping)
            if control.damping > 0.5 + 1e-12:
                raise ConvergenceError("injected oscillation", iterations=42)
            return solve_mva_heuristic(network, control=control)

        solver = ResilientSolver(flaky)
        solution = solver(two_class_net)
        assert solution.converged
        # First rung undamped (failed), second rung damping 0.5 (succeeded).
        assert attempts == [1.0, 0.5]
        health = solver.last_health
        assert health.retries == 1
        assert not health.escalated  # same backend, just damped
        assert health.attempts[0].outcome == AttemptOutcome.ERROR
        assert "injected oscillation" in health.attempts[0].detail
        assert health.attempts[0].iterations == 42
        assert health.attempts[1].outcome == AttemptOutcome.OK

    def test_non_converged_solution_triggers_retry(self, two_class_net):
        calls = []

        def stubborn(network, control=None):
            calls.append(control.damping)
            if len(calls) == 1:
                # Return a non-converged iterate instead of raising.
                weak = IterationControl(
                    max_iterations=1, tolerance=1e-15, raise_on_failure=False
                )
                import warnings

                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    return solve_mva_heuristic(network, control=weak)
            return solve_mva_heuristic(network, control=control)

        solver = ResilientSolver(stubborn)
        solution = solver(two_class_net)
        assert solution.converged
        health = solver.last_health
        assert health.attempts[0].outcome == AttemptOutcome.NON_CONVERGED
        assert health.retries == 1

    def test_custom_schedule_respected(self, two_class_net):
        seen = []

        def failing(network, control=None):
            seen.append(control.damping)
            raise ConvergenceError("never")

        solver = ResilientSolver(
            failing, damping_schedule=(1.0, 0.7, 0.3, 0.1), escalation=()
        )
        with pytest.raises(LadderExhaustedError):
            solver(two_class_net)
        assert seen == [1.0, 0.7, 0.3, 0.1]

    def test_empty_schedule_rejected(self):
        with pytest.raises(ModelError):
            ResilientSolver("mva-heuristic", damping_schedule=())


class TestEscalation:
    def test_dead_primary_escalates_to_first_ladder_backend(self, two_class_net):
        def dead(network, control=None):
            raise SolverError("backend down")

        solver = ResilientSolver(dead)
        solution = solver(two_class_net)
        assert solution.method == "mva-heuristic"  # first escalation rung
        health = solver.last_health
        assert health.escalated
        assert health.final_solver == "mva-heuristic"
        # All schedule rungs on the primary failed first.
        primary_attempts = [a for a in health.attempts if a.solver == "dead"]
        assert len(primary_attempts) == len(DEFAULT_DAMPING_SCHEDULE)
        assert all(a.outcome == AttemptOutcome.ERROR for a in primary_attempts)

    def test_escalation_order_is_honoured(self, two_class_net):
        def dead(network, control=None):
            raise SolverError("backend down")

        solver = ResilientSolver(dead, escalation=("schweitzer",))
        solution = solver(two_class_net)
        assert solution.method == "schweitzer"
        assert solver.last_health.final_solver == "schweitzer"

    def test_nan_output_treated_as_failure(self, two_class_net):
        def liar(network, control=None):
            solution = solve_mva_heuristic(network)
            return dataclasses.replace(
                solution, throughputs=np.full_like(solution.throughputs, np.nan)
            )

        solver = ResilientSolver(liar)
        solution = solver(two_class_net)
        assert np.all(np.isfinite(solution.throughputs))
        assert solver.last_health.attempts[0].outcome == AttemptOutcome.NAN_OUTPUT
        assert solver.last_health.escalated

    def test_exact_rung_skipped_when_lattice_too_large(self, two_class_net):
        def dead(network, control=None):
            raise SolverError("down")

        solver = ResilientSolver(
            dead, escalation=("mva-exact",), exact_lattice_limit=1
        )
        with pytest.raises(LadderExhaustedError) as excinfo:
            solver(two_class_net)
        health = excinfo.value.health
        skipped = [a for a in health.attempts if a.solver == "mva-exact"]
        assert len(skipped) == 1
        assert skipped[0].outcome == AttemptOutcome.SKIPPED
        assert "lattice" in skipped[0].detail

    def test_exact_rung_used_when_tractable(self, tiny_two_chain_net):
        def dead(network, control=None):
            raise SolverError("down")

        solver = ResilientSolver(dead, escalation=("mva-exact",))
        solution = solver(tiny_two_chain_net)
        assert solution.method == "mva-exact"
        assert solver.last_health.final_solver == "mva-exact"

    def test_default_escalation_order(self):
        assert DEFAULT_ESCALATION == (
            "mva-heuristic",
            "schweitzer",
            "linearizer",
            "mva-exact",
        )

    def test_ladder_exhausted_carries_health(self, two_class_net):
        def dead(network, control=None):
            raise SolverError("down")

        solver = ResilientSolver(dead, escalation=())
        with pytest.raises(LadderExhaustedError) as excinfo:
            solver(two_class_net)
        assert excinfo.value.health is solver.last_health
        assert not excinfo.value.health.succeeded
        assert "every rung failed" in excinfo.value.health.summary()


class TestNonRetriableFailures:
    def test_model_error_propagates_immediately(self, two_class_net):
        calls = []

        def broken_model(network, control=None):
            calls.append(1)
            raise ModelError("the model itself is bad")

        solver = ResilientSolver(broken_model)
        with pytest.raises(ModelError):
            solver(two_class_net)
        assert len(calls) == 1  # no retry: retrying cannot fix a bad model

    def test_unexpected_exception_propagates(self, two_class_net):
        def buggy(network, control=None):
            raise ZeroDivisionError("genuine bug")

        with pytest.raises(ZeroDivisionError):
            ResilientSolver(buggy)(two_class_net)


class TestNonIterativePrimary:
    def test_transient_fault_gets_one_retry(self, two_class_net):
        calls = []

        def transient(network):  # no control kwarg: cannot be damped
            calls.append(1)
            if len(calls) == 1:
                raise SolverError("transient glitch")
            return solve_mva_heuristic(network)

        solver = ResilientSolver(transient)
        solution = solver(two_class_net)
        assert solution.converged
        assert len(calls) == 2
        assert solver.last_health.retries == 1


class TestHealthRecordCap:
    def test_log_is_bounded(self, two_class_net):
        solver = ResilientSolver("mva-heuristic", max_health_records=5)
        for _ in range(8):
            solver(two_class_net)
        assert len(solver.health_log) == 5


class TestSolveHealthSerialisation:
    def test_to_dict_roundtrips_through_json(self, two_class_net):
        import json

        solver = ResilientSolver("mva-heuristic")
        solver(two_class_net)
        payload = json.loads(json.dumps(solver.last_health.to_dict()))
        assert payload["succeeded"] is True
        assert payload["final_solver"] == "mva-heuristic"
        assert payload["attempts"][0]["outcome"] == "ok"
