"""Crash-safe checkpoint/resume: atomic writes, validation, SIGINT recovery."""

import json
import math
import os
import signal

import pytest

from repro.core.windim import windim
from repro.errors import SearchError
from repro.netmodel.examples import canadian_two_class
from repro.resilience import (
    CheckpointManager,
    SearchCheckpoint,
    load_checkpoint,
    save_checkpoint,
    signal_checkpoint_guard,
)
from repro.search.cache import EvaluationCache


def _checkpoint():
    return SearchCheckpoint(
        cache_entries=[((1, 1), 2.5), ((3, 4), 1.25)],
        best_point=(3, 4),
        best_value=1.25,
        evaluations=2,
        meta={"num_chains": 2, "solver": "mva-heuristic"},
    )


class TestRoundtrip:
    def test_save_then_load(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        save_checkpoint(path, _checkpoint())
        loaded = load_checkpoint(path)
        assert loaded.cache_entries == [((1, 1), 2.5), ((3, 4), 1.25)]
        assert loaded.best_point == (3, 4)
        assert loaded.best_value == 1.25
        assert loaded.evaluations == 2
        assert loaded.meta["num_chains"] == 2

    def test_nonfinite_best_value_roundtrips_as_inf(self):
        ckpt = SearchCheckpoint(cache_entries=[], best_value=math.inf)
        loaded = SearchCheckpoint.from_json(ckpt.to_json())
        assert loaded.best_point is None
        assert loaded.best_value == math.inf

    def test_no_temp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        for _ in range(3):
            save_checkpoint(path, _checkpoint())
        assert sorted(p.name for p in tmp_path.iterdir()) == ["run.ckpt"]

    def test_seed_cache_counts_as_neither_hit_nor_miss(self, tmp_path):
        cache = EvaluationCache(lambda p: float(sum(p)))
        seeded = _checkpoint().seed_cache(cache)
        assert seeded == 2
        assert cache.evaluations == 0  # fresh-work counter untouched
        assert cache.hits == 0
        # Replayed lookups of seeded points are hits, not re-evaluations.
        assert cache((3, 4)) == 1.25
        assert cache.hits == 1
        assert cache.evaluations == 0


class TestCorruptionRejected:
    def test_partial_write_is_rejected(self, tmp_path):
        # A torn (non-atomic) write: only the first half of the JSON landed.
        path = tmp_path / "torn.ckpt"
        text = _checkpoint().to_json()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(SearchError, match="not valid JSON"):
            load_checkpoint(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(SearchError, match="cannot read checkpoint"):
            load_checkpoint(str(tmp_path / "nope.ckpt"))

    def test_wrong_top_level_type(self):
        with pytest.raises(SearchError, match="top level"):
            SearchCheckpoint.from_json("[1,2,3]")

    def test_version_mismatch(self):
        payload = json.loads(_checkpoint().to_json())
        payload["version"] = 99
        with pytest.raises(SearchError, match="unsupported version"):
            SearchCheckpoint.from_json(json.dumps(payload))

    def test_missing_cache_list(self):
        with pytest.raises(SearchError, match="missing 'cache'"):
            SearchCheckpoint.from_json('{"version":1}')

    def test_malformed_cache_entry(self):
        payload = {"version": 1, "cache": [[[1, 2], "not-a-number"]]}
        with pytest.raises(SearchError, match="malformed cache entry"):
            SearchCheckpoint.from_json(json.dumps(payload))

    def test_inconsistent_point_dimensions(self):
        payload = {"version": 1, "cache": [[[1, 2], 1.0], [[1], 2.0]]}
        with pytest.raises(SearchError, match="inconsistent point dimensions"):
            SearchCheckpoint.from_json(json.dumps(payload))

    def test_bad_meta_type(self):
        payload = {"version": 1, "cache": [], "meta": [1, 2]}
        with pytest.raises(SearchError, match="'meta' must be an object"):
            SearchCheckpoint.from_json(json.dumps(payload))


class TestCheckpointManager:
    def test_periodic_saves_every_n_evaluations(self, tmp_path):
        path = str(tmp_path / "periodic.ckpt")
        manager = CheckpointManager(path, every=2)
        cache = EvaluationCache(lambda p: float(sum(p)))
        for point in [(1, 1), (1, 2), (2, 1), (2, 2), (3, 1)]:
            cache(point)
            manager.note_evaluation(cache)
        assert manager.saves == 2  # after evaluations 2 and 4
        loaded = load_checkpoint(path)
        assert len(loaded.cache_entries) == 4

    def test_flush_before_attach_is_noop(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "x.ckpt"))
        assert manager.flush() is None
        assert manager.saves == 0

    def test_bad_interval_rejected(self, tmp_path):
        with pytest.raises(SearchError):
            CheckpointManager(str(tmp_path / "x.ckpt"), every=0)

    def test_flush_records_best(self, tmp_path):
        path = str(tmp_path / "best.ckpt")
        manager = CheckpointManager(path, every=100, meta={"k": "v"})
        cache = EvaluationCache(lambda p: float(sum(p)))
        cache((5, 5))
        cache((1, 1))
        manager.attach(cache)
        manager.flush()
        loaded = load_checkpoint(path)
        assert loaded.best_point == (1, 1)
        assert loaded.best_value == 2.0
        assert loaded.meta == {"k": "v"}


class TestSignalGuard:
    def test_sigint_flushes_then_interrupts(self, tmp_path):
        path = str(tmp_path / "sig.ckpt")
        manager = CheckpointManager(path, every=10_000)
        cache = EvaluationCache(lambda p: float(sum(p)))
        cache((2, 3))
        manager.attach(cache)
        before = signal.getsignal(signal.SIGINT)
        with pytest.raises(KeyboardInterrupt, match="checkpoint flushed"):
            with signal_checkpoint_guard(manager):
                os.kill(os.getpid(), signal.SIGINT)
        # The handler wrote a final checkpoint before interrupting ...
        assert load_checkpoint(path).cache_entries == [((2, 3), 5.0)]
        # ... and the previous handler is back in place.
        assert signal.getsignal(signal.SIGINT) is before


class TestWindimCheckpointing:
    def test_resume_requires_checkpoint_path(self):
        network = canadian_two_class(18.0, 18.0, windows=(1, 1))
        with pytest.raises(SearchError, match="requires checkpoint_path"):
            windim(network, max_window=4, resume=True)
        with pytest.raises(SearchError, match="requires checkpoint_path"):
            windim(network, max_window=4, handle_signals=True)

    def test_resume_with_missing_file_starts_fresh(self, tmp_path):
        network = canadian_two_class(18.0, 18.0, windows=(1, 1))
        path = str(tmp_path / "never-written.ckpt")
        result = windim(
            network, max_window=16, checkpoint_path=path, resume=True
        )
        assert result.seeded_evaluations == 0
        assert result.status == "completed"
        assert os.path.exists(path)  # final flush still happened

    def test_resume_rejects_mismatched_problem(self, tmp_path):
        path = str(tmp_path / "two-chain.ckpt")
        network = canadian_two_class(18.0, 18.0, windows=(1, 1))
        windim(network, max_window=8, checkpoint_path=path)
        from repro.netmodel.examples import canadian_four_class

        other = canadian_four_class(6.0, 6.0, 6.0, 12.0, windows=(1, 1, 1, 4))
        with pytest.raises(SearchError, match="chain"):
            windim(other, max_window=8, checkpoint_path=path, resume=True)

    def test_resume_after_completion_pays_zero_fresh_evaluations(self, tmp_path):
        network = canadian_two_class(18.0, 18.0, windows=(1, 1))
        path = str(tmp_path / "done.ckpt")
        first = windim(network, max_window=16, checkpoint_path=path)
        resumed = windim(
            network, max_window=16, checkpoint_path=path, resume=True
        )
        assert resumed.windows == first.windows
        assert resumed.seeded_evaluations == first.search.evaluations
        assert resumed.search.evaluations == 0

    def test_sigint_mid_search_then_resume_reaches_same_optimum(self, tmp_path):
        """The acceptance criterion: kill mid-run, resume, same optimum,
        strictly fewer fresh evaluations (the rest come from the cache)."""
        network = canadian_two_class(18.0, 18.0, windows=(1, 1))
        baseline = windim(network, max_window=16)
        interrupt_after = 7
        assert baseline.search.evaluations > interrupt_after

        from repro.mva.heuristic import solve_mva_heuristic

        calls = [0]

        def interrupting_solver(net):
            calls[0] += 1
            if calls[0] > interrupt_after:
                os.kill(os.getpid(), signal.SIGINT)  # simulated Ctrl-C
            return solve_mva_heuristic(net)

        path = str(tmp_path / "killed.ckpt")
        with pytest.raises(KeyboardInterrupt):
            windim(
                network,
                max_window=16,
                solver=interrupting_solver,
                checkpoint_path=path,
                checkpoint_every=1,
                handle_signals=True,
            )
        # The flushed checkpoint holds exactly the completed evaluations.
        assert len(load_checkpoint(path).cache_entries) == interrupt_after

        resumed = windim(
            network,
            max_window=16,
            checkpoint_path=path,
            resume=True,
        )
        assert resumed.windows == baseline.windows
        assert resumed.power == pytest.approx(baseline.power)
        assert resumed.seeded_evaluations == interrupt_after
        # Strictly fewer fresh evaluations: the replayed prefix is free.
        assert resumed.search.evaluations < baseline.search.evaluations
        assert (
            resumed.search.evaluations + resumed.seeded_evaluations
            == baseline.search.evaluations
        )
