"""End-to-end pipeline tests crossing all subsystems."""

import pytest

from repro.analysis.compare import compare_solutions
from repro.core.windim import windim
from repro.exact.mva_exact import solve_mva_exact
from repro.netmodel.builder import build_closed_network
from repro.netmodel.examples import canadian_topology, two_class_traffic
from repro.netmodel.generator import random_network
from repro.sim.engine import simulate
from repro.sim.flowcontrol import FlowControlConfig


pytestmark = pytest.mark.slow


class TestDimensionThenSimulate:
    def test_windim_windows_perform_well_in_simulation(self):
        """Dimension with WINDIM (analytic), then check by independent
        simulation that the chosen windows beat clearly bad ones."""
        rates = (25.0, 25.0)
        result = windim(canadian_two_class_net(*rates))
        topo = canadian_topology()
        classes = list(two_class_traffic(*rates))

        chosen = simulate(
            topo, classes, FlowControlConfig.end_to_end(result.windows),
            duration=1_500.0, warmup=150.0, seed=21,
        )
        oversized = simulate(
            topo, classes, FlowControlConfig.end_to_end((15, 15)),
            duration=1_500.0, warmup=150.0, seed=21,
        )
        assert chosen.power > oversized.power

    def test_simulated_power_close_to_predicted(self):
        rates = (18.0, 18.0)
        result = windim(canadian_two_class_net(*rates), solver="mva-exact")
        measured = simulate(
            canadian_topology(),
            list(two_class_traffic(*rates)),
            FlowControlConfig.end_to_end(result.windows),
            duration=2_000.0, warmup=200.0, seed=22,
        )
        assert measured.power == pytest.approx(result.power, rel=0.05)


class TestRandomNetworksRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_windim_on_random_networks(self, seed):
        net = random_network(num_nodes=6, num_classes=3, seed=seed)
        result = windim(net, max_window=16)
        assert all(1 <= w <= 16 for w in result.windows)
        assert result.power > 0

    def test_heuristic_vs_exact_on_random_network(self):
        net = random_network(num_nodes=5, num_classes=2, seed=7, windows=(3, 3))
        from repro.mva.heuristic import solve_mva_heuristic

        comparison = compare_solutions(
            solve_mva_exact(net), solve_mva_heuristic(net)
        )
        assert comparison.throughput_error < 0.1


def canadian_two_class_net(s1, s2):
    from repro.netmodel.examples import canadian_two_class

    return canadian_two_class(s1, s2)
