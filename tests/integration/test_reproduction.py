"""Integration tests pinning the thesis's qualitative results (§4.5).

These are the claims EXPERIMENTS.md records; absolute numbers differ from
the microfiche tables (topology reconstruction, see DESIGN.md), but every
directional finding must reproduce.
"""

import pytest

from repro.core.kleinrock import hop_count_windows
from repro.core.objective import WindowObjective
from repro.core.power import network_power
from repro.core.windim import windim
from repro.mva.heuristic import solve_mva_heuristic
from repro.netmodel.examples import canadian_four_class, canadian_two_class


TABLE_4_7_RATES = [12.5, 15.5, 18.0, 20.0, 22.5, 25.0, 37.5, 50.0, 62.5, 75.0]


class TestTable47Claims:
    """Symmetric loadings on the 2-class network."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return {
            s: windim(canadian_two_class(s, s)) for s in TABLE_4_7_RATES
        }

    def test_symmetric_loads_give_symmetric_windows(self, sweep):
        for result in sweep.values():
            assert result.windows[0] == result.windows[1]

    def test_windows_nonincreasing_with_load(self, sweep):
        window_sums = [sum(sweep[s].windows) for s in TABLE_4_7_RATES]
        assert all(a >= b for a, b in zip(window_sums, window_sums[1:]))

    def test_window_range_matches_thesis(self, sweep):
        # Thesis: 5 -> 2 over this load range; we accept the same band.
        assert sweep[TABLE_4_7_RATES[0]].windows[0] >= 3
        assert sweep[TABLE_4_7_RATES[-1]].windows[0] <= 3

    def test_power_increasing_with_load(self, sweep):
        powers = [sweep[s].power for s in TABLE_4_7_RATES]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_power_magnitude_band(self, sweep):
        # Thesis reports 159..196; the reconstructed topology lands in the
        # same hundred-ish band.
        assert 100 < sweep[TABLE_4_7_RATES[0]].power < 220
        assert 120 < sweep[TABLE_4_7_RATES[-1]].power < 260


class TestTable48Claims:
    """Dissimilar loadings on the 2-class network."""

    def test_windows_insensitive_to_moderate_skew(self):
        balanced = windim(canadian_two_class(12.5, 12.5))
        skewed = windim(canadian_two_class(5.0, 20.0))  # ratio 4
        assert abs(sum(balanced.windows) - sum(skewed.windows)) <= 2

    def test_power_degrades_with_skew(self):
        total = 25.0
        powers = []
        for s1 in (12.5, 10.0, 7.0, 5.0):
            result = windim(canadian_two_class(s1, total - s1))
            powers.append(result.power)
        assert all(a >= b - 1e-9 for a, b in zip(powers, powers[1:]))
        assert powers[-1] < powers[0]


class TestFig49Claims:
    """Power vs load for fixed windows."""

    def test_large_windows_rise_then_fall(self):
        powers = []
        for s in [5.0, 10.0, 15.0, 20.0, 30.0, 45.0, 60.0, 80.0]:
            net = canadian_two_class(s, s, windows=(7, 7))
            powers.append(network_power(solve_mva_heuristic(net)))
        peak = max(range(len(powers)), key=powers.__getitem__)
        assert 0 < peak < len(powers) - 1
        assert powers[-1] < powers[peak]

    def test_small_windows_monotone_to_plateau(self):
        powers = []
        for s in [5.0, 10.0, 20.0, 40.0, 80.0, 160.0]:
            net = canadian_two_class(s, s, windows=(2, 2))
            powers.append(network_power(solve_mva_heuristic(net)))
        assert all(b >= a - 1e-6 for a, b in zip(powers, powers[1:]))

    def test_oversized_windows_never_beat_moderate_at_high_load(self):
        s = 60.0
        moderate = network_power(
            solve_mva_heuristic(canadian_two_class(s, s, windows=(3, 3)))
        )
        oversized = network_power(
            solve_mva_heuristic(canadian_two_class(s, s, windows=(10, 10)))
        )
        assert oversized < moderate


TABLE_4_12_RATES = [
    (6.0, 6.0, 6.0, 12.0),
    (9.957, 4.419, 7.656, 7.968),
    (17.61, 3.56, 3.0, 5.83),
    (12.5, 12.5, 12.5, 25.0),
    (21.24, 9.86, 18.85, 12.55),
    (20.0, 20.0, 20.0, 40.0),
]


@pytest.mark.slow
class TestTable412Claims:
    """The 4-class network: optimal windows beat Kleinrock's hop rule."""

    @pytest.mark.parametrize("rates", TABLE_4_12_RATES)
    def test_optimal_power_beats_hop_count_windows(self, rates):
        net = canadian_four_class(*rates)
        result = windim(net)
        objective = WindowObjective(net)
        hop_value = objective(hop_count_windows(net))
        p_hops = 1.0 / hop_value
        assert result.power >= p_hops - 1e-9

    def test_first_row_reproduces_thesis_windows(self):
        """Thesis Table 4.12 row 1: rates (6,6,6,12) -> E_op = (1,1,1,4)."""
        result = windim(canadian_four_class(6.0, 6.0, 6.0, 12.0))
        assert result.windows == (1, 1, 1, 4)

    def test_hop_rule_markedly_suboptimal_with_interaction(self):
        """P_op / P_4431 > 1.2 at the thesis's first row (they report
        352/279 ~ 1.26)."""
        net = canadian_four_class(6.0, 6.0, 6.0, 12.0)
        result = windim(net)
        objective = WindowObjective(net)
        p_hops = 1.0 / objective((4, 4, 3, 1))
        assert result.power / p_hops > 1.15

    def test_power_grows_with_total_traffic(self):
        low = windim(canadian_four_class(6.0, 6.0, 6.0, 12.0))
        high = windim(canadian_four_class(20.0, 20.0, 20.0, 40.0))
        assert high.power > low.power
