"""Cross-solver consistency on the thesis networks themselves.

The cross-validation suite uses small synthetic networks; these tests pin
the same three-way agreement on the actual Canadian models, plus solver
consistency through the named-solver registry.
"""

import numpy as np
import pytest

from repro.core.objective import SOLVERS
from repro.exact.convolution import solve_convolution
from repro.exact.mva_exact import solve_mva_exact
from repro.netmodel.examples import canadian_four_class, canadian_two_class


class TestThesisNetworkAgreement:
    @pytest.mark.parametrize("windows", [(1, 1), (3, 3), (5, 2)])
    def test_two_class_convolution_vs_mva(self, windows):
        net = canadian_two_class(20.0, 15.0, windows=windows)
        conv = solve_convolution(net)
        mva = solve_mva_exact(net)
        np.testing.assert_allclose(conv.throughputs, mva.throughputs, rtol=1e-8)
        np.testing.assert_allclose(
            conv.queue_lengths, mva.queue_lengths, atol=1e-8
        )

    def test_four_class_convolution_vs_mva(self):
        net = canadian_four_class(6.0, 6.0, 6.0, 12.0, windows=(1, 1, 1, 4))
        conv = solve_convolution(net)
        mva = solve_mva_exact(net)
        np.testing.assert_allclose(conv.throughputs, mva.throughputs, rtol=1e-8)

    def test_all_named_solvers_agree_on_direction(self):
        """Every registered solver must rank window settings the same way
        on a clear-cut comparison (good vs clearly oversized windows)."""
        from repro.core.power import network_power

        good = canadian_two_class(50.0, 50.0, windows=(3, 3))
        oversized = canadian_two_class(50.0, 50.0, windows=(12, 12))
        for name, solver in SOLVERS.items():
            p_good = network_power(solver(good))
            p_oversized = network_power(solver(oversized))
            assert p_good > p_oversized, name

    def test_approximate_solvers_bounded_error_on_four_class(self):
        net = canadian_four_class(12.5, 12.5, 12.5, 25.0, windows=(2, 2, 2, 3))
        exact = solve_mva_exact(net)
        for name in ("mva-heuristic", "schweitzer", "linearizer"):
            approx = SOLVERS[name](net)
            np.testing.assert_allclose(
                approx.throughputs, exact.throughputs, rtol=0.12,
                err_msg=name,
            )


class TestPowerMetricConsistency:
    def test_power_identical_across_exact_solvers(self):
        from repro.core.power import network_power

        net = canadian_two_class(25.0, 25.0, windows=(4, 4))
        p_conv = network_power(solve_convolution(net))
        p_mva = network_power(solve_mva_exact(net))
        assert p_conv == pytest.approx(p_mva, rel=1e-9)

    def test_bounds_bracket_every_chain_throughput(self):
        from repro.mva.bounds import balanced_job_bounds

        net = canadian_two_class(18.0, 18.0, windows=(4, 4))
        solution = solve_mva_exact(net)
        # Bound each chain in isolation (other chain's load ignored), so
        # only the upper bound is guaranteed: interaction can only slow a
        # chain down relative to its isolated bound.
        for r in range(2):
            demands = net.demands[r][net.demands[r] > 0]
            bounds = balanced_job_bounds(demands, int(net.populations[r]))
            assert solution.throughputs[r] <= bounds.upper + 1e-9
