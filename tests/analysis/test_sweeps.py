"""Unit tests for parameter sweeps."""

import pytest

from repro.analysis.sweeps import (
    optimal_window_sweep,
    power_curve,
    window_grid_power,
)
from repro.netmodel.examples import canadian_two_class
from repro.search.space import IntegerBox


class TestOptimalWindowSweep:
    def test_sweep_shape_and_content(self):
        points = optimal_window_sweep(
            canadian_two_class, [(12.5, 12.5), (50.0, 50.0)]
        )
        assert len(points) == 2
        assert points[0].rates == (12.5, 12.5)
        assert points[0].total_rate == 25.0
        assert len(points[0].windows) == 2
        assert points[0].power > 0

    def test_windows_shrink_with_load(self):
        points = optimal_window_sweep(
            canadian_two_class, [(12.5, 12.5), (75.0, 75.0)]
        )
        assert sum(points[1].windows) < sum(points[0].windows)


class TestPowerCurve:
    def test_curve_length_and_monotone_light_load(self):
        rates = [(5.0, 5.0), (10.0, 10.0), (15.0, 15.0)]
        curve = power_curve(canadian_two_class, rates, windows=(3, 3))
        assert len(curve) == 3
        powers = [p for _rates, p in curve]
        # Below saturation more load means more power.
        assert powers[0] < powers[1] < powers[2]

    def test_exact_solver_option(self):
        curve = power_curve(
            canadian_two_class, [(20.0, 20.0)], windows=(2, 2), solver="mva-exact"
        )
        assert curve[0][1] > 0


class TestWindowGridPower:
    def test_grid_covers_space(self):
        net = canadian_two_class(18.0, 18.0)
        space = IntegerBox.windows(2, 3)
        grid = window_grid_power(net, space)
        assert len(grid) == 9
        assert all(p > 0 for p in grid.values())

    def test_grid_peak_matches_windim_region(self):
        net = canadian_two_class(50.0, 50.0)
        space = IntegerBox.windows(2, 6)
        grid = window_grid_power(net, space, solver="mva-exact")
        best = max(grid, key=grid.get)
        # Table 4.7 says small windows (around 2-3) win at this load.
        assert max(best) <= 4
