"""Unit tests for buffer dimensioning."""

import pytest

from repro.analysis.buffers import recommend_buffers
from repro.errors import ModelError
from repro.netmodel.examples import canadian_two_class


class TestRecommendations:
    @pytest.fixture(scope="class")
    def recommendations(self):
        net = canadian_two_class(18.0, 18.0, windows=(4, 4))
        return net, recommend_buffers(net, overflow_probability=1e-3)

    def test_every_fixed_rate_station_covered(self, recommendations):
        net, recs = recommendations
        assert set(recs) == set(net.station_names)

    def test_buffer_never_exceeds_hard_bound(self, recommendations):
        _net, recs = recommendations
        for rec in recs.values():
            assert rec.buffer_size <= rec.hard_bound

    def test_achieved_overflow_below_target(self, recommendations):
        _net, recs = recommendations
        for rec in recs.values():
            assert rec.overflow_probability <= 1e-3 + 1e-12

    def test_shared_trunks_need_more_than_private_tails(self, recommendations):
        _net, recs = recommendations
        # Trunks carry both windows (hard bound 8); tails only one.
        assert recs["ch2"].hard_bound == 8
        assert recs["ch6"].hard_bound == 4
        assert recs["ch2"].buffer_size >= recs["ch6"].buffer_size

    def test_looser_target_needs_less_buffer(self):
        net = canadian_two_class(18.0, 18.0, windows=(4, 4))
        tight = recommend_buffers(net, 1e-4)
        loose = recommend_buffers(net, 1e-1)
        for name in tight:
            assert loose[name].buffer_size <= tight[name].buffer_size

    def test_station_filter(self):
        net = canadian_two_class(18.0, 18.0, windows=(3, 3))
        recs = recommend_buffers(net, 1e-3, stations=("ch1",))
        assert set(recs) == {"ch1"}

    def test_bad_probability_rejected(self):
        net = canadian_two_class(18.0, 18.0, windows=(2, 2))
        with pytest.raises(ModelError):
            recommend_buffers(net, 0.0)
        with pytest.raises(ModelError):
            recommend_buffers(net, 1.0)
