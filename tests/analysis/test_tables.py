"""Unit tests for table rendering (ASCII and CSV)."""

import pytest

from repro.analysis.tables import render_csv, render_table


class TestRenderTable:
    def test_basic_alignment(self):
        text = render_table(["a", "bbb"], [[1, 2.5], [10, 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "bbb" in lines[0]
        assert "3.25" not in lines[0]

    def test_title_line(self):
        text = render_table(["x"], [[1]], title="Table 4.7")
        assert text.splitlines()[0] == "Table 4.7"

    def test_float_precision(self):
        text = render_table(["x"], [[1.23456]], precision=3)
        assert "1.235" in text

    def test_strings_pass_through(self):
        text = render_table(["windows"], [["5 5"]])
        assert "5 5" in text

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])


class TestRenderCsv:
    def test_round_trips_through_csv_reader(self):
        import csv
        import io

        text = render_csv(["x", "label"], [[1.5, "a b"], [2, "c,d"]])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["x", "label"]
        assert rows[1] == ["1.5", "a b"]
        assert rows[2] == ["2", "c,d"]

    def test_full_precision_floats(self):
        text = render_csv(["x"], [[0.123456789012345]])
        assert "0.123456789012345" in text

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_csv(["a", "b"], [[1]])
