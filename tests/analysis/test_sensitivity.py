"""Unit tests for window sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import window_sensitivity
from repro.netmodel.examples import canadian_two_class


class TestSensitivity:
    @pytest.fixture(scope="class")
    def study(self):
        nominal = (18.0, 18.0)
        drifts = [(18.0, 18.0), (12.0, 24.0), (27.0, 9.0), (30.0, 30.0)]
        return window_sensitivity(canadian_two_class, nominal, drifts)

    def test_design_windows_shape(self, study):
        design, _points = study
        assert len(design) == 2

    def test_zero_drift_loses_nothing(self, study):
        _design, points = study
        at_nominal = points[0]
        assert at_nominal.power_loss == pytest.approx(0.0, abs=1e-9)

    def test_reoptimized_never_worse(self, study):
        _design, points = study
        for point in points:
            assert point.reoptimized_power >= point.designed_power - 1e-9
            assert 0.0 <= point.power_loss < 1.0

    def test_moderate_skew_is_cheap(self, study):
        """The thesis insensitivity claim: designing for symmetric load and
        operating at 2x skew costs only a few percent of power."""
        _design, points = study
        skewed = points[1]
        assert skewed.power_loss < 0.05
