"""Unit tests for solver comparison metrics."""

import pytest

from repro.analysis.compare import compare_solutions, compare_solvers
from repro.exact.mva_exact import solve_mva_exact
from repro.mva.heuristic import solve_mva_heuristic
from repro.mva.schweitzer import solve_schweitzer


class TestCompareSolutions:
    def test_self_comparison_is_zero(self, two_class_net):
        solution = solve_mva_exact(two_class_net)
        comparison = compare_solutions(solution, solution)
        assert comparison.throughput_error == 0.0
        assert comparison.delay_error == 0.0
        assert comparison.power_error == 0.0
        assert comparison.max_queue_length_error == 0.0

    def test_heuristic_errors_are_small(self, two_class_net):
        exact = solve_mva_exact(two_class_net)
        heuristic = solve_mva_heuristic(two_class_net)
        comparison = compare_solutions(exact, heuristic)
        assert comparison.throughput_error < 0.05
        assert comparison.power_error < 0.05
        assert "mva-heuristic" in comparison.summary()

    def test_compare_solvers_dict(self, two_class_net):
        comparisons = compare_solvers(
            two_class_net,
            solve_mva_exact,
            {
                "heuristic": solve_mva_heuristic,
                "schweitzer": solve_schweitzer,
            },
        )
        assert set(comparisons) == {"heuristic", "schweitzer"}
        for comparison in comparisons.values():
            assert comparison.reference_method == "mva-exact"
            assert comparison.throughput_error < 0.10
